"""Multi-client serving smoke: 2 shards, 3 producers, live queries.

This is the CI face of ``docs/serving.md``: it stands up a sharded
serve cluster, streams three concurrent producers into it — one
replaying a *real* captured workload trace (compress/train) and two
synthetic value streams — while a query thread hits the HTTP surface
the whole time, then asserts the served ``/profile`` is byte-identical
to an offline fold of the exact same events.

The smoke also exercises the serve metrics plane end to end: the run
is traced (every producer batch must yield one coherent span tree with
all server-side spans under their client batch spans), ``/metrics`` is
scraped mid-ingest and at settle (latency buckets + per-shard gauges
asserted), and the headline numbers — ingest events/s, client-observed
p50/p99 batch e2e latency — land in ``benchmarks/results/
BENCH_serve.json`` and the consolidated ``BENCH_history.jsonl``.

Exit status is the verdict (assertions fail loudly); ``--log-dir``
captures the harness event log, the span trace, the final ``/metrics``
scrape and a machine-readable summary so CI can upload them as
artifacts.

Run directly (no pytest needed)::

    PYTHONPATH=src:. python benchmarks/serve_smoke.py --scale 0.1
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
import threading
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.analysis.experiments import load_events  # noqa: E402
from repro.core.tracestore import TARGET_KINDS  # noqa: E402
from repro.obs.hist import Histogram  # noqa: E402
from repro.obs.trace import TRACER  # noqa: E402

from benchmarks.helpers import RESULTS_DIR, append_history  # noqa: E402
from tests.serve.harness import (  # noqa: E402
    ServeCluster,
    assert_same_profile_state,
    make_stream,
    offline_reference,
)


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.1,
                        help="compress/train input scale (default 0.1)")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--runtime", choices=("inline", "process"),
                        default="inline")
    parser.add_argument("--queue-size", type=int, default=32)
    parser.add_argument("--batch-size", type=int, default=512)
    parser.add_argument("--synthetic-events", type=int, default=4000,
                        help="events per synthetic producer")
    parser.add_argument("--log-dir", default=None,
                        help="write harness log + summary JSON here")
    return parser.parse_args(argv)


def synthetic_stream(program: str, num_events: int, seed: int):
    """A synthetic producer stream on its own (disjoint) site space."""
    return [
        (dataclasses.replace(site, program=program), value)
        for site, value in make_stream(
            num_sites=10, num_events=num_events, seed=seed
        )
    ]


def main(argv=None) -> int:
    args = parse_args(argv)
    log_dir = pathlib.Path(args.log_dir) if args.log_dir else None
    if log_dir:
        log_dir.mkdir(parents=True, exist_ok=True)

    # The real-workload producer replays the same event stream the
    # offline pipeline folds (every profiled family, in trace order).
    trace = load_events("compress", "train", args.scale)
    compress_events = list(trace.events(list(TARGET_KINDS)))
    producers = [
        ("compress", "compress.train", compress_events),
        ("synth-1", "smoke.one",
         synthetic_stream("smoke1", args.synthetic_events, seed=101)),
        ("synth-2", "smoke.two",
         synthetic_stream("smoke2", args.synthetic_events, seed=202)),
    ]
    total_events = sum(len(events) for _, _, events in producers)
    print(f"serve smoke: {args.shards} shards ({args.runtime} runtime), "
          f"{len(producers)} producers, {total_events} events")

    query_counts = {"stats": 0, "profile": 0, "metrics": 0, "depth_gauge_seen": 0}
    errors = []
    clients = {}
    TRACER.enable()
    with ServeCluster(
        log_path=str(log_dir / "serve-smoke-harness.log") if log_dir else None,
        shards=args.shards,
        runtime=args.runtime,
        queue_size=args.queue_size,
    ) as cluster:
        done = threading.Event()

        def produce(client_id, stream, events):
            try:
                clients[client_id] = cluster.push_events(
                    client_id, events, stream=stream,
                    batch_size=args.batch_size,
                )
            except Exception as error:  # surfaced after join
                errors.append(f"{client_id}: {error!r}")

        def query_while_ingesting():
            while not done.is_set():
                stats = cluster.http_json("/stats")
                query_counts["stats"] += 1
                # The depth gauge appears with the first routed batch.
                if "serve.queue_depth" in stats["gauges"]:
                    query_counts["depth_gauge_seen"] += 1
                cluster.http("/profile?kind=load&top=5")
                query_counts["profile"] += 1
                # The Prometheus endpoint must hold up under live load.
                cluster.http("/metrics")
                query_counts["metrics"] += 1
                time.sleep(0.02)

        threads = [
            threading.Thread(target=produce, args=spec, name=spec[0])
            for spec in producers
        ]
        querier = threading.Thread(target=query_while_ingesting)
        querier.start()
        ingest_t0 = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ingest_seconds = time.monotonic() - ingest_t0
        done.set()
        querier.join()
        if errors:
            raise SystemExit("producer failures: " + "; ".join(errors))

        # One settled poll: the depth gauge must be exported (it updates
        # with every routed batch; mid-ingest polls can miss it only when
        # the whole ingest outpaces the query thread).
        final_stats = cluster.http_json("/stats")
        if "serve.queue_depth" in final_stats["gauges"]:
            query_counts["depth_gauge_seen"] += 1

        # Settled /metrics scrape: the acceptance-criteria assertions.
        scrape = cluster.http("/metrics")
        assert "# TYPE repro_serve_batch_e2e histogram" in scrape
        assert 'repro_serve_batch_e2e_bucket{le="' in scrape
        e2e_count = int(next(
            line for line in scrape.splitlines()
            if line.startswith("repro_serve_batch_e2e_count")
        ).split()[-1])
        assert e2e_count > 0, "no batch e2e observations in the scrape"
        for shard in range(args.shards):
            assert f'repro_serve_shard_queue_depth{{shard="{shard}"}}' in scrape
            assert f'repro_serve_shard_up{{shard="{shard}"}} 1' in scrape

        merged = cluster.merged_database()
        got_json = cluster.http("/profile?format=json")
        counters = dict(cluster.server.counters)

    # Span-tree validation: one coherent tree, every server-side span
    # under its batch's client span, ids unique, no orphans.
    spans = TRACER.drain()
    TRACER.disable()
    by_id, by_name = {}, {}
    for span in spans:
        assert span["span_id"] not in by_id, f"duplicate id {span['span_id']}"
        by_id[span["span_id"]] = span
        by_name.setdefault(span["name"], []).append(span)
    for span in spans:
        assert span["parent_id"] is None or span["parent_id"] in by_id, (
            f"orphan span {span['name']} ({span['span_id']})"
        )
    batch_ids = {span["span_id"] for span in by_name.get("serve.batch", [])}
    assert batch_ids, "tracing was on but no client batch spans recorded"
    for name in ("serve.enqueue", "serve.journal", "serve.fold", "serve.ack"):
        for span in by_name.get(name, []):
            assert span["parent_id"] in batch_ids, f"{name} not under a batch"
    span_counts = {name: len(group) for name, group in sorted(by_name.items())}

    # Client-observed batch e2e latency, merged across all producers.
    e2e = Histogram("latency")
    for client in clients.values():
        e2e.merge(client.hists["serve.client_batch_e2e"])

    # Offline control: one database folding every producer's events.
    # Producers own disjoint site sets, so cross-producer interleaving
    # cannot affect any per-site state; the database name mirrors the
    # server's merged-stream naming so the JSON is byte-comparable.
    all_events = [pair for _, _, events in producers for pair in events]
    streams = sorted(stream for _, stream, _ in producers)
    offline = offline_reference(all_events, name="+".join(streams))

    assert counters.get("serve.events") == total_events, counters
    assert query_counts["profile"] >= 1, "no queries landed mid-ingest"
    assert query_counts["depth_gauge_seen"] >= 1, "depth gauge never surfaced"
    assert_same_profile_state(merged, offline)
    expected_json = offline.to_json() + "\n"
    assert got_json == expected_json, "served /profile JSON diverged"

    events_per_s = total_events / ingest_seconds if ingest_seconds else 0.0
    bench = {
        "name": "serve",
        "shards": args.shards,
        "runtime": args.runtime,
        "events": total_events,
        "ingest_seconds": round(ingest_seconds, 6),
        "events_per_s": round(events_per_s, 1),
        "batch_e2e_p50_s": round(e2e.quantile(0.5), 6),
        "batch_e2e_p99_s": round(e2e.quantile(0.99), 6),
        "batches": e2e.count,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_serve.json").write_text(
        json.dumps(bench, indent=2, sort_keys=True) + "\n"
    )
    append_history("serve", "events_per_s", bench["events_per_s"])
    append_history("serve", "batch_e2e_p50_s", bench["batch_e2e_p50_s"])
    append_history("serve", "batch_e2e_p99_s", bench["batch_e2e_p99_s"])

    summary = {
        "shards": args.shards,
        "runtime": args.runtime,
        "producers": len(producers),
        "events": total_events,
        "queries_mid_ingest": dict(query_counts),
        "counters": counters,
        "byte_identical": True,
        "bench": bench,
        "span_counts": span_counts,
    }
    print(json.dumps(summary, indent=2, sort_keys=True))
    if log_dir:
        (log_dir / "serve-smoke-summary.json").write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n"
        )
        (log_dir / "serve-smoke-metrics.prom").write_text(scrape)
        with open(log_dir / "serve-smoke-spans.jsonl", "w") as handle:
            for span in spans:
                handle.write(json.dumps(span, sort_keys=True) + "\n")
    print(
        "serve smoke: OK — served profile byte-identical to offline fold; "
        f"{len(spans)} spans in one tree, "
        f"{bench['events_per_s']:.0f} events/s, "
        f"p99 batch e2e {bench['batch_e2e_p99_s'] * 1e3:.1f}ms"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
