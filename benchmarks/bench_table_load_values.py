"""Benchmark: regenerate the paper artifact ``table-load-values``.

See DESIGN.md's experiment index for the paper table/figure this
corresponds to and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from helpers import run_experiment


def test_table_load_values(benchmark):
    result = run_experiment(benchmark, "table-load-values")
    average = result.data["average"]
    # Paper shape: load values show substantial invariance.
    assert average["Inv-All"] > 30.0
    assert average["Inv-Top1"] > 10.0
