"""Benchmark: regenerate the paper artifact ``table-top-procedures``.

See DESIGN.md's experiment index for the paper table/figure this
corresponds to and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from helpers import run_experiment


def test_table_top_procedures(benchmark):
    result = run_experiment(benchmark, "table-top-procedures")
    for rows in result.data.values():
        assert rows[0]["share"] >= rows[-1]["share"]
