"""Benchmark: regenerate the extension artifact ``table-vht-aliasing``.

Gabbay's table-utilization claim measured in a finite, tagged value
history table: profile filtering vs aliasing pressure.
"""

from helpers import run_experiment


def test_table_vht_aliasing(benchmark):
    result = run_experiment(benchmark, "table-vht-aliasing")
    assert result.data["mean_gain_small_table"] > result.data["mean_gain_large_table"]
