"""Benchmark: regenerate the paper artifact ``fig-convergence``.

See DESIGN.md's experiment index for the paper table/figure this
corresponds to and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from helpers import run_experiment


def test_fig_convergence(benchmark):
    result = run_experiment(benchmark, "fig-convergence")
    assert result.data["mean_converged_fraction"] < 0.6
