"""Interpreter-dispatch and trace-replay benchmarks.

Two artifacts back the engine work:

* ``BENCH_machine_dispatch.json`` — simulated MIPS of all three
  engines (reference ``simple``, pre-decoded direct-threaded, and the
  profile-guided ``tier2`` specializer) on ``simulate_profiled``-style
  runs (buffered value profiling of instructions + loads) across all
  eight workloads.  The threaded engine must hold a >=2x
  instructions/sec advantage over simple, and tier-2 a >=1.5x
  advantage over threaded; CI tracks the exact ratios, and both
  geomeans are appended to ``BENCH_history.jsonl``.
* ``BENCH_replay_vs_simulate.json`` — events/sec of capturing a full
  event trace (one simulation) vs replaying a profile from the stored
  trace, the ratio that justifies simulate-once/replay-many.

Timings are best-of-``_ROUNDS`` wall-clock measurements rather than
pytest-benchmark fixtures: each sample compares two configurations,
which the fixture API does not express.
"""

from __future__ import annotations

import json
import time

from helpers import RESULTS_DIR, append_history

from repro.core.profile import ProfileDatabase
from repro.core.tracestore import EventTrace, TraceCaptureObserver, replay_profile
from repro.isa.instrument import ProfileTarget, ValueProfiler
from repro.isa.machine import Machine
from repro.workloads.registry import get_workload

_ROUNDS = 5
_TARGETS = (ProfileTarget.INSTRUCTIONS, ProfileTarget.LOADS)
#: (workload, variant, scale) — full-scale train runs.  An adaptive
#: tier pays its warm-up (hotness counting, operand sampling,
#: specialized-code generation) online, so runs must be long enough
#: that per-run fixed costs (decode, warm-up, workload setup) do not
#: dominate what the steady state earns back; the 0.3-scale runs of
#: the old two-engine bench (30k–200k instructions) undersell the
#: tier by 2x on the shortest workloads.
_DISPATCH_RUNS = (
    ("compress", "train", 1.0),
    ("gcc", "train", 1.0),
    ("go", "train", 1.0),
    ("ijpeg", "train", 1.0),
    ("li", "train", 1.0),
    ("m88ksim", "train", 1.0),
    ("perl", "train", 1.0),
    ("vortex", "train", 1.0),
)


def _write_json(name: str, payload: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _profiled_run(name: str, variant: str, scale: float, engine: str):
    """One simulate_profiled-style run; returns (seconds, instructions)."""
    workload = get_workload(name)
    program = workload.program()
    dataset = workload.dataset(variant, scale=scale)
    database = ProfileDatabase(name=name)
    observer = ValueProfiler(program, database, targets=_TARGETS, buffered=True)
    machine = Machine(program, observer=observer, engine=engine)
    machine.set_input(dataset.values)
    start = time.perf_counter()
    result = machine.run()
    elapsed = time.perf_counter() - start
    assert result.halted
    return elapsed, result.instructions_executed


def _best_mips(name: str, variant: str, scale: float, engine: str):
    best = None
    instructions = 0
    for _ in range(_ROUNDS):
        elapsed, instructions = _profiled_run(name, variant, scale, engine)
        if best is None or elapsed < best:
            best = elapsed
    return instructions / best / 1e6, instructions


def _geomean(values):
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def test_machine_dispatch_speedup():
    rows = {}
    speedups = []
    tier2_speedups = []
    for name, variant, scale in _DISPATCH_RUNS:
        simple_mips, instructions = _best_mips(name, variant, scale, "simple")
        threaded_mips, _ = _best_mips(name, variant, scale, "threaded")
        tier2_mips, _ = _best_mips(name, variant, scale, "tier2")
        speedup = threaded_mips / simple_mips
        tier2_speedup = tier2_mips / threaded_mips
        speedups.append(speedup)
        tier2_speedups.append(tier2_speedup)
        rows[name] = {
            "variant": variant,
            "scale": scale,
            "instructions": instructions,
            "simple_mips": round(simple_mips, 4),
            "threaded_mips": round(threaded_mips, 4),
            "tier2_mips": round(tier2_mips, 4),
            "speedup": round(speedup, 3),
            "tier2_speedup": round(tier2_speedup, 3),
        }
    geomean = _geomean(speedups)
    tier2_geomean = _geomean(tier2_speedups)
    _write_json(
        "machine_dispatch",
        {
            "name": "machine_dispatch",
            "style": "simulate_profiled (buffered, instructions+loads)",
            "rounds": _ROUNDS,
            "workloads": rows,
            "geomean_speedup": round(geomean, 3),
            "tier2_geomean_speedup": round(tier2_geomean, 3),
        },
    )
    append_history("machine_dispatch", "geomean_speedup", round(geomean, 3))
    append_history(
        "machine_dispatch", "tier2_geomean_speedup", round(tier2_geomean, 3)
    )
    # The acceptance bars are 2x (threaded over simple) and 1.5x
    # (tier-2 over threaded); assert a margin below each so a noisy
    # shared CI runner cannot flake the suite while a real regression
    # (an engine ~= its baseline) still fails loudly.
    assert geomean > 1.5, f"threaded engine speedup collapsed: {rows}"
    assert tier2_geomean > 1.2, f"tier-2 engine speedup collapsed: {rows}"


def test_replay_vs_simulate():
    name, variant, scale = "go", "train", 0.3
    workload = get_workload(name)
    program = workload.program()
    dataset = workload.dataset(variant, scale=scale)

    capture_best = None
    trace = None
    for _ in range(_ROUNDS):
        capture = TraceCaptureObserver(program)
        machine = Machine(program, observer=capture, engine="threaded")
        machine.set_input(dataset.values)
        start = time.perf_counter()
        result = machine.run()
        elapsed = time.perf_counter() - start
        assert result.halted
        if capture_best is None or elapsed < capture_best:
            capture_best = elapsed
            trace = EventTrace(
                program=name,
                variant=variant,
                scale=scale,
                sites=capture.sites,
                site_ids=capture.site_ids,
                values=capture.values,
                result=result,
                dataset=dataset,
            )

    events = len(trace)
    replay_best = None
    for _ in range(_ROUNDS):
        start = time.perf_counter()
        database = replay_profile(trace, _TARGETS, name=name)
        elapsed = time.perf_counter() - start
        if replay_best is None or elapsed < replay_best:
            replay_best = elapsed
    assert database.total_executions() > 0

    _write_json(
        "replay_vs_simulate",
        {
            "name": "replay_vs_simulate",
            "workload": name,
            "variant": variant,
            "scale": scale,
            "events": events,
            "capture_s": round(capture_best, 4),
            "replay_s": round(replay_best, 4),
            "capture_events_per_s": round(events / capture_best, 1),
            "replay_events_per_s": round(events / replay_best, 1),
            "replay_speedup": round(capture_best / replay_best, 3),
        },
    )
    # Replaying a profile from the stored trace must beat re-simulating
    # (that is the entire point of the store).
    assert replay_best < capture_best, (capture_best, replay_best)
