"""Benchmark: regenerate the paper artifact ``table-train-vs-test``.

See DESIGN.md's experiment index for the paper table/figure this
corresponds to and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from helpers import run_experiment


def test_table_train_vs_test(benchmark):
    result = run_experiment(benchmark, "table-train-vs-test")
    assert result.data["mean_correlation"] > 0.85
