"""Benchmark: regenerate the paper artifact ``table-memory-locations``.

See DESIGN.md's experiment index for the paper table/figure this
corresponds to and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from helpers import run_experiment


def test_table_memory_locations(benchmark):
    result = run_experiment(benchmark, "table-memory-locations")
    average = result.data["average"]
    assert average["Inv-Top1"] > 10.0
