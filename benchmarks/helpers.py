"""Shared infrastructure for the benchmark harness.

Each ``bench_<experiment>.py`` regenerates one table or figure of the
paper via the experiment registry, times it with pytest-benchmark, and
writes the rendered artifact to ``benchmarks/results/<id>.txt`` so a
full benchmark run leaves the complete set of reproduced tables and
figures on disk.

``BENCH_SCALE`` shrinks workload inputs; the shapes asserted here are
scale-robust.  Caches are cleared before every measured run so each
experiment pays its own profiling cost.
"""

from __future__ import annotations

import os
import pathlib

from repro.analysis import experiments

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_experiment(benchmark, experiment_id: str, scale: float = BENCH_SCALE):
    """Time one experiment end to end and persist its artifact."""

    def setup():
        experiments.clear_caches()
        return (), {}

    result = benchmark.pedantic(
        lambda: experiments.run(experiment_id, scale=scale),
        setup=setup,
        rounds=1,
        iterations=1,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = RESULTS_DIR / f"{experiment_id}.txt"
    artifact.write_text(f"== {result.title} ==\n{result.text}\n")
    benchmark.extra_info["experiment"] = experiment_id
    benchmark.extra_info["scale"] = scale
    assert result.text.strip(), f"{experiment_id} produced no output"
    return result
