"""Shared infrastructure for the benchmark harness.

Each ``bench_<experiment>.py`` regenerates one table or figure of the
paper via the experiment registry, times it with pytest-benchmark, and
writes the rendered artifact to ``benchmarks/results/<id>.txt`` so a
full benchmark run leaves the complete set of reproduced tables and
figures on disk.  Every timed benchmark also drops a machine-readable
``BENCH_<name>.json`` (mean/min/max seconds) next to the artifacts so
CI and scripts can track performance without parsing pytest output.

``BENCH_SCALE`` shrinks workload inputs; the shapes asserted here are
scale-robust.  Both cache levels are disabled/cleared around every
measured run so each experiment pays its own profiling cost — with
the persistent disk cache left on, a second benchmark run would time
a cache hit instead of the profiler.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import time

from repro.analysis import experiments

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

HISTORY_FILE = "BENCH_history.jsonl"


def git_sha() -> str:
    """The current commit sha, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def append_history(bench: str, metric: str, value: float, sha: str = None) -> None:
    """Append one (bench, metric, value, git-sha) record to the history.

    ``BENCH_history.jsonl`` is the consolidated bench trajectory:
    every benchmark run appends its headline numbers here, so
    ``repro dash`` can plot performance over commits instead of only
    comparing against the single committed baseline.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    record = {
        "bench": bench,
        "metric": metric,
        "value": value,
        "git_sha": sha if sha is not None else git_sha(),
        "timestamp": time.time(),
    }
    with open(RESULTS_DIR / HISTORY_FILE, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True))
        handle.write("\n")


def write_bench_json(benchmark, name: str, **extra) -> None:
    """Persist one benchmark's timing stats as ``BENCH_<name>.json``.

    Best-effort: pytest-benchmark may be running with ``--benchmark-
    disable`` (the CI smoke mode), in which case there are no stats and
    nothing is written.  Every write also appends the mean to
    ``BENCH_history.jsonl`` (see :func:`append_history`).
    """
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is None:
        return
    payload = {
        "name": name,
        "mean_s": stats.mean,
        "min_s": stats.min,
        "max_s": stats.max,
        "stddev_s": stats.stddev,
        "rounds": stats.rounds,
    }
    payload.update(extra)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    append_history(name, "mean_s", stats.mean)


def run_experiment(benchmark, experiment_id: str, scale: float = BENCH_SCALE):
    """Time one experiment end to end and persist its artifact."""

    def setup():
        experiments.clear_caches()
        return (), {}

    def measured():
        with experiments.caching_disabled():
            return experiments.run(experiment_id, scale=scale)

    result = benchmark.pedantic(
        measured,
        setup=setup,
        rounds=1,
        iterations=1,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = RESULTS_DIR / f"{experiment_id}.txt"
    artifact.write_text(f"== {result.title} ==\n{result.text}\n")
    benchmark.extra_info["experiment"] = experiment_id
    benchmark.extra_info["scale"] = scale
    write_bench_json(benchmark, experiment_id, experiment=experiment_id, scale=scale)
    assert result.text.strip(), f"{experiment_id} produced no output"
    return result
