"""Benchmark: regenerate the extension artifact ``table-load-speculation``.

See DESIGN.md's experiment index and EXPERIMENTS.md's extension
section for what this measures.
"""

from helpers import run_experiment


def test_table_load_speculation(benchmark):
    result = run_experiment(benchmark, "table-load-speculation")
    average = result.data["average"]
    assert average["filtered"]["net_per_1k"] > average["all"]["net_per_1k"]
