"""Benchmark: regenerate the extension artifact ``table-calling-context``.

See DESIGN.md's experiment index and EXPERIMENTS.md's extension
section for what this measures.
"""

from helpers import run_experiment


def test_table_calling_context(benchmark):
    result = run_experiment(benchmark, "table-calling-context")
    assert result.data["min_gain"] >= -1e-9
    assert result.data["ijpeg"]["gain"] > 0.1
