"""Benchmark: regenerate the paper artifact ``fig-invariance-distribution``.

See DESIGN.md's experiment index for the paper table/figure this
corresponds to and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from helpers import run_experiment


def test_fig_invariance_distribution(benchmark):
    result = run_experiment(benchmark, "fig-invariance-distribution")
    shares = [bucket["share"] for bucket in result.data["all"]]
    assert abs(sum(shares) - 1.0) < 1e-6
    assert shares[0] + shares[-1] > shares[4] + shares[5]
