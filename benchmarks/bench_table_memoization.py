"""Benchmark: regenerate the extension artifact ``table-memoization``.

See DESIGN.md's experiment index and EXPERIMENTS.md's extension
section for what this measures.
"""

from helpers import run_experiment


def test_table_memoization(benchmark):
    result = run_experiment(benchmark, "table-memoization")
    assert result.data["zipf-args"]["enabled"]
    assert not result.data["unique-args"]["enabled"]
