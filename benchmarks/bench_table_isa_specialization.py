"""Benchmark: regenerate the extension artifact ``table-isa-specialization``.

The thesis' Chapter X at the machine-code level: calling-context value
profiles drive per-call-site binary specialization with a guard.
"""

from helpers import run_experiment


def test_table_isa_specialization(benchmark):
    result = run_experiment(benchmark, "table-isa-specialization")
    assert result.data["all_outputs_identical"]
    assert result.data["ijpeg"]["reduction"] > 0
