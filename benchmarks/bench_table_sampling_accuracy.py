"""Benchmark: regenerate the paper artifact ``table-sampling-accuracy``.

See DESIGN.md's experiment index for the paper table/figure this
corresponds to and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from helpers import run_experiment


def test_table_sampling_accuracy(benchmark):
    result = run_experiment(benchmark, "table-sampling-accuracy")
    average = result.data["average"]
    assert average["periodic 1%"]["overhead"] < average["periodic 10%"]["overhead"]
    assert average["convergent"]["inv_error"] < 0.2
