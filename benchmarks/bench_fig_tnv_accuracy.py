"""Benchmark: regenerate the paper artifact ``fig-tnv-accuracy``.

See DESIGN.md's experiment index for the paper table/figure this
corresponds to and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from helpers import run_experiment


def test_fig_tnv_accuracy(benchmark):
    result = run_experiment(benchmark, "fig-tnv-accuracy")
    phased = result.data["phased"]
    lfu = phased["LFU (no clearing)"]["inv_error"]
    best = min(e["inv_error"] for label, e in phased.items() if label != "LFU (no clearing)")
    assert best < lfu
