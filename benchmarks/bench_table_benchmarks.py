"""Benchmark: regenerate the paper artifact ``table-benchmarks``.

See DESIGN.md's experiment index for the paper table/figure this
corresponds to and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from helpers import run_experiment


def test_table_benchmarks(benchmark):
    result = run_experiment(benchmark, "table-benchmarks")
    data = result.data
    assert len(data) == 8
    for entry in data.values():
        # train input is the larger run, as in Table III.A.1
        assert entry["train"]["instructions"] > 0
        assert entry["test"]["instructions"] > 0
