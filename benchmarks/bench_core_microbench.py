"""Micro-benchmarks of the profiling core itself.

The paper reports profiling *overhead* (ATOM full value profiling slows
programs by an order of magnitude).  These benchmarks track the cost of
the same primitive operations in this implementation: recording into a
TNV table, recording into a full profile, simulating with and without
instrumentation, and sampled recording.  Each per-event benchmark has a
batched twin (``record_many`` / ``record_batch`` / buffered profiling)
so the speedup of the batched fast path is tracked over time.
"""

import random
import time
from array import array
from collections import Counter

from helpers import append_history, write_bench_json

from repro.core import fold as foldmod
from repro.core.metrics import ValueStreamStats
from repro.core.profile import ProfileDatabase
from repro.core.sampling import ConvergentSampling, SamplingProfiler
from repro.core.sites import load_site
from repro.core.tnv import TNVTable
from repro.core.tracestore import EventTrace, replay_profile
from repro.isa.instrument import ProfileTarget, ValueProfiler
from repro.isa.machine import Machine
from repro.workloads.registry import get_workload

_RNG = random.Random(20_250_705)
_VALUES = [_RNG.randrange(64) for _ in range(10_000)]
_SITE = load_site("bench", "main", 0)


def test_tnv_record_throughput(benchmark):
    def record_all():
        table = TNVTable()
        record = table.record
        for value in _VALUES:
            record(value)
        return table

    table = benchmark(record_all)
    assert table.total == len(_VALUES)
    write_bench_json(benchmark, "tnv_record")


def test_tnv_record_many_throughput(benchmark):
    def record_all():
        table = TNVTable()
        table.record_many(_VALUES)
        return table

    table = benchmark(record_all)
    assert table.total == len(_VALUES)
    write_bench_json(benchmark, "tnv_record_many")


def test_exact_stats_record_throughput(benchmark):
    def record_all():
        stats = ValueStreamStats()
        stats.record_many(_VALUES)
        return stats

    stats = benchmark(record_all)
    assert stats.total == len(_VALUES)


def test_profile_database_record_throughput(benchmark):
    def record_all():
        db = ProfileDatabase()
        for value in _VALUES:
            db.record(_SITE, value)
        return db

    db = benchmark(record_all)
    assert db.total_executions() == len(_VALUES)
    write_bench_json(benchmark, "database_record")


def test_profile_database_record_batch_throughput(benchmark):
    def record_all():
        db = ProfileDatabase()
        db.record_batch(_SITE, _VALUES)
        return db

    db = benchmark(record_all)
    assert db.total_executions() == len(_VALUES)
    write_bench_json(benchmark, "database_record_batch")


def test_sampled_record_throughput(benchmark):
    def record_all():
        profiler = SamplingProfiler(ConvergentSampling(burst=100, base_skip=900))
        for value in _VALUES:
            profiler.record(_SITE, value)
        return profiler

    profiler = benchmark(record_all)
    assert profiler.seen() == len(_VALUES)
    write_bench_json(benchmark, "sampled_record")


def test_sampled_record_batch_throughput(benchmark):
    def record_all():
        profiler = SamplingProfiler(ConvergentSampling(burst=100, base_skip=900))
        profiler.record_batch(_SITE, _VALUES)
        return profiler

    profiler = benchmark(record_all)
    assert profiler.seen() == len(_VALUES)
    write_bench_json(benchmark, "sampled_record_batch")


def test_tnv_record_grouped_throughput(benchmark):
    """The columnar fast path: pre-deduplicated pairs, no re-count."""
    interval = TNVTable().clear_interval
    chunks = [
        Counter(_VALUES[start : start + interval])
        for start in range(0, len(_VALUES), interval)
    ]

    def record_all():
        table = TNVTable()
        for counts in chunks:
            table.record_grouped(counts)
        return table

    table = benchmark(record_all)
    assert table.total == len(_VALUES)
    write_bench_json(benchmark, "tnv_record_grouped")


# ----------------------------------------------------------------------
# replay → fold throughput (the columnar hot path's headline number)
# ----------------------------------------------------------------------

_REPLAY_EVENTS = 400_000
_REPLAY_SITES = 30


def _synthetic_trace(events: int = _REPLAY_EVENTS, sites: int = _REPLAY_SITES) -> EventTrace:
    """A realistic interleaved trace: hot sites, skewed repetitive values."""
    rng = random.Random(20_260_807)
    site_objs = [load_site("bench", "replay", pc) for pc in range(sites)]
    site_ids = array("I", (rng.randrange(sites) for _ in range(events)))
    values = array("q", (rng.randrange(64) if rng.random() < 0.7 else rng.randrange(1 << 20) for _ in range(events)))
    return EventTrace(
        program="bench",
        variant="train",
        scale=1.0,
        sites=site_objs,
        site_ids=site_ids,
        values=values,
        result=None,
        dataset=None,
    )


_TARGETS = (ProfileTarget.LOADS,)


def _events_per_second(trace: EventTrace, fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(trace)
        best = min(best, time.perf_counter() - start)
    return len(trace) / best


def _replay_per_event(trace: EventTrace) -> ProfileDatabase:
    """The pre-fold per-event reference: one ``record`` call per event."""
    database = ProfileDatabase()
    record = database.record
    for site, value in trace.events(_TARGETS):
        record(site, value)
    return database


def test_replay_fold_throughput(benchmark):
    """Replay→fold pipeline: grouped columnar folds vs per-event replay.

    Emits ``BENCH_replay_fold.json`` with events/s for the per-event
    reference, the pure-Python grouped kernel, and (when installed) the
    numpy kernel, plus the pure-Python speedup the PR is gated on.
    """
    trace = _synthetic_trace()
    saved = foldmod.fold_mode()
    try:
        foldmod.set_fold_mode(foldmod.FOLD_PYTHON)
        reference = replay_profile(trace, _TARGETS)

        def fold_python():
            return replay_profile(trace, _TARGETS)

        database = benchmark(fold_python)
        assert database.to_json() == reference.to_json()

        event_eps = _events_per_second(trace, _replay_per_event)
        numpy_eps = None
        if foldmod.have_numpy():
            foldmod.set_fold_mode(foldmod.FOLD_NUMPY)
            assert replay_profile(trace, _TARGETS).to_json() == reference.to_json()
            numpy_eps = _events_per_second(
                trace, lambda t: replay_profile(t, _TARGETS)
            )
    finally:
        foldmod.set_fold_mode(saved)

    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is None:
        return
    # Best-vs-best: the reference numbers above are best-of-N, so the
    # fold number uses the benchmark's min too.
    python_eps = len(trace) / stats.min
    write_bench_json(
        benchmark,
        "replay_fold",
        events=len(trace),
        sites=_REPLAY_SITES,
        events_per_s_python=python_eps,
        events_per_s_python_mean=len(trace) / stats.mean,
        events_per_s_event=event_eps,
        events_per_s_numpy=numpy_eps,
        speedup_python_vs_event=python_eps / event_eps,
    )
    append_history("replay_fold", "events_per_s_python", python_eps)
    append_history("replay_fold", "events_per_s_event", event_eps)
    if numpy_eps is not None:
        append_history("replay_fold", "events_per_s_numpy", numpy_eps)


def _run_go(observer=None):
    workload = get_workload("go")
    dataset = workload.dataset("train", scale=0.1)
    machine = Machine(workload.program(), observer=observer)
    machine.set_input(dataset.values)
    return machine.run()


def test_simulator_uninstrumented(benchmark):
    result = benchmark(_run_go)
    assert result.halted


def test_simulator_with_value_profiling(benchmark):
    workload = get_workload("go")

    def run():
        db = ProfileDatabase()
        observer = ValueProfiler(
            workload.program(), db, targets=(ProfileTarget.INSTRUCTIONS, ProfileTarget.LOADS)
        )
        return _run_go(observer)

    result = benchmark(run)
    assert result.halted
    write_bench_json(benchmark, "simulate_profiled")


def test_simulator_with_buffered_value_profiling(benchmark):
    workload = get_workload("go")

    def run():
        db = ProfileDatabase()
        observer = ValueProfiler(
            workload.program(),
            db,
            targets=(ProfileTarget.INSTRUCTIONS, ProfileTarget.LOADS),
            buffered=True,
        )
        # Machine.run flushes the buffers when the program halts.
        return _run_go(observer)

    result = benchmark(run)
    assert result.halted
    write_bench_json(benchmark, "simulate_profiled_buffered")
