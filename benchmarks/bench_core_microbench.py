"""Micro-benchmarks of the profiling core itself.

The paper reports profiling *overhead* (ATOM full value profiling slows
programs by an order of magnitude).  These benchmarks track the cost of
the same primitive operations in this implementation: recording into a
TNV table, recording into a full profile, simulating with and without
instrumentation, and sampled recording.  Each per-event benchmark has a
batched twin (``record_many`` / ``record_batch`` / buffered profiling)
so the speedup of the batched fast path is tracked over time.
"""

import random

from helpers import write_bench_json

from repro.core.metrics import ValueStreamStats
from repro.core.profile import ProfileDatabase
from repro.core.sampling import ConvergentSampling, SamplingProfiler
from repro.core.sites import load_site
from repro.core.tnv import TNVTable
from repro.isa.instrument import ProfileTarget, ValueProfiler
from repro.isa.machine import Machine
from repro.workloads.registry import get_workload

_RNG = random.Random(20_250_705)
_VALUES = [_RNG.randrange(64) for _ in range(10_000)]
_SITE = load_site("bench", "main", 0)


def test_tnv_record_throughput(benchmark):
    def record_all():
        table = TNVTable()
        record = table.record
        for value in _VALUES:
            record(value)
        return table

    table = benchmark(record_all)
    assert table.total == len(_VALUES)
    write_bench_json(benchmark, "tnv_record")


def test_tnv_record_many_throughput(benchmark):
    def record_all():
        table = TNVTable()
        table.record_many(_VALUES)
        return table

    table = benchmark(record_all)
    assert table.total == len(_VALUES)
    write_bench_json(benchmark, "tnv_record_many")


def test_exact_stats_record_throughput(benchmark):
    def record_all():
        stats = ValueStreamStats()
        stats.record_many(_VALUES)
        return stats

    stats = benchmark(record_all)
    assert stats.total == len(_VALUES)


def test_profile_database_record_throughput(benchmark):
    def record_all():
        db = ProfileDatabase()
        for value in _VALUES:
            db.record(_SITE, value)
        return db

    db = benchmark(record_all)
    assert db.total_executions() == len(_VALUES)
    write_bench_json(benchmark, "database_record")


def test_profile_database_record_batch_throughput(benchmark):
    def record_all():
        db = ProfileDatabase()
        db.record_batch(_SITE, _VALUES)
        return db

    db = benchmark(record_all)
    assert db.total_executions() == len(_VALUES)
    write_bench_json(benchmark, "database_record_batch")


def test_sampled_record_throughput(benchmark):
    def record_all():
        profiler = SamplingProfiler(ConvergentSampling(burst=100, base_skip=900))
        for value in _VALUES:
            profiler.record(_SITE, value)
        return profiler

    profiler = benchmark(record_all)
    assert profiler.seen() == len(_VALUES)
    write_bench_json(benchmark, "sampled_record")


def test_sampled_record_batch_throughput(benchmark):
    def record_all():
        profiler = SamplingProfiler(ConvergentSampling(burst=100, base_skip=900))
        profiler.record_batch(_SITE, _VALUES)
        return profiler

    profiler = benchmark(record_all)
    assert profiler.seen() == len(_VALUES)
    write_bench_json(benchmark, "sampled_record_batch")


def _run_go(observer=None):
    workload = get_workload("go")
    dataset = workload.dataset("train", scale=0.1)
    machine = Machine(workload.program(), observer=observer)
    machine.set_input(dataset.values)
    return machine.run()


def test_simulator_uninstrumented(benchmark):
    result = benchmark(_run_go)
    assert result.halted


def test_simulator_with_value_profiling(benchmark):
    workload = get_workload("go")

    def run():
        db = ProfileDatabase()
        observer = ValueProfiler(
            workload.program(), db, targets=(ProfileTarget.INSTRUCTIONS, ProfileTarget.LOADS)
        )
        return _run_go(observer)

    result = benchmark(run)
    assert result.halted
    write_bench_json(benchmark, "simulate_profiled")


def test_simulator_with_buffered_value_profiling(benchmark):
    workload = get_workload("go")

    def run():
        db = ProfileDatabase()
        observer = ValueProfiler(
            workload.program(),
            db,
            targets=(ProfileTarget.INSTRUCTIONS, ProfileTarget.LOADS),
            buffered=True,
        )
        # Machine.run flushes the buffers when the program halts.
        return _run_go(observer)

    result = benchmark(run)
    assert result.halted
    write_bench_json(benchmark, "simulate_profiled_buffered")
