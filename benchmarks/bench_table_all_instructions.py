"""Benchmark: regenerate the paper artifact ``table-all-instructions``.

See DESIGN.md's experiment index for the paper table/figure this
corresponds to and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from helpers import run_experiment


def test_table_all_instructions(benchmark):
    result = run_experiment(benchmark, "table-all-instructions")
    average = result.data["average"]
    assert average["Inv-Top1"] > 15.0
    assert average["%Zeros"] > 1.0
