"""Benchmark: regenerate the paper artifact ``table-predictors``.

See DESIGN.md's experiment index for the paper table/figure this
corresponds to and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from helpers import run_experiment


def test_table_predictors(benchmark):
    result = run_experiment(benchmark, "table-predictors")
    averages = result.data["average"]
    assert averages["stride"] > averages["lvp"]
    assert averages["hybrid(stride+2level)"] >= averages["2level"] - 0.02
