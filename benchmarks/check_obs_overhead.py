"""Guard: observability disabled must cost (almost) nothing.

The observability layer's contract (docs/observability.md) is that with
metrics/tracing disabled — the default — the per-event recording hot
path is exactly as fast as an uninstrumented build, because all
instrumentation sits at batch/clear/run boundaries.  This script
enforces that contract two ways:

1. **In-process control (always run, machine-independent).**  Time
   ``TNVTable.record`` over the bench_tnv_record workload against an
   inline control class that replicates the pre-observability record
   semantics line for line, with no ``repro.obs`` import anywhere.
   Both loops run interleaved in one process, so the comparison is
   noise-bounded rather than machine-bound.  The instrumented table
   must stay within ``TOLERANCE`` (5%) of the control.

2. **Committed baseline (opt-in via ``REPRO_BENCH_STRICT=1``).**
   Compare the measured mean against the committed
   ``benchmarks/results/BENCH_tnv_record.json``.  Only meaningful on
   the machine that produced the baseline, hence opt-in for local use;
   CI runners have different hardware and rely on check 1.

3. **Time-series enabled (always run).**  The time-series collector
   advances only at batch boundaries, so even *enabled* at its default
   interval it must keep ``ProfileDatabase.record_batch`` within
   ``TOLERANCE`` of the collector-off path.  Both loops interleave in
   one process, like check 1.

4. **Serve-plane telemetry (opt-in via ``--serve``).**  The shard fold
   path records per-batch timings into always-on histograms
   (``ShardCore(telemetry=True)``, the production default).  That
   instrumentation sits at batch boundaries too, so the telemetry-on
   fold loop must stay within ``TOLERANCE`` of ``telemetry=False``.
   Interleaved min-of-rounds like the others; journaling is off so the
   comparison times the fold, not the disk.

5. **Tier-2 jitlog enabled (always run).**  The specialization journal
   records only at lifecycle points (hot/quicken/deopt/compile), never
   in the superinstruction dispatch loop, so even *enabled* it must
   keep a quickening-heavy tier-2 run within ``TOLERANCE`` of the
   journal-off run.  Interleaved min-of-rounds, fresh machine per
   round so each run replays the whole lifecycle.

Exit status 0 on pass, 1 on regression.  Run as:

    PYTHONPATH=src python benchmarks/check_obs_overhead.py [--serve]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import random
import sys
import tempfile
import time

from repro.core.tnv import TNVTable
from repro.obs import METRICS, TRACER

TOLERANCE = 0.05
ROUNDS = 15

_RNG = random.Random(20_250_705)  # same workload as bench_core_microbench
_VALUES = [_RNG.randrange(64) for _ in range(10_000)]

RESULTS = pathlib.Path(__file__).parent / "results" / "BENCH_tnv_record.json"


class _ControlTNV:
    """The pre-observability ``TNVTable`` record path, verbatim.

    No ``repro.obs`` import, no enabled checks anywhere — this is what
    "uninstrumented" means, re-measured on the current machine so the
    guard is hardware-independent.
    """

    __slots__ = ("capacity", "steady", "clear_interval", "_entries", "_since_clear", "_total", "_clears")

    def __init__(self, capacity=10, steady=5, clear_interval=2000):
        self.capacity = capacity
        self.steady = steady
        self.clear_interval = clear_interval
        self._entries = {}
        self._since_clear = 0
        self._total = 0
        self._clears = 0

    def record(self, value):
        self._total += 1
        entries = self._entries
        if value in entries:
            entries[value] += 1
        elif len(entries) < self.capacity:
            entries[value] = 1
        if self.clear_interval is not None:
            self._since_clear += 1
            if self._since_clear >= self.clear_interval:
                self.clear_bottom()

    def clear_bottom(self):
        self._since_clear = 0
        self._clears += 1
        if len(self._entries) <= self.steady:
            return
        survivors = sorted(self._entries.items(), key=lambda item: (-item[1], repr(item[0])))
        self._entries = dict(survivors[: self.steady])


def _time_once(table_factory) -> float:
    table = table_factory()
    record = table.record
    values = _VALUES
    start = time.perf_counter()
    for value in values:
        record(value)
    return time.perf_counter() - start


def _best_of(table_factory, rounds: int) -> float:
    return min(_time_once(table_factory) for _ in range(rounds))


def _time_batches() -> float:
    """One round of batched profiling (the boundary the collector taps)."""
    from repro.core.profile import ProfileDatabase
    from repro.core.sites import instruction_site

    sites = [instruction_site("bench", "main", pc, "add") for pc in range(8)]
    batch = _VALUES[:1000]
    database = ProfileDatabase(exact=False)
    record_batch = database.record_batch
    start = time.perf_counter()
    for index in range(50):
        record_batch(sites[index % len(sites)], batch)
    return time.perf_counter() - start


def check_timeseries_enabled() -> bool:
    """Enabled-mode budget: record_batch with the collector sampling at
    its default interval must stay within TOLERANCE of collector-off."""
    from repro.obs.timeseries import DEFAULT_INTERVAL, TIMESERIES

    _time_batches()  # warm
    enabled = []
    disabled = []
    for _ in range(ROUNDS):
        TIMESERIES.enable(interval=DEFAULT_INTERVAL)
        try:
            enabled.append(_time_batches())
        finally:
            TIMESERIES.disable()
            TIMESERIES.reset()
        disabled.append(_time_batches())
    ratio = min(enabled) / min(disabled)
    print(
        f"record_batch timeseries-enabled: {min(enabled) * 1e3:.2f}ms "
        f"vs disabled {min(disabled) * 1e3:.2f}ms (ratio {ratio:.3f}, "
        f"tolerance {1 + TOLERANCE:.2f})"
    )
    if ratio > 1 + TOLERANCE:
        print(
            f"FAIL: timeseries-enabled batch path is {ratio:.3f}x the "
            f"collector-off path (> {1 + TOLERANCE:.2f}x)"
        )
        return False
    return True


def _time_shard_submit(telemetry: bool, batches: int = 100) -> float:
    """One fresh shard folding ``batches`` sub-batches, journal off."""
    from repro.core.sites import Site, SiteKind
    from repro.serve.protocol import site_to_payload
    from repro.serve.shard import ShardCore

    payloads = [
        site_to_payload(
            Site(
                kind=SiteKind.LOAD,
                program="bench",
                procedure=f"proc{index % 3}",
                label=f"site{index}",
                opcode="load",
            )
        )
        for index in range(8)
    ]
    sidx = [index % len(payloads) for index in range(len(_VALUES) // 10)]
    values = _VALUES[: len(sidx)]
    with tempfile.TemporaryDirectory() as directory:
        core = ShardCore(0, directory, exact=False, telemetry=telemetry)
        submit = core.submit
        start = time.perf_counter()
        for seq in range(batches):
            submit("bench", seq, payloads, sidx, values, journal=False)
        elapsed = time.perf_counter() - start
        core.close()
    return elapsed


def check_serve_telemetry() -> bool:
    """Serve budget: the always-on fold histograms must stay within
    TOLERANCE of a telemetry-off shard on the pure fold path."""
    _time_shard_submit(True)  # warm
    _time_shard_submit(False)
    on = []
    off = []
    for _ in range(ROUNDS):
        on.append(_time_shard_submit(True))
        off.append(_time_shard_submit(False))
    ratio = min(on) / min(off)
    print(
        f"shard fold telemetry-on: {min(on) * 1e3:.2f}ms vs off "
        f"{min(off) * 1e3:.2f}ms (ratio {ratio:.3f}, "
        f"tolerance {1 + TOLERANCE:.2f})"
    )
    if ratio > 1 + TOLERANCE:
        print(
            f"FAIL: serve fold telemetry costs {ratio:.3f}x the "
            f"telemetry-off path (> {1 + TOLERANCE:.2f}x)"
        )
        return False
    return True


_TIER2_BENCH = """
.program jitbench
.text
.proc main nargs=0
    li r8, 5
    li r9, 0
    li r10, 40000
outer:
    mul r11, r8, r8
    add r9, r9, r11
    add r9, r9, r8
    xor r11, r11, r9
    subi r10, r10, 1
    seqi r12, r10, 20000
    beqz r12, skip
    add r8, r8, r10
skip:
    bnez r10, outer
    out r9
    halt
.endproc
"""


def _time_tier2_run(journal: bool) -> float:
    """One full tier-2 run (warm-up, quicken, one deopt/requicken) on a
    fresh machine; the journal, when on, sees the whole lifecycle."""
    from repro.isa.assembler import assemble
    from repro.isa.machine import Machine
    from repro.obs.jitlog import JITLOG

    machine = Machine(assemble(_TIER2_BENCH), engine="tier2")
    if journal:
        JITLOG.enable()
    try:
        start = time.perf_counter()
        machine.run()
        return time.perf_counter() - start
    finally:
        if journal:
            JITLOG.disable()
            JITLOG.reset()


def check_jitlog_enabled() -> bool:
    """Tier-2 budget: a quickening-heavy run with the specialization
    journal enabled must stay within TOLERANCE of journal-off."""
    _time_tier2_run(True)  # warm (also warms the tier-2 code cache)
    _time_tier2_run(False)
    on = []
    off = []
    for _ in range(ROUNDS):
        on.append(_time_tier2_run(True))
        off.append(_time_tier2_run(False))
    ratio = min(on) / min(off)
    print(
        f"tier2 run jitlog-on: {min(on) * 1e3:.2f}ms vs off "
        f"{min(off) * 1e3:.2f}ms (ratio {ratio:.3f}, "
        f"tolerance {1 + TOLERANCE:.2f})"
    )
    if ratio > 1 + TOLERANCE:
        print(
            f"FAIL: tier-2 jitlog-enabled run is {ratio:.3f}x the "
            f"journal-off run (> {1 + TOLERANCE:.2f}x)"
        )
        return False
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--serve",
        action="store_true",
        help="also run the serve-plane telemetry leg (shard fold path)",
    )
    args = parser.parse_args(argv)
    assert not METRICS.enabled and not TRACER.enabled, (
        "guard must measure the disabled default"
    )
    # Warm both classes, then interleave the measured rounds so drift
    # (frequency scaling, competing load) hits both sides equally.
    _time_once(TNVTable)
    _time_once(_ControlTNV)
    instrumented = []
    control = []
    for _ in range(ROUNDS):
        instrumented.append(_time_once(TNVTable))
        control.append(_time_once(_ControlTNV))
    best_instrumented = min(instrumented)
    best_control = min(control)
    ratio = best_instrumented / best_control
    print(
        f"tnv_record disabled-mode: instrumented {best_instrumented * 1e6:.1f}us "
        f"vs control {best_control * 1e6:.1f}us (ratio {ratio:.3f}, "
        f"tolerance {1 + TOLERANCE:.2f})"
    )
    failed = False
    if ratio > 1 + TOLERANCE:
        print(
            f"FAIL: observability-disabled TNV record path is {ratio:.3f}x the "
            f"uninstrumented control (> {1 + TOLERANCE:.2f}x)"
        )
        failed = True

    if os.environ.get("REPRO_BENCH_STRICT") == "1" and RESULTS.is_file():
        baseline = json.loads(RESULTS.read_text())
        baseline_per_call = baseline["min_s"]
        strict_ratio = best_instrumented / baseline_per_call
        print(
            f"committed baseline: {baseline_per_call * 1e6:.1f}us, "
            f"measured/baseline ratio {strict_ratio:.3f}"
        )
        if strict_ratio > 1 + TOLERANCE:
            print("FAIL: regressed vs the committed BENCH_tnv_record.json baseline")
            failed = True

    if not check_timeseries_enabled():
        failed = True

    if not check_jitlog_enabled():
        failed = True

    if args.serve and not check_serve_telemetry():
        failed = True

    if not failed:
        print("PASS")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
