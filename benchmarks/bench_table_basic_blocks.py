"""Benchmark: regenerate the paper artifact ``table-basic-blocks``.

Thesis Table IV.1: the basic-block quantile table (hot-block skew).
"""

from helpers import run_experiment


def test_table_basic_blocks(benchmark):
    result = run_experiment(benchmark, "table-basic-blocks")
    assert result.data["mean_top_10pct"] > 0.3
