"""Benchmark: regenerate the paper artifact ``table-insn-classes``.

See DESIGN.md's experiment index for the paper table/figure this
corresponds to and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from helpers import run_experiment


def test_table_insn_classes(benchmark):
    result = run_experiment(benchmark, "table-insn-classes")
    data = result.data
    assert data["compare"]["Inv-Top1"] > data["muldiv"]["Inv-Top1"]
    assert data["move"]["Inv-Top1"] > data["muldiv"]["Inv-Top1"]
