"""Benchmark: regenerate the paper artifact ``table-predictor-filtering``.

See DESIGN.md's experiment index for the paper table/figure this
corresponds to and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from helpers import run_experiment


def test_table_predictor_filtering(benchmark):
    result = run_experiment(benchmark, "table-predictor-filtering")
    averages = result.data["average"]
    assert averages["filtered"] > averages["unfiltered"]
