"""Benchmark: regenerate the paper artifact ``table-parameters``.

See DESIGN.md's experiment index for the paper table/figure this
corresponds to and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from helpers import run_experiment


def test_table_parameters(benchmark):
    result = run_experiment(benchmark, "table-parameters")
    shares = [e["semi_invariant_share"] for e in result.data.values()
              if isinstance(e, dict) and "semi_invariant_share" in e]
    assert max(shares) > 0.2
