"""Benchmark: regenerate the paper artifact ``table-pyprof``.

See DESIGN.md's experiment index for the paper table/figure this
corresponds to and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from helpers import run_experiment


def test_table_pyprof(benchmark):
    result = run_experiment(benchmark, "table-pyprof")
    entry = result.data["perl.reference.ast"]
    assert entry["sites"] >= 5
