"""Benchmark: regenerate the paper artifact ``table-specialization``.

See DESIGN.md's experiment index for the paper table/figure this
corresponds to and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from helpers import run_experiment


def test_table_specialization(benchmark):
    result = run_experiment(benchmark, "table-specialization")
    filt = result.data["filter_signal"]
    assert filt["bindings"]
    assert filt["speedup_direct"] > 0.95
