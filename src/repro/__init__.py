"""Value Profiling — reproduction of Calder, Feller & Eustace (MICRO-30, 1997).

Public API tour:

* :mod:`repro.core` — TNV tables, metrics (LVP, Inv-Top, Diff, %Zeros),
  profile databases, convergence detection, sampling policies.
* :mod:`repro.isa` — the VPA RISC substrate: assembler, interpreter,
  ATOM-style instrumentation.
* :mod:`repro.workloads` — eight SPEC95-analogue benchmark programs
  with train/test inputs and self-checking references.
* :mod:`repro.pyprof` — value profiling of Python code (call hook, AST
  instrumentation, memory-location wrappers).
* :mod:`repro.predictors` — LVP/stride/2-level/hybrid value predictors
  and profile-guided filtering.
* :mod:`repro.specialize` — profile-guided code specialization with
  guarded dispatch and an adaptive (self-specializing) wrapper.
* :mod:`repro.analysis` — the experiment registry regenerating every
  table and figure (see DESIGN.md / EXPERIMENTS.md).

Quickstart::

    from repro.workloads import profile_workload
    from repro.core import SiteKind

    run = profile_workload("compress", "train")
    print(run.database.summary(SiteKind.LOAD))
"""

from repro.core import (
    ConvergenceDetector,
    ConvergentSampling,
    FullSampling,
    PeriodicSampling,
    ProfileDatabase,
    SamplingProfiler,
    Site,
    SiteKind,
    SiteMetrics,
    TNVConfig,
    TNVTable,
    ValueStreamStats,
)
from repro.errors import (
    AssemblerError,
    ExperimentError,
    MachineError,
    ProfileError,
    ReproError,
    SpecializationError,
    WorkloadError,
)

__version__ = "1.0.0"

__all__ = [
    "AssemblerError",
    "ConvergenceDetector",
    "ConvergentSampling",
    "ExperimentError",
    "FullSampling",
    "MachineError",
    "PeriodicSampling",
    "ProfileDatabase",
    "ProfileError",
    "ReproError",
    "SamplingProfiler",
    "Site",
    "SiteKind",
    "SiteMetrics",
    "SpecializationError",
    "TNVConfig",
    "TNVTable",
    "ValueStreamStats",
    "WorkloadError",
    "__version__",
]
