"""Workload registry.

A *workload* bundles everything one benchmark program needs:

* VPA assembly source (possibly generated, e.g. to embed cosine tables),
* deterministic ``train`` and ``test`` input generators — the paper's
  two SPEC data sets per program (Table III.A.1),
* a pure-Python *reference implementation* that computes the expected
  output stream, making every workload self-checking.

The eight workloads mirror the character of the SPEC95 integer suite
the paper profiles; see each module's docstring for the mapping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import WorkloadError
from repro.isa.assembler import assemble
from repro.isa.program import Program

#: Input variants, matching the paper's two data sets per benchmark.
VARIANTS = ("train", "test")


@dataclass(frozen=True)
class DataSet:
    """One concrete input for one workload."""

    workload: str
    variant: str
    values: Sequence[int]
    expected_output: Sequence[int]

    @property
    def name(self) -> str:
        return f"{self.workload}.{self.variant}"


@dataclass
class Workload:
    """One benchmark program plus its inputs and reference.

    Attributes:
        name: short name used everywhere in reports.
        spec_analogue: which SPEC95 program this mirrors.
        description: one-line summary of what the program does.
        build_source: callable producing the VPA assembly text.
        make_input: ``(variant, scale, rng) -> input values``.
        reference: ``input values -> expected output stream``.
    """

    name: str
    spec_analogue: str
    description: str
    build_source: Callable[[], str]
    make_input: Callable[[str, float, random.Random], List[int]]
    reference: Callable[[Sequence[int]], List[int]]
    _program: Optional[Program] = field(default=None, repr=False)

    def program(self) -> Program:
        """Assemble (and cache) the workload's program."""
        if self._program is None:
            self._program = assemble(self.build_source(), name=self.name)
        return self._program

    def dataset(self, variant: str = "train", scale: float = 1.0) -> DataSet:
        """Build the deterministic input + expected output for ``variant``.

        ``scale`` grows or shrinks the input size; 1.0 is the default
        experiment size.  Train and test use different seeds *and*
        different sizes, like SPEC's train/test inputs.
        """
        if variant not in VARIANTS:
            raise WorkloadError(f"{self.name}: unknown variant {variant!r} (use {VARIANTS})")
        if scale <= 0:
            raise WorkloadError(f"{self.name}: scale must be positive, got {scale}")
        rng = random.Random(f"{self.name}/{variant}")
        values = self.make_input(variant, scale, rng)
        expected = self.reference(values)
        return DataSet(self.name, variant, tuple(values), tuple(expected))


_REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    """Add a workload to the global registry (import-time hook)."""
    if workload.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def unregister(name: str) -> None:
    """Remove a workload (primarily for tests registering temporaries)."""
    _REGISTRY.pop(name, None)


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise WorkloadError(f"unknown workload {name!r} (known: {known})") from None


def all_workloads() -> List[Workload]:
    """Every registered workload, in stable name order."""
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def workload_names() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


_LOADED = False


def _ensure_loaded() -> None:
    """Import the workload modules so they self-register.

    Guarded by a flag, not by registry emptiness: importing a single
    workload module directly registers that one workload, which must
    not suppress loading the rest.
    """
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    from repro.workloads import (  # noqa: F401  (import for side effect)
        compress,
        gcc,
        go,
        ijpeg,
        li,
        m88ksim,
        perl,
        vortex,
    )
