"""``li`` — stack-VM interpreter (SPEC95 ``130.li`` analogue).

The VPA program is a bytecode interpreter: it loads a stack-machine
program from its input, then runs a fetch-decode-dispatch loop using a
handler jump table (``jr`` through a table load — the same indirect-
dispatch pattern as the Xlisp interpreter).  Its hallmark value
streams: the opcode fetch load (few distinct values, heavily skewed),
the handler-address load (semi-invariant), and variable-slot loads.

Input format: ``L`` then ``L`` bytecode words.
Output: whatever the interpreted program's OUT instructions produce.

Bytecode opcodes (operand in the following word where noted)::

    0 HALT    1 PUSH imm   2 ADD    3 SUB     4 MUL      5 LT
    6 JMPZ t  7 JMP t      8 LOAD v 9 STORE v 10 OUT     11 DUP
    12 AND
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.workloads.registry import Workload, register

OP_HALT, OP_PUSH, OP_ADD, OP_SUB, OP_MUL, OP_LT = 0, 1, 2, 3, 4, 5
OP_JMPZ, OP_JMP, OP_LOAD, OP_STORE, OP_OUT, OP_DUP, OP_AND = 6, 7, 8, 9, 10, 11, 12

_SOURCE = """
.program li
.data
handlers: .word h_halt, h_push, h_add, h_sub, h_mul, h_lt
          .word h_jmpz, h_jmp, h_load, h_store, h_out, h_dup, h_and
bc:    .space 512
vars:  .space 16
stack: .space 64
.text
.proc main nargs=0
    la   r1, bc
    call load_bytecode
    la   r1, bc
    la   r2, stack
    call interp
    halt
.endproc

.proc load_bytecode nargs=1
    ; r1 = destination buffer (invariant parameter)
    in  r10            ; bytecode length
    mov r11, r1
lb_loop:
    beqz r10, lb_done
    in  r12
    st  r12, 0(r11)
    inc r11
    dec r10
    j lb_loop
lb_done:
    ret
.endproc

.proc interp nargs=2
    ; r1 = bytecode base, r2 = operand-stack base (both invariant)
    mov r20, r1        ; bytecode base
    li  r16, 0         ; vm pc
    mov r18, r2        ; vm sp (next free slot, grows up)
vm_loop:
    mov r10, r20
    add r10, r10, r16
    ld  r11, 0(r10)    ; fetch opcode
    inc r16
    la  r12, handlers
    add r12, r12, r11
    ld  r13, 0(r12)    ; handler address (jump-table load)
    jr  r13
h_push:
    mov r10, r20
    add r10, r10, r16
    ld  r11, 0(r10)    ; operand
    inc r16
    st  r11, 0(r18)
    inc r18
    j vm_loop
h_add:
    dec r18
    ld  r11, 0(r18)
    dec r18
    ld  r12, 0(r18)
    add r12, r12, r11
    st  r12, 0(r18)
    inc r18
    j vm_loop
h_sub:
    dec r18
    ld  r11, 0(r18)
    dec r18
    ld  r12, 0(r18)
    sub r12, r12, r11
    st  r12, 0(r18)
    inc r18
    j vm_loop
h_mul:
    dec r18
    ld  r11, 0(r18)
    dec r18
    ld  r12, 0(r18)
    mul r12, r12, r11
    st  r12, 0(r18)
    inc r18
    j vm_loop
h_lt:
    dec r18
    ld  r11, 0(r18)
    dec r18
    ld  r12, 0(r18)
    slt r12, r12, r11
    st  r12, 0(r18)
    inc r18
    j vm_loop
h_and:
    dec r18
    ld  r11, 0(r18)
    dec r18
    ld  r12, 0(r18)
    and r12, r12, r11
    st  r12, 0(r18)
    inc r18
    j vm_loop
h_jmpz:
    mov r10, r20
    add r10, r10, r16
    ld  r11, 0(r10)    ; branch target
    inc r16
    dec r18
    ld  r12, 0(r18)    ; condition
    bnez r12, vm_loop
    mov r16, r11
    j vm_loop
h_jmp:
    mov r10, r20
    add r10, r10, r16
    ld  r11, 0(r10)
    mov r16, r11
    j vm_loop
h_load:
    mov r10, r20
    add r10, r10, r16
    ld  r11, 0(r10)    ; variable index
    inc r16
    la  r12, vars
    add r12, r12, r11
    ld  r13, 0(r12)
    st  r13, 0(r18)
    inc r18
    j vm_loop
h_store:
    mov r10, r20
    add r10, r10, r16
    ld  r11, 0(r10)
    inc r16
    dec r18
    ld  r13, 0(r18)
    la  r12, vars
    add r12, r12, r11
    st  r13, 0(r12)
    j vm_loop
h_out:
    dec r18
    ld  r11, 0(r18)
    out r11
    j vm_loop
h_dup:
    subi r10, r18, 1
    ld   r11, 0(r10)
    st   r11, 0(r18)
    inc  r18
    j vm_loop
h_halt:
    ret
.endproc
"""


def build_source() -> str:
    return _SOURCE


class _Asm:
    """Tiny bytecode assembler with label backpatching."""

    def __init__(self) -> None:
        self.words: List[int] = []
        self._patches: List[tuple] = []
        self._labels: dict = {}

    def emit(self, *words: int) -> None:
        self.words.extend(words)

    def label(self, name: str) -> None:
        self._labels[name] = len(self.words)

    def jump(self, op: int, target: str) -> None:
        self.words.append(op)
        self._patches.append((len(self.words), target))
        self.words.append(-1)

    def finish(self) -> List[int]:
        for position, target in self._patches:
            self.words[position] = self._labels[target]
        return self.words


def _build_program(fib_iters: int, sum_iters: int, mask: int) -> List[int]:
    """Bytecode: iterative Fibonacci (masked) then a sum-of-squares loop."""
    a = _Asm()
    # vars: 0=i, 1=fa, 2=fb, 3=t, 4=sum, 5=j
    a.emit(OP_PUSH, 0, OP_STORE, 1)
    a.emit(OP_PUSH, 1, OP_STORE, 2)
    a.emit(OP_PUSH, fib_iters, OP_STORE, 0)
    a.label("fib")
    a.emit(OP_LOAD, 0)
    a.jump(OP_JMPZ, "fib_end")
    a.emit(OP_LOAD, 1, OP_LOAD, 2, OP_ADD, OP_PUSH, mask, OP_AND, OP_STORE, 3)
    a.emit(OP_LOAD, 2, OP_STORE, 1)
    a.emit(OP_LOAD, 3, OP_STORE, 2)
    a.emit(OP_LOAD, 0, OP_PUSH, 1, OP_SUB, OP_STORE, 0)
    a.jump(OP_JMP, "fib")
    a.label("fib_end")
    a.emit(OP_LOAD, 1, OP_OUT)
    a.emit(OP_PUSH, 0, OP_STORE, 4)
    a.emit(OP_PUSH, sum_iters, OP_STORE, 5)
    a.label("sum")
    a.emit(OP_LOAD, 5)
    a.jump(OP_JMPZ, "sum_end")
    a.emit(OP_LOAD, 5, OP_DUP, OP_MUL, OP_LOAD, 4, OP_ADD, OP_PUSH, mask, OP_AND, OP_STORE, 4)
    a.emit(OP_LOAD, 5, OP_PUSH, 1, OP_SUB, OP_STORE, 5)
    a.jump(OP_JMP, "sum")
    a.label("sum_end")
    a.emit(OP_LOAD, 4, OP_OUT)
    a.emit(OP_HALT)
    return a.finish()


def make_input(variant: str, scale: float, rng: random.Random) -> List[int]:
    if variant == "train":
        fib = max(4, int(1400 * scale)) + rng.randrange(8)
        total = max(4, int(1400 * scale)) + rng.randrange(8)
    else:
        fib = max(4, int(900 * scale)) + rng.randrange(8)
        total = max(4, int(700 * scale)) + rng.randrange(8)
    program = _build_program(fib, total, 0xFFFFF)
    return [len(program)] + program


def reference(values: Sequence[int]) -> List[int]:
    """Python mirror of the VPA interpreter."""
    length = values[0]
    bc = list(values[1 : 1 + length])
    vars_ = [0] * 16
    stack: List[int] = []
    out: List[int] = []
    pc = 0
    while True:
        op = bc[pc]
        pc += 1
        if op == OP_HALT:
            break
        if op == OP_PUSH:
            stack.append(bc[pc])
            pc += 1
        elif op == OP_ADD:
            b, a = stack.pop(), stack.pop()
            stack.append(a + b)
        elif op == OP_SUB:
            b, a = stack.pop(), stack.pop()
            stack.append(a - b)
        elif op == OP_MUL:
            b, a = stack.pop(), stack.pop()
            stack.append(a * b)
        elif op == OP_LT:
            b, a = stack.pop(), stack.pop()
            stack.append(1 if a < b else 0)
        elif op == OP_AND:
            b, a = stack.pop(), stack.pop()
            stack.append(a & b)
        elif op == OP_JMPZ:
            target = bc[pc]
            pc += 1
            if stack.pop() == 0:
                pc = target
        elif op == OP_JMP:
            pc = bc[pc]
        elif op == OP_LOAD:
            stack.append(vars_[bc[pc]])
            pc += 1
        elif op == OP_STORE:
            vars_[bc[pc]] = stack.pop()
            pc += 1
        elif op == OP_OUT:
            out.append(stack.pop())
        elif op == OP_DUP:
            stack.append(stack[-1])
        else:  # pragma: no cover - generator never emits unknown ops
            raise ValueError(f"bad opcode {op}")
    return out


WORKLOAD = register(
    Workload(
        name="li",
        spec_analogue="130.li",
        description="stack-VM bytecode interpreter with jump-table dispatch",
        build_source=build_source,
        make_input=make_input,
        reference=reference,
    )
)
