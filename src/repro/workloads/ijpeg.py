"""``ijpeg`` — 8x8 integer DCT + quantization (SPEC95 ``132.ijpeg`` analogue).

Processes a stream of 8x8 pixel blocks: level shift, separable 2-D
integer DCT (fixed-point cosine table, scale 128), then quantization by
per-coefficient arithmetic shifts.  The characteristic value streams
match the real JPEG coder: perfectly invariant coefficient/quant-table
loads, multiply results dominated by small magnitudes, and quantized
coefficients that are mostly zero (the paper's %Zeros metric shines
here).

Input format: ``B`` then ``B * 64`` pixel values in [0, 255].
Output: ``checksum, zero_coefficients, blocks``.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence

from repro.workloads.registry import Workload, register

_SCALE_SHIFT = 7  # cosine table entries are cos * 128

#: Fixed-point 8-point DCT-II coefficients, C[u][i] = round(128 * c(u) * cos((2i+1)u*pi/16)).
DCT_COEF: List[int] = []
for u in range(8):
    cu = math.sqrt(0.5) if u == 0 else 1.0
    for i in range(8):
        DCT_COEF.append(round(128 * cu * 0.5 * math.cos((2 * i + 1) * u * math.pi / 16)))

#: Quantization shift per coefficient: coarser for higher frequencies.
QUANT_SHIFT: List[int] = [min(6, 2 + (row + col) // 2) for row in range(8) for col in range(8)]


def _words(values: Sequence[int], per_line: int = 8) -> str:
    lines = []
    for start in range(0, len(values), per_line):
        chunk = ", ".join(str(v) for v in values[start : start + per_line])
        lines.append(f"    .word {chunk}")
    return "\n".join(lines)


def build_source() -> str:
    return f"""
.program ijpeg
.data
dctcoef:
{_words(DCT_COEF)}
qshift:
{_words(QUANT_SHIFT)}
blk: .space 64
tmp: .space 64
.text
.proc main nargs=0
    in  r16            ; number of blocks
    li  r17, 0         ; checksum
    li  r18, 0         ; zero coefficients
    li  r19, 0         ; blocks processed
bloop:
    beqz r16, done
    dec  r16
    ; --- read one block with level shift (pixel - 128) ---
    la  r10, blk
    li  r11, 64
read:
    in   r12
    subi r12, r12, 128
    st   r12, 0(r10)
    inc  r10
    dec  r11
    bnez r11, read
    ; --- row DCT: blk rows -> tmp rows ---
    li  r13, 0
rowl:
    slli r14, r13, 3
    la   r1, blk
    add  r1, r1, r14
    la   r2, tmp
    add  r2, r2, r14
    li   r3, 1
    li   r4, 1
    mov  r22, r13
    call dct1d
    mov  r13, r22
    inc  r13
    li   r7, 8
    blt  r13, r7, rowl
    ; --- column DCT: tmp columns -> blk columns ---
    li  r13, 0
coll:
    la   r1, tmp
    add  r1, r1, r13
    la   r2, blk
    add  r2, r2, r13
    li   r3, 8
    li   r4, 8
    mov  r22, r13
    call dct1d
    mov  r13, r22
    inc  r13
    li   r7, 8
    blt  r13, r7, coll
    ; --- quantize and accumulate ---
    mov  r1, r17
    call quantize      ; r1 = new checksum, r2 = zeros in this block
    mov  r17, r1
    add  r18, r18, r2
    inc  r19
    j bloop
done:
    out r17
    out r18
    out r19
    halt
.endproc

.proc dct1d nargs=4
    ; r1 = src base, r2 = dst base, r3 = src stride, r4 = dst stride
    li r10, 0          ; u
du_loop:
    li   r11, 0        ; i
    li   r12, 0        ; accumulator
    slli r13, r10, 3
    la   r14, dctcoef
    add  r14, r14, r13 ; &C[u][0]
    mov  r15, r1       ; src cursor
di_loop:
    ld   r8, 0(r15)
    ld   r9, 0(r14)
    mul  r8, r8, r9
    add  r12, r12, r8
    add  r15, r15, r3
    inc  r14
    inc  r11
    li   r7, 8
    blt  r11, r7, di_loop
    srai r12, r12, 7   ; descale (table is cos * 128)
    mul  r7, r10, r4
    add  r7, r7, r2
    st   r12, 0(r7)
    inc  r10
    li   r7, 8
    blt  r10, r7, du_loop
    ret
.endproc

.proc quantize nargs=1
    ; r1 = checksum in -> r1 = checksum out, r2 = zero count
    la  r10, blk
    la  r11, qshift
    li  r12, 64
    li  r2, 0
q_loop:
    ld   r13, 0(r10)
    ld   r14, 0(r11)
    sra  r13, r13, r14
    muli r1, r1, 17
    add  r1, r1, r13
    li   r7, 0xFFFFFF
    and  r1, r1, r7
    seqi r7, r13, 0
    add  r2, r2, r7
    inc  r10
    inc  r11
    dec  r12
    bnez r12, q_loop
    ret
.endproc
"""


def make_input(variant: str, scale: float, rng: random.Random) -> List[int]:
    """Smooth gradient blocks plus noise; test uses a busier image."""
    base_blocks = 36 if variant == "train" else 24
    blocks = max(2, int(base_blocks * scale))
    noise = 12 if variant == "train" else 40
    values: List[int] = [blocks]
    for _ in range(blocks):
        base = rng.randrange(40, 216)
        gx = rng.randrange(-6, 7)
        gy = rng.randrange(-6, 7)
        for row in range(8):
            for col in range(8):
                pixel = base + gx * col + gy * row + rng.randrange(-noise, noise + 1)
                values.append(max(0, min(255, pixel)))
    return values


def reference(values: Sequence[int]) -> List[int]:
    stream = iter(values)
    blocks = next(stream)
    checksum = 0
    zeros = 0
    for _ in range(blocks):
        blk = [next(stream) - 128 for _ in range(64)]
        tmp = [0] * 64
        # Row DCT (blk -> tmp), mirroring dct1d with stride 1.
        for row in range(8):
            for u in range(8):
                acc = sum(blk[row * 8 + i] * DCT_COEF[u * 8 + i] for i in range(8))
                tmp[row * 8 + u] = acc >> _SCALE_SHIFT
        # Column DCT (tmp -> blk), stride 8.
        for col in range(8):
            for u in range(8):
                acc = sum(tmp[i * 8 + col] * DCT_COEF[u * 8 + i] for i in range(8))
                blk[u * 8 + col] = acc >> _SCALE_SHIFT
        for k in range(64):
            q = blk[k] >> QUANT_SHIFT[k]
            checksum = (checksum * 17 + q) & 0xFFFFFF
            if q == 0:
                zeros += 1
    return [checksum, zeros, blocks]


WORKLOAD = register(
    Workload(
        name="ijpeg",
        spec_analogue="132.ijpeg",
        description="8x8 integer DCT and quantization over image blocks",
        build_source=build_source,
        make_input=make_input,
        reference=reference,
    )
)
