"""``gcc`` — compiler front end (SPEC95 ``126.gcc`` analogue).

Tokenizes a stream of C-like source text: a 256-entry character-class
table drives the scanner, identifiers are hashed and interned into an
open-addressing symbol table, numbers are parsed to values, operators
counted.  The value streams are the compiler-ish ones the paper
highlights: character-class loads over a tiny set {0,1,2,3}, symbol-
table probe loads dominated by a hot vocabulary, and scanner state
that is highly semi-invariant.

Character classes: 0 = whitespace, 1 = letter/underscore, 2 = digit,
3 = operator (everything else).

Input format: ``N`` then ``N`` character codes.
Output: ``identifiers, new_symbols, number_sum, operators``.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.workloads.registry import Workload, register

_HASH_MASK = 0xFFFFF
_SUM_MASK = 0xFFFFFF
_SYMTAB_SIZE = 512

#: Character class per byte value, embedded into the program's data.
CHAR_CLASS: List[int] = []
for code in range(256):
    ch = chr(code)
    if ch in " \t\n\r":
        CHAR_CLASS.append(0)
    elif ch.isalpha() or ch == "_":
        CHAR_CLASS.append(1)
    elif ch.isdigit():
        CHAR_CLASS.append(2)
    else:
        CHAR_CLASS.append(3)


def _words(values: Sequence[int], per_line: int = 16) -> str:
    lines = []
    for start in range(0, len(values), per_line):
        chunk = ", ".join(str(v) for v in values[start : start + per_line])
        lines.append(f"    .word {chunk}")
    return "\n".join(lines)


def build_source() -> str:
    return f"""
.program gcc
.equ SYMMASK 511
.data
cclass:
{_words(CHAR_CLASS)}
symtab: .space 512
src:    .space 65536
.text
.proc main nargs=0
    in r16             ; N = source length
    la r10, src
    mov r11, r16
rd:
    beqz r11, rd_done
    in  r12
    st  r12, 0(r10)
    inc r10
    dec r11
    j rd
rd_done:
    li r17, 0          ; cursor
    li r20, 0          ; identifiers seen
    li r21, 0          ; new symbols interned
    li r22, 0          ; sum of numeric literals
    li r23, 0          ; operators
lex:
    bge r17, r16, done
    la  r10, src
    add r10, r10, r17
    ld  r11, 0(r10)    ; character
    la  r12, cclass
    add r12, r12, r11
    ld  r13, 0(r12)    ; class
    beqz r13, l_space
    seqi r7, r13, 1
    bnez r7, l_ident
    seqi r7, r13, 2
    bnez r7, l_number
    inc r23            ; operator
l_space:
    inc r17
    j lex
l_ident:
    mov r1, r17
    call lex_ident     ; r1 = end cursor, r2 = name hash
    mov r17, r1
    inc r20
    mov r1, r2
    call intern        ; r1 = 1 if newly interned
    add r21, r21, r1
    j lex
l_number:
    mov r1, r17
    call lex_number    ; r1 = end cursor, r2 = value
    mov r17, r1
    add r22, r22, r2
    li  r7, 0xFFFFFF
    and r22, r22, r7
    j lex
done:
    out r20
    out r21
    out r22
    out r23
    halt
.endproc

.proc lex_ident nargs=1
    ; r1 = cursor -> r1 = cursor past the identifier, r2 = hash
    li r2, 0
li_loop:
    bge r1, r16, li_done
    la  r10, src
    add r10, r10, r1
    ld  r11, 0(r10)
    la  r12, cclass
    add r12, r12, r11
    ld  r13, 0(r12)
    seqi r7, r13, 1
    bnez r7, li_take
    seqi r7, r13, 2
    bnez r7, li_take
    j li_done
li_take:
    muli r2, r2, 131
    add  r2, r2, r11
    li   r7, 0xFFFFF
    and  r2, r2, r7
    inc  r1
    j li_loop
li_done:
    ret
.endproc

.proc intern nargs=1
    ; r1 = name hash -> r1 = 1 if the symbol was new
    andi r10, r1, SYMMASK
    addi r11, r1, 1    ; stored form; 0 marks an empty slot
in_probe:
    la  r12, symtab
    add r12, r12, r10
    ld  r13, 0(r12)
    beqz r13, in_new
    beq  r13, r11, in_old
    addi r10, r10, 1
    andi r10, r10, SYMMASK
    j in_probe
in_new:
    st r11, 0(r12)
    li r1, 1
    ret
in_old:
    li r1, 0
    ret
.endproc

.proc lex_number nargs=1
    ; r1 = cursor -> r1 = cursor past the number, r2 = value
    li r2, 0
ln_loop:
    bge r1, r16, ln_done
    la  r10, src
    add r10, r10, r1
    ld  r11, 0(r10)
    la  r12, cclass
    add r12, r12, r11
    ld  r13, 0(r12)
    seqi r7, r13, 2
    beqz r7, ln_done
    muli r2, r2, 10
    subi r11, r11, 48
    add  r2, r2, r11
    inc  r1
    j ln_loop
ln_done:
    ret
.endproc
"""


_VOCAB = [
    "index", "count", "buffer", "length", "result", "node", "value", "total",
    "offset", "state", "token", "symbol", "parse", "emit", "tree", "left",
    "right", "next", "prev", "data", "size", "flag", "temp", "name",
    "scope", "type", "expr", "stmt", "decl", "init", "loop", "cond",
]
_OPERATORS = "+-*/=<>(){};,&|"


def make_input(variant: str, scale: float, rng: random.Random) -> List[int]:
    """Token soup resembling C source; test uses a different vocabulary mix."""
    base = 18_000 if variant == "train" else 13_000
    target = max(64, int(base * scale))
    vocab = _VOCAB if variant == "train" else _VOCAB[8:] + ["alpha", "beta", "gamma_x", "delta2"]
    text: List[int] = []
    while len(text) < target:
        roll = rng.random()
        if roll < 0.45:
            word = rng.choice(vocab)
            text.extend(ord(c) for c in word)
        elif roll < 0.70:
            text.extend(ord(c) for c in str(rng.randrange(100_000)))
        elif roll < 0.85:
            text.append(ord(rng.choice(_OPERATORS)))
        else:
            text.append(ord("\n" if rng.random() < 0.2 else " "))
        text.append(ord(" "))
    text = text[:target]
    return [len(text)] + text


def reference(values: Sequence[int]) -> List[int]:
    n = values[0]
    text = list(values[1 : 1 + n])
    identifiers = new_symbols = number_sum = operators = 0
    seen_hashes: set = set()
    i = 0
    while i < n:
        cls = CHAR_CLASS[text[i]]
        if cls == 1:
            name_hash = 0
            while i < n and CHAR_CLASS[text[i]] in (1, 2):
                name_hash = (name_hash * 131 + text[i]) & _HASH_MASK
                i += 1
            identifiers += 1
            if name_hash not in seen_hashes:
                seen_hashes.add(name_hash)
                new_symbols += 1
        elif cls == 2:
            value = 0
            while i < n and CHAR_CLASS[text[i]] == 2:
                value = value * 10 + (text[i] - 48)
                i += 1
            number_sum = (number_sum + value) & _SUM_MASK
        else:
            if cls == 3:
                operators += 1
            i += 1
    return [identifiers, new_symbols, number_sum, operators]


WORKLOAD = register(
    Workload(
        name="gcc",
        spec_analogue="126.gcc",
        description="table-driven lexer with symbol-table interning",
        build_source=build_source,
        make_input=make_input,
        reference=reference,
    )
)
