"""``compress`` — LZW compressor (SPEC95 ``129.compress`` analogue).

Reads a character stream (one word per byte) and performs LZW
compression with a 4096-entry open-addressing dictionary, emitting each
output code plus a final rolling checksum.  The interesting value
streams mirror the real ``compress``: dictionary-probe loads (heavily
biased toward "empty slot"), the slowly-advancing ``next_code``
counter, and prefix codes that follow the input's letter statistics.

Input format: ``N`` followed by ``N`` character codes in [0, 255].
Output: every emitted LZW code, then ``checksum`` where
``checksum = (checksum * 31 + code) & 0xFFFFFF`` over emitted codes.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.workloads.registry import Workload, register

_TABLE_SIZE = 4096
_HASH_MULT = 2654435761
_CHK_MASK = 0xFFFFFF

_SOURCE = """
.program compress
.equ HMASK 4095
.equ DICT_LIMIT 4096
.data
keys:  .space 4096
codes: .space 4096
chk:   .word 0
inbuf: .space 32768
.text
.proc main nargs=0
    la   r1, inbuf
    call read_input       ; r1 = N; chars now in inbuf (like compress's
    li  r19, 256          ; next_code    read buffer, so character
    mov r20, r1           ; N            fetches are loads)
    la  r22, inbuf        ; read cursor
    beqz r20, empty
    ld  r18, 0(r22)       ; w = first char
    inc r22
    dec r20
mloop:
    beqz r20, flush
    ld  r9, 0(r22)        ; c = next char (English-letter distribution)
    inc r22
    dec r20
    slli r21, r18, 8
    or   r21, r21, r9
    addi r21, r21, 1      ; key = ((w << 8) | c) + 1 (0 is "empty")
    mov  r1, r21
    call hash_probe       ; -> r1 = slot, r2 = found
    beqz r2, miss
    la   r12, codes       ; hit: w = codes[slot]
    add  r12, r12, r1
    ld   r18, 0(r12)
    j mloop
miss:
    mov r7, r1            ; save slot across the emit call
    mov r1, r18
    call emit             ; emit(w)
    li  r12, DICT_LIMIT
    bge r19, r12, nofree  ; dictionary full: stop growing
    la  r12, keys
    add r12, r12, r7
    st  r21, 0(r12)       ; keys[slot] = key
    la  r12, codes
    add r12, r12, r7
    st  r19, 0(r12)       ; codes[slot] = next_code++
    inc r19
nofree:
    mov r18, r9           ; w = c
    j mloop
flush:
    mov r1, r18
    call emit             ; emit final prefix
empty:
    la  r12, chk
    ld  r1, 0(r12)
    out r1
    halt
.endproc

.proc read_input nargs=1
    ; r1 = destination buffer; reads N then N chars; returns r1 = N
    in  r10               ; N
    mov r11, r1
    mov r12, r10
ri_loop:
    beqz r12, ri_done
    in  r13
    st  r13, 0(r11)
    inc r11
    dec r12
    j ri_loop
ri_done:
    mov r1, r10
    ret
.endproc

.proc hash_probe nargs=1
    ; r1 = key (biased by +1, never 0); returns r1 = slot, r2 = found
    li   r10, 2654435761
    mul  r10, r1, r10
    srli r10, r10, 16
    andi r10, r10, HMASK  ; h = hash(key)
    la   r11, keys
probe:
    add  r12, r11, r10
    ld   r13, 0(r12)
    beqz r13, notfound
    beq  r13, r1, found
    addi r10, r10, 1      ; linear probing
    andi r10, r10, HMASK
    j probe
found:
    mov r1, r10
    li  r2, 1
    ret
notfound:
    mov r1, r10
    li  r2, 0
    ret
.endproc

.proc emit nargs=1
    ; r1 = code: write it to the output stream, fold into the checksum
    out r1
    la   r14, chk
    ld   r15, 0(r14)
    muli r15, r15, 31
    add  r15, r15, r1
    li   r13, 0xFFFFFF
    and  r15, r15, r13
    st   r15, 0(r14)
    ret
.endproc
"""

# Letter frequencies roughly matching English text; compression ratio
# (and dictionary behaviour) then resembles compressing prose.
_ALPHABET = "etaoinshrdlucmfwypvbgkjqxz"
_WEIGHTS = [12, 9, 8, 8, 7, 7, 6, 6, 6, 4, 4, 3, 3, 3, 2, 2, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1]


def build_source() -> str:
    return _SOURCE


def make_input(variant: str, scale: float, rng: random.Random) -> List[int]:
    """English-like character stream; ``test`` is smaller and skews
    toward a slightly different letter mix (a different 'document')."""
    base = 12_000 if variant == "train" else 9_000
    n = max(16, int(base * scale))
    weights = list(_WEIGHTS)
    if variant == "test":
        weights = weights[::-1]  # different letter statistics
    letters = rng.choices(_ALPHABET, weights=weights, k=n)
    chars: List[int] = []
    for index, letter in enumerate(letters):
        # Insert word breaks so dictionary strings stay realistic.
        if index and rng.random() < 0.18:
            chars.append(32)
        chars.append(ord(letter))
    chars = chars[:n]
    return [len(chars)] + chars


def reference(values: Sequence[int]) -> List[int]:
    """Pure-Python mirror of the VPA program (bit-for-bit)."""
    stream = iter(values)
    n = next(stream)
    out: List[int] = []
    chk = 0

    def emit(code: int) -> None:
        nonlocal chk
        out.append(code)
        chk = (chk * 31 + code) & _CHK_MASK

    if n > 0:
        keys = [0] * _TABLE_SIZE
        codes = [0] * _TABLE_SIZE
        w = next(stream)
        next_code = 256
        for _ in range(n - 1):
            c = next(stream)
            key = ((w << 8) | c) + 1
            h = ((key * _HASH_MULT) >> 16) & (_TABLE_SIZE - 1)
            while keys[h] != 0 and keys[h] != key:
                h = (h + 1) & (_TABLE_SIZE - 1)
            if keys[h] == key:
                w = codes[h]
            else:
                emit(w)
                if next_code < _TABLE_SIZE:
                    keys[h] = key
                    codes[h] = next_code
                    next_code += 1
                w = c
        emit(w)
    out.append(chk)
    return out


WORKLOAD = register(
    Workload(
        name="compress",
        spec_analogue="129.compress",
        description="LZW compression with a 4096-entry probing dictionary",
        build_source=build_source,
        make_input=make_input,
        reference=reference,
    )
)
