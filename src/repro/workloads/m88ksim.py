"""``m88ksim`` — CPU simulator (SPEC95 ``124.m88ksim`` analogue).

The VPA program simulates a toy 8-register CPU ("M8"): it loads an M8
machine-code program and data image from its input, then runs a
fetch-decode-execute loop.  Decode is bit-field extraction — the
paper's canonical semi-invariant value streams (opcode fields, register
indices) — and the register file lives in memory, so register reads
are loads with high value locality.

M8 instruction word: ``op<<24 | rd<<20 | ra<<16 | rb<<12 | imm12``
(imm12 is signed).  Ops::

    0 HALT  1 LI rd,imm  2 ADD  3 SUB  4 ADDI rd,ra,imm
    5 LD rd,imm(ra)  6 ST rd,imm(ra)  7 BEQ ra,rb,imm  8 BNE
    9 OUT ra  10 MUL  11 SLT

Input format: ``P`` + P program words, then ``D`` + D data words.
Output: whatever the M8 program's OUT instructions produce.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.workloads.registry import Workload, register

M_HALT, M_LI, M_ADD, M_SUB, M_ADDI, M_LD, M_ST, M_BEQ, M_BNE, M_OUT, M_MUL, M_SLT = range(12)


def encode(op: int, rd: int = 0, ra: int = 0, rb: int = 0, imm: int = 0) -> int:
    """Pack one M8 instruction word."""
    return (op << 24) | (rd << 20) | (ra << 16) | (rb << 12) | (imm & 0xFFF)


_SOURCE = """
.program m88ksim
.data
m8prog: .space 512
m8mem:  .space 256
m8regs: .space 8
.text
.proc main nargs=0
    call load_program
    call load_data
    la   r1, m8prog
    call simulate
    halt
.endproc

.proc load_program nargs=0
    in  r10
    la  r11, m8prog
lp_loop:
    beqz r10, lp_done
    in  r12
    st  r12, 0(r11)
    inc r11
    dec r10
    j lp_loop
lp_done:
    ret
.endproc

.proc load_data nargs=0
    in  r10
    la  r11, m8mem
ldd_loop:
    beqz r10, ldd_done
    in  r12
    st  r12, 0(r11)
    inc r11
    dec r10
    j ldd_loop
ldd_done:
    ret
.endproc

.proc decode nargs=1
    ; r1 = instruction word -> r1 op, r2 rd, r3 ra, r4 rb, r5 imm (signed 12-bit)
    srli r2, r1, 20
    andi r2, r2, 15
    srli r3, r1, 16
    andi r3, r3, 15
    srli r4, r1, 12
    andi r4, r4, 15
    andi r5, r1, 0xFFF
    li   r7, 2048
    blt  r5, r7, dec_pos
    subi r5, r5, 4096
dec_pos:
    srli r1, r1, 24
    andi r1, r1, 0xFF
    ret
.endproc

.proc simulate nargs=1
    ; r1 = M8 program base (invariant parameter)
    push lr
    mov r19, r1
    li  r16, 0           ; M8 pc
s_loop:
    mov r10, r19
    add r10, r10, r16
    ld  r17, 0(r10)      ; fetch
    inc r16
    mov r1, r17
    call decode          ; r1 op, r2 rd, r3 ra, r4 rb, r5 imm
    la  r18, m8regs
    beqz r1, s_halt
    seqi r7, r1, 1
    bnez r7, m_li
    seqi r7, r1, 2
    bnez r7, m_add
    seqi r7, r1, 3
    bnez r7, m_sub
    seqi r7, r1, 4
    bnez r7, m_addi
    seqi r7, r1, 5
    bnez r7, m_ld
    seqi r7, r1, 6
    bnez r7, m_st
    seqi r7, r1, 7
    bnez r7, m_beq
    seqi r7, r1, 8
    bnez r7, m_bne
    seqi r7, r1, 9
    bnez r7, m_out
    seqi r7, r1, 10
    bnez r7, m_mul
    seqi r7, r1, 11
    bnez r7, m_slt
    j s_loop             ; unknown op: treated as nop
m_li:
    add r10, r18, r2
    st  r5, 0(r10)
    j s_loop
m_add:
    add r10, r18, r3
    ld  r11, 0(r10)
    add r10, r18, r4
    ld  r12, 0(r10)
    add r11, r11, r12
    add r10, r18, r2
    st  r11, 0(r10)
    j s_loop
m_sub:
    add r10, r18, r3
    ld  r11, 0(r10)
    add r10, r18, r4
    ld  r12, 0(r10)
    sub r11, r11, r12
    add r10, r18, r2
    st  r11, 0(r10)
    j s_loop
m_addi:
    add r10, r18, r3
    ld  r11, 0(r10)
    add r11, r11, r5
    add r10, r18, r2
    st  r11, 0(r10)
    j s_loop
m_ld:
    add r10, r18, r3
    ld  r11, 0(r10)      ; base register value
    add r11, r11, r5
    la  r12, m8mem
    add r12, r12, r11
    ld  r13, 0(r12)
    add r10, r18, r2
    st  r13, 0(r10)
    j s_loop
m_st:
    add r10, r18, r3
    ld  r11, 0(r10)
    add r11, r11, r5
    add r10, r18, r2
    ld  r13, 0(r10)      ; value to store
    la  r12, m8mem
    add r12, r12, r11
    st  r13, 0(r12)
    j s_loop
m_beq:
    add r10, r18, r3
    ld  r11, 0(r10)
    add r10, r18, r4
    ld  r12, 0(r10)
    bne r11, r12, s_loop
    mov r16, r5
    j s_loop
m_bne:
    add r10, r18, r3
    ld  r11, 0(r10)
    add r10, r18, r4
    ld  r12, 0(r10)
    beq r11, r12, s_loop
    mov r16, r5
    j s_loop
m_out:
    add r10, r18, r3
    ld  r11, 0(r10)
    out r11
    j s_loop
m_mul:
    add r10, r18, r3
    ld  r11, 0(r10)
    add r10, r18, r4
    ld  r12, 0(r10)
    mul r11, r11, r12
    add r10, r18, r2
    st  r11, 0(r10)
    j s_loop
m_slt:
    add r10, r18, r3
    ld  r11, 0(r10)
    add r10, r18, r4
    ld  r12, 0(r10)
    slt r11, r11, r12
    add r10, r18, r2
    st  r11, 0(r10)
    j s_loop
s_halt:
    pop lr
    ret
.endproc
"""


def build_source() -> str:
    return _SOURCE


class _M8Asm:
    """Label-patching assembler for M8 machine code."""

    def __init__(self) -> None:
        self.words: List[int] = []
        self._labels: dict = {}
        self._patches: List[tuple] = []

    def emit(self, op: int, rd: int = 0, ra: int = 0, rb: int = 0, imm: int = 0) -> None:
        self.words.append(encode(op, rd, ra, rb, imm))

    def branch(self, op: int, ra: int, rb: int, label: str) -> None:
        self._patches.append((len(self.words), op, ra, rb, label))
        self.words.append(0)

    def label(self, name: str) -> None:
        self._labels[name] = len(self.words)

    def finish(self) -> List[int]:
        for position, op, ra, rb, label in self._patches:
            self.words[position] = encode(op, 0, ra, rb, self._labels[label])
        return self.words


def _build_m8_program(n: int, passes: int) -> List[int]:
    """M8 code: array sum+max, then ``passes`` bubble passes, then a
    position-weighted checksum.  Register r0 is kept zero by convention."""
    a = _M8Asm()
    a.emit(M_LI, rd=0, imm=0)
    # Phase 1: sum and max of m8mem[0..n-1].
    a.emit(M_LI, rd=1, imm=0)  # i
    a.emit(M_LI, rd=2, imm=0)  # sum
    a.emit(M_LI, rd=3, imm=n)
    a.emit(M_LI, rd=6, imm=0)  # max
    a.label("p1")
    a.branch(M_BEQ, 1, 3, "p1_end")
    a.emit(M_LD, rd=4, ra=1, imm=0)
    a.emit(M_ADD, rd=2, ra=2, rb=4)
    a.emit(M_SLT, rd=5, ra=6, rb=4)
    a.branch(M_BEQ, 5, 0, "p1_skip")
    a.emit(M_ADD, rd=6, ra=4, rb=0)
    a.label("p1_skip")
    a.emit(M_ADDI, rd=1, ra=1, imm=1)
    a.branch(M_BEQ, 0, 0, "p1")
    a.label("p1_end")
    a.emit(M_OUT, ra=2)
    a.emit(M_OUT, ra=6)
    # Phase 2: bubble passes.
    a.emit(M_LI, rd=1, imm=0)  # pass index
    a.emit(M_LI, rd=3, imm=passes)
    a.label("outer")
    a.branch(M_BEQ, 1, 3, "sorted")
    a.emit(M_LI, rd=2, imm=0)  # j
    a.emit(M_LI, rd=5, imm=n - 1)
    a.label("inner")
    a.branch(M_BEQ, 2, 5, "inner_end")
    a.emit(M_LD, rd=4, ra=2, imm=0)
    a.emit(M_LD, rd=6, ra=2, imm=1)
    a.emit(M_SLT, rd=7, ra=6, rb=4)
    a.branch(M_BEQ, 7, 0, "noswap")
    a.emit(M_ST, rd=6, ra=2, imm=0)
    a.emit(M_ST, rd=4, ra=2, imm=1)
    a.label("noswap")
    a.emit(M_ADDI, rd=2, ra=2, imm=1)
    a.branch(M_BEQ, 0, 0, "inner")
    a.label("inner_end")
    a.emit(M_ADDI, rd=1, ra=1, imm=1)
    a.branch(M_BEQ, 0, 0, "outer")
    a.label("sorted")
    # Phase 3: position-weighted checksum.
    a.emit(M_LI, rd=1, imm=0)
    a.emit(M_LI, rd=2, imm=0)
    a.emit(M_LI, rd=3, imm=n)
    a.label("p3")
    a.branch(M_BEQ, 1, 3, "p3_end")
    a.emit(M_LD, rd=4, ra=1, imm=0)
    a.emit(M_MUL, rd=4, ra=4, rb=1)
    a.emit(M_ADD, rd=2, ra=2, rb=4)
    a.emit(M_ADDI, rd=1, ra=1, imm=1)
    a.branch(M_BEQ, 0, 0, "p3")
    a.label("p3_end")
    a.emit(M_OUT, ra=2)
    a.emit(M_HALT)
    return a.finish()


def make_input(variant: str, scale: float, rng: random.Random) -> List[int]:
    if variant == "train":
        n = max(8, int(80 * scale))
        passes = max(2, int(20 * scale))
    else:
        n = max(8, int(60 * scale))
        passes = max(2, int(14 * scale))
    program = _build_m8_program(n, passes)
    data = [rng.randrange(1000) for _ in range(n)]
    return [len(program)] + program + [len(data)] + data


def reference(values: Sequence[int]) -> List[int]:
    """Python M8 simulator matching the VPA one bit-for-bit."""
    cursor = 0
    plen = values[cursor]
    cursor += 1
    prog = list(values[cursor : cursor + plen])
    cursor += plen
    dlen = values[cursor]
    cursor += 1
    mem = list(values[cursor : cursor + dlen]) + [0] * (256 - dlen)
    regs = [0] * 8
    out: List[int] = []
    pc = 0
    while True:
        word = prog[pc]
        pc += 1
        op = (word >> 24) & 0xFF
        rd = (word >> 20) & 15
        ra = (word >> 16) & 15
        rb = (word >> 12) & 15
        imm = word & 0xFFF
        if imm >= 2048:
            imm -= 4096
        if op == M_HALT:
            break
        if op == M_LI:
            regs[rd] = imm
        elif op == M_ADD:
            regs[rd] = regs[ra] + regs[rb]
        elif op == M_SUB:
            regs[rd] = regs[ra] - regs[rb]
        elif op == M_ADDI:
            regs[rd] = regs[ra] + imm
        elif op == M_LD:
            regs[rd] = mem[regs[ra] + imm]
        elif op == M_ST:
            mem[regs[ra] + imm] = regs[rd]
        elif op == M_BEQ:
            if regs[ra] == regs[rb]:
                pc = imm
        elif op == M_BNE:
            if regs[ra] != regs[rb]:
                pc = imm
        elif op == M_OUT:
            out.append(regs[ra])
        elif op == M_MUL:
            regs[rd] = regs[ra] * regs[rb]
        elif op == M_SLT:
            regs[rd] = 1 if regs[ra] < regs[rb] else 0
    return out


WORKLOAD = register(
    Workload(
        name="m88ksim",
        spec_analogue="124.m88ksim",
        description="fetch-decode-execute simulator for a toy 8-register CPU",
        build_source=build_source,
        make_input=make_input,
        reference=reference,
    )
)
