"""SPEC95-analogue workload suite (see Table III.A.1 of the thesis).

Eight VPA assembly programs, each mirroring the character of one SPEC95
integer benchmark, with deterministic ``train``/``test`` inputs and a
self-checking pure-Python reference implementation:

==========  ==============  ==============================================
name        SPEC analogue   program
==========  ==============  ==============================================
compress    129.compress    LZW compression, probing dictionary
gcc         126.gcc         table-driven lexer + symbol interning
go          099.go          19x19 board: captures + move scoring
ijpeg       132.ijpeg       8x8 integer DCT + quantization
li          130.li          stack-VM bytecode interpreter
m88ksim     124.m88ksim     toy-CPU fetch/decode/execute simulator
perl        134.perl        Boyer-Moore-Horspool text scanning
vortex      147.vortex      hash-indexed in-memory object store
==========  ==============  ==============================================
"""

from repro.workloads.harness import (
    DEFAULT_TARGETS,
    ProfiledRun,
    profile_workload,
    run_workload,
    trace_workload,
)
from repro.workloads.registry import (
    VARIANTS,
    DataSet,
    Workload,
    all_workloads,
    get_workload,
    register,
    unregister,
    workload_names,
)

__all__ = [
    "DEFAULT_TARGETS",
    "DataSet",
    "ProfiledRun",
    "VARIANTS",
    "Workload",
    "all_workloads",
    "get_workload",
    "profile_workload",
    "register",
    "run_workload",
    "unregister",
    "trace_workload",
    "workload_names",
]
