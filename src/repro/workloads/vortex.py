"""``vortex`` — in-memory database (SPEC95 ``147.vortex`` analogue).

Runs a transaction stream against a hash-indexed object store: 256
buckets of linked node chains bump-allocated from an arena.  The value
streams mirror an OO database: pointer-chasing loads (node ``next``
fields), key loads with a Zipf-skewed hot set, and bucket heads that
stabilise once the hot keys are inserted.

Node layout in the arena: ``key, val1, val2, next`` (4 words); arena
offset 0 is reserved as the null pointer.

Input format: ``N`` then ``N`` transactions as (op, key, arg) triples;
op 1 = insert/upsert, 2 = lookup, 3 = update.
Output: ``found, missing, checksum, nodes_allocated``.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.workloads.registry import Workload, register

_BUCKETS = 256
_NODE_WORDS = 4
_CHK_MASK = 0xFFFFFF

_SOURCE = """
.program vortex
.equ BMASK 255
.data
buckets:  .space 256
arenaptr: .word 4          ; offset 0 reserved as null
arena:    .space 8192      ; 2048 nodes of 4 words
.text
.proc main nargs=0
    in r16                 ; N transactions
    li r20, 0              ; found
    li r21, 0              ; missing
    li r22, 0              ; checksum
txn:
    beqz r16, done
    dec r16
    in r9                  ; op
    in r17                 ; key (r17/r18 survive the helper calls)
    in r18                 ; arg
    seqi r7, r9, 1
    bnez r7, t_insert
    seqi r7, r9, 2
    bnez r7, t_lookup
    ; --- op 3: update val2 += arg ---
    mov r1, r17
    call find              ; r1 = node offset or 0
    beqz r1, t_miss
    la  r12, arena
    add r12, r12, r1
    ld  r13, 2(r12)
    add r13, r13, r18
    st  r13, 2(r12)
    inc r20
    j txn
t_insert:
    mov r1, r17
    call find
    beqz r1, t_alloc
    la  r12, arena         ; existing: val1 += arg
    add r12, r12, r1
    ld  r13, 1(r12)
    add r13, r13, r18
    st  r13, 1(r12)
    j txn
t_alloc:
    mov r1, r17
    mov r2, r18
    call insert
    j txn
t_lookup:
    mov r1, r17
    call find
    beqz r1, t_miss
    la  r12, arena
    add r12, r12, r1
    ld  r13, 1(r12)        ; val1
    muli r22, r22, 7
    add  r22, r22, r13
    li   r7, 0xFFFFFF
    and  r22, r22, r7
    inc  r20
    j txn
t_miss:
    inc r21
    j txn
done:
    out r20
    out r21
    out r22
    la  r12, arenaptr
    ld  r13, 0(r12)
    subi r13, r13, 4
    divi r13, r13, 4       ; nodes allocated
    out r13
    halt
.endproc

.proc hash nargs=1
    ; r1 = key -> r1 = bucket index
    muli r10, r1, 40503
    srli r10, r10, 4
    andi r1, r10, BMASK
    ret
.endproc

.proc find nargs=1
    ; r1 = key -> r1 = node offset in arena, or 0
    push lr
    mov  r15, r1           ; key
    call hash
    la  r10, buckets
    add r10, r10, r1
    ld  r11, 0(r10)        ; chain head
f_loop:
    beqz r11, f_out        ; null: not found (r11 is already 0)
    la  r12, arena
    add r12, r12, r11
    ld  r13, 0(r12)        ; node key
    beq r13, r15, f_out    ; hit: r11 is the offset
    ld  r11, 3(r12)        ; next pointer (pointer chasing)
    j f_loop
f_out:
    mov r1, r11
    pop lr
    ret
.endproc

.proc insert nargs=2
    ; r1 = key, r2 = value: push a new node on the key's bucket chain
    push lr
    mov  r15, r1
    mov  r14, r2
    call hash              ; r1 = bucket
    la  r10, buckets
    add r10, r10, r1
    ld  r11, 0(r10)        ; old head
    la  r12, arenaptr
    ld  r13, 0(r12)        ; new node offset
    addi r8, r13, 4
    st   r8, 0(r12)        ; bump the arena pointer
    la   r12, arena
    add  r12, r12, r13
    st   r15, 0(r12)       ; key
    st   r14, 1(r12)       ; val1
    xor  r8, r15, r14
    st   r8, 2(r12)        ; val2 = key ^ value
    st   r11, 3(r12)       ; next = old head
    st   r13, 0(r10)       ; bucket head = new node
    pop lr
    ret
.endproc
"""


def build_source() -> str:
    return _SOURCE


def _zipf_key(rng: random.Random, hot: List[int], cold_space: int) -> int:
    """80% of references hit a small hot set, the rest are uniform."""
    if rng.random() < 0.8:
        return hot[min(int(rng.expovariate(0.35)), len(hot) - 1)]
    return rng.randrange(cold_space)


def make_input(variant: str, scale: float, rng: random.Random) -> List[int]:
    if variant == "train":
        n = max(16, int(2_600 * scale))
        hot = [rng.randrange(10_000) for _ in range(24)]
    else:
        n = max(16, int(1_900 * scale))
        hot = [rng.randrange(10_000) for _ in range(40)]
    values: List[int] = [n]
    for _ in range(n):
        roll = rng.random()
        if roll < 0.25:
            op = 1
        elif roll < 0.80:
            op = 2
        else:
            op = 3
        key = _zipf_key(rng, hot, 600)
        arg = rng.randrange(1_000)
        values.extend((op, key, arg))
    return values


def reference(values: Sequence[int]) -> List[int]:
    stream = iter(values)
    n = next(stream)
    store: dict = {}  # key -> [val1, val2], insertion-ordered like the arena
    found = missing = checksum = 0
    for _ in range(n):
        op = next(stream)
        key = next(stream)
        arg = next(stream)
        node = store.get(key)
        if op == 1:
            if node is None:
                store[key] = [arg, key ^ arg]
            else:
                node[0] += arg
        elif op == 2:
            if node is None:
                missing += 1
            else:
                checksum = (checksum * 7 + node[0]) & _CHK_MASK
                found += 1
        else:
            if node is None:
                missing += 1
            else:
                node[1] += arg
                found += 1
    return [found, missing, checksum, len(store)]


WORKLOAD = register(
    Workload(
        name="vortex",
        spec_analogue="147.vortex",
        description="hash-indexed object store with pointer-chasing lookups",
        build_source=build_source,
        make_input=make_input,
        reference=reference,
    )
)
