"""High-level harness: run a workload under the value profiler.

This is the equivalent of the paper's "instrument the binary with ATOM
and run it on an input set" step, packaged as one call.  Every run
verifies the program's output against the workload's pure-Python
reference, so a profiling result can never silently come from a broken
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.profile import ProfileDatabase, TNVConfig
from repro.core.sampling import SamplingProfiler, SamplingPolicy
from repro.core.sites import Site
from repro.errors import WorkloadError
from repro.isa.instrument import ProfileTarget, ValueProfiler, ValueTraceCollector
from repro.isa.machine import Machine, RunResult
from repro.obs import TRACER, get_logger
from repro.workloads.registry import DataSet, Workload, get_workload

_LOG = get_logger(__name__)

DEFAULT_TARGETS = (ProfileTarget.INSTRUCTIONS, ProfileTarget.LOADS)


@dataclass
class ProfiledRun:
    """Everything one instrumented execution produced."""

    workload: Workload
    dataset: DataSet
    result: RunResult
    database: ProfileDatabase
    sampler: Optional[SamplingProfiler] = None

    @property
    def name(self) -> str:
        return self.dataset.name


def _verify(workload: Workload, dataset: DataSet, result: RunResult) -> None:
    if list(result.output) != list(dataset.expected_output):
        raise WorkloadError(
            f"{dataset.name}: simulated output diverged from the reference "
            f"implementation (got {list(result.output)[:8]}..., "
            f"expected {list(dataset.expected_output)[:8]}...)"
        )


def profile_workload(
    name: str,
    variant: str = "train",
    scale: float = 1.0,
    targets: Iterable[ProfileTarget] = DEFAULT_TARGETS,
    config: Optional[TNVConfig] = None,
    exact: bool = True,
    policy: Optional[SamplingPolicy] = None,
    verify: bool = True,
    buffered: Optional[bool] = None,
) -> ProfiledRun:
    """Run one workload under the value profiler.

    Args:
        name: registered workload name.
        variant: ``train`` or ``test`` input set.
        scale: input-size multiplier (1.0 = the experiment default).
        targets: which event families to profile.
        config: TNV table knobs (defaults to the paper's 10/5/2000).
        exact: also keep exact reference histograms per site.
        policy: if given, profile through a sampling policy instead of
            recording every execution; the returned ``sampler`` then
            carries overhead statistics.
        verify: check program output against the Python reference.
        buffered: buffer events per site and record them in batches
            (byte-identical profiles, much lower overhead).  Defaults
            to on for full profiling and for site-local sampling
            policies; policies with cross-site state (e.g. random
            sampling's shared RNG) stay on the per-event path.  The
            machine flushes the buffers when the program halts.
    """
    workload = get_workload(name)
    dataset = workload.dataset(variant, scale=scale)
    run_name = dataset.name

    sampler: Optional[SamplingProfiler] = None
    if policy is None:
        database = ProfileDatabase(config=config, exact=exact, name=run_name)
        recorder = database
    else:
        sampler = SamplingProfiler(policy, config=config, exact=exact, name=run_name)
        database = sampler.database
        recorder = sampler
    if buffered is None:
        buffered = policy is None or getattr(policy, "site_local", False)

    _LOG.debug("profiling %s (buffered=%s)", run_name, buffered)
    observer = ValueProfiler(workload.program(), recorder, targets=targets, buffered=buffered)
    machine = Machine(workload.program(), observer=observer)
    machine.set_input(dataset.values)
    with TRACER.span("machine-run", workload=run_name, instrumented=True):
        result = machine.run()
    if verify:
        _verify(workload, dataset, result)
    return ProfiledRun(workload, dataset, result, database, sampler)


def run_workload(name: str, variant: str = "train", scale: float = 1.0, verify: bool = True) -> RunResult:
    """Run a workload *without* instrumentation (for timing baselines)."""
    workload = get_workload(name)
    dataset = workload.dataset(variant, scale=scale)
    machine = Machine(workload.program())
    machine.set_input(dataset.values)
    result = machine.run()
    if verify:
        _verify(workload, dataset, result)
    return result


def trace_workload(
    name: str,
    variant: str = "train",
    scale: float = 1.0,
    targets: Iterable[ProfileTarget] = (ProfileTarget.INSTRUCTIONS,),
    max_per_site: Optional[int] = None,
    verify: bool = True,
) -> Dict[Site, List[int]]:
    """Collect ordered per-site value traces (for the predictor suite)."""
    workload = get_workload(name)
    dataset = workload.dataset(variant, scale=scale)
    collector = ValueTraceCollector(workload.program(), targets=targets, max_per_site=max_per_site)
    machine = Machine(workload.program(), observer=collector)
    machine.set_input(dataset.values)
    result = machine.run()
    if verify:
        _verify(workload, dataset, result)
    return collector.traces


def capture_workload_events(
    name: str,
    variant: str = "train",
    scale: float = 1.0,
    verify: bool = True,
) -> "EventTrace":
    """Simulate once, capturing the full profile-event stream.

    The returned :class:`~repro.core.tracestore.EventTrace` carries
    every event family plus the run result and dataset, so profiling,
    tracing and global-order experiments can all replay from it without
    touching the interpreter again.
    """
    import time

    from repro.core.tracestore import EventTrace, TraceCaptureObserver

    workload = get_workload(name)
    dataset = workload.dataset(variant, scale=scale)
    capture = TraceCaptureObserver(workload.program())
    machine = Machine(workload.program(), observer=capture)
    machine.set_input(dataset.values)
    started = time.perf_counter()
    with TRACER.span("capture-events", workload=dataset.name, scale=scale):
        result = machine.run()
    elapsed = time.perf_counter() - started
    if verify:
        _verify(workload, dataset, result)
    return EventTrace(
        program=name,
        variant=variant,
        scale=scale,
        sites=capture.sites,
        site_ids=capture.site_ids,
        values=capture.values,
        result=result,
        dataset=dataset,
        meta={
            "engine": machine.engine,
            "events": len(capture.site_ids),
            "instructions": result.instructions_executed,
            "capture_seconds": elapsed,
        },
    )
