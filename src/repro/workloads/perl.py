"""``perl`` — text pattern matcher (SPEC95 ``134.perl`` analogue).

Reads a pattern and a text, builds a Boyer-Moore-Horspool skip table
and scans the text counting (overlapping) matches.  Like perl's regex
engine, the hot value streams are character loads over a small
alphabet and skip-table loads whose values collapse to a handful of
distinct skips — ideal semi-invariant profiling targets.

Register conventions inside this program (deliberate "globals in
registers", common in hand-written assembly): ``r16`` = pattern
length, ``r17`` = text length, ``r22`` = comparison counter.

Input format: ``P`` + P pattern chars, then ``N`` + N text chars.
Output: ``matches, position_hash, comparisons``.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.workloads.registry import Workload, register

_SOURCE = """
.program perl
.data
pattern: .space 32
skip:    .space 256
text:    .space 65536
.text
.proc main nargs=0
    in r16              ; P = pattern length
    la r10, pattern
    mov r11, r16
rp:
    beqz r11, rp_done
    in  r12
    st  r12, 0(r10)
    inc r10
    dec r11
    j rp
rp_done:
    in r17              ; N = text length
    la r10, text
    mov r11, r17
rt:
    beqz r11, rt_done
    in  r12
    st  r12, 0(r10)
    inc r10
    dec r11
    j rt
rt_done:
    call build_skip
    call search         ; r1 matches, r2 hash, r3 comparisons
    out r1
    out r2
    out r3
    halt
.endproc

.proc build_skip nargs=0
    ; skip[c] = P for every c, then skip[pat[i]] = P-1-i for i < P-1
    la r10, skip
    li r11, 256
bs1:
    st  r16, 0(r10)
    inc r10
    dec r11
    bnez r11, bs1
    li   r11, 0
    subi r12, r16, 1
bs2:
    bge r11, r12, bs_done
    la  r10, pattern
    add r10, r10, r11
    ld  r13, 0(r10)
    la  r10, skip
    add r10, r10, r13
    sub r14, r12, r11
    st  r14, 0(r10)
    inc r11
    j bs2
bs_done:
    ret
.endproc

.proc search nargs=0
    push lr
    li  r20, 0          ; matches
    li  r21, 0          ; position hash
    li  r22, 0          ; comparisons
    li  r18, 0          ; pos
    sub r19, r17, r16   ; last valid pos = N - P
se_loop:
    bgt r18, r19, se_done
    mov r1, r18
    mov r2, r16           ; pattern length: an invariant parameter
    call match_at
    beqz r1, se_miss
    inc  r20
    muli r21, r21, 31
    add  r21, r21, r18
    li   r7, 0xFFFFFF
    and  r21, r21, r7
    inc  r18
    j se_loop
se_miss:
    add  r10, r18, r16  ; pos += skip[text[pos + P - 1]]
    subi r10, r10, 1
    la   r11, text
    add  r11, r11, r10
    ld   r12, 0(r11)
    la   r11, skip
    add  r11, r11, r12
    ld   r13, 0(r11)
    add  r18, r18, r13
    j se_loop
se_done:
    mov r1, r20
    mov r2, r21
    mov r3, r22
    pop lr
    ret
.endproc

.proc match_at nargs=2
    ; r1 = candidate position, r2 = pattern length; right-to-left
    ; compare, bumps r22 per test
    subi r10, r2, 1
ma_loop:
    inc r22
    la  r11, pattern
    add r11, r11, r10
    ld  r12, 0(r11)
    la  r11, text
    add r11, r11, r1
    add r11, r11, r10
    ld  r13, 0(r11)
    bne r12, r13, ma_no
    beqz r10, ma_yes
    dec r10
    j ma_loop
ma_no:
    li r1, 0
    ret
ma_yes:
    li r1, 1
    ret
.endproc
"""

_ALPHABET = "etaoinshrdlu "


def build_source() -> str:
    return _SOURCE


def make_input(variant: str, scale: float, rng: random.Random) -> List[int]:
    if variant == "train":
        pattern = "there"
        length = max(64, int(24_000 * scale))
        embed_rate = 0.004
    else:
        pattern = "nation"
        length = max(64, int(16_000 * scale))
        embed_rate = 0.006
    text: List[int] = []
    while len(text) < length:
        if rng.random() < embed_rate:
            text.extend(ord(c) for c in pattern)
        else:
            text.append(ord(rng.choice(_ALPHABET)))
    text = text[:length]
    pat = [ord(c) for c in pattern]
    return [len(pat)] + pat + [len(text)] + text


def reference(values: Sequence[int]) -> List[int]:
    cursor = 0
    plen = values[cursor]
    cursor += 1
    pattern = list(values[cursor : cursor + plen])
    cursor += plen
    n = values[cursor]
    cursor += 1
    text = list(values[cursor : cursor + n])

    skip = [plen] * 256
    for i in range(plen - 1):
        skip[pattern[i]] = plen - 1 - i

    matches = 0
    position_hash = 0
    comparisons = 0
    pos = 0
    while pos <= n - plen:
        matched = True
        for k in range(plen - 1, -1, -1):
            comparisons += 1
            if pattern[k] != text[pos + k]:
                matched = False
                break
        if matched:
            matches += 1
            position_hash = (position_hash * 31 + pos) & 0xFFFFFF
            pos += 1
        else:
            pos += skip[text[pos + plen - 1]]
    return [matches, position_hash, comparisons]


WORKLOAD = register(
    Workload(
        name="perl",
        spec_analogue="134.perl",
        description="Boyer-Moore-Horspool text scanning with a skip table",
        build_source=build_source,
        make_input=make_input,
        reference=reference,
    )
)
