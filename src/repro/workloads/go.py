"""``go`` — board-game move evaluator (SPEC95 ``099.go`` analogue).

Maintains a 19x19 board and replays a stream of moves.  Each placed
stone triggers the two computations that dominate real Go engines:

* **capture search** — a flood-fill over each adjacent enemy group,
  counting liberties with a generation-stamped visited array; groups
  with no liberties are removed;
* **move scoring** — classify the stone's four neighbours (empty /
  friend / foe) into a heuristic score.

Every 64 moves the whole board is rescanned to count stones.  Like
the real ``go``, the dominant value streams are loads of board cells
(values only {0, 1, 2}) and generation-stamp loads (semi-invariant
within a flood).  Suicide moves are not special-cased: a placed group
with zero liberties simply stays (both implementations agree).

Input format: ``N`` then ``N`` moves as (position, color) pairs.
Output: ``score, count_black, count_white, collisions, captures``.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.workloads.registry import Workload, register

_DIM = 19
_SIZE = _DIM * _DIM
_SCAN_INTERVAL = 64


def _flood_neighbor_block(label: str) -> str:
    """One neighbour probe of the flood fill (pos in r8, np in r11).

    Empty neighbour: count a liberty unless libmark[np] already carries
    this flood's generation.  Same-colour neighbour: push onto the
    stack and group unless already visited this generation.
    """
    return f"""
    la  r13, board
    add r13, r13, r11
    ld  r12, 0(r13)
    bnez r12, {label}_stone
    la  r13, libmark
    add r13, r13, r11
    ld  r14, 0(r13)
    beq r14, r4, {label}_done
    st  r4, 0(r13)
    inc r2
    j {label}_done
{label}_stone:
    bne r12, r3, {label}_done
    la  r13, visited
    add r13, r13, r11
    ld  r14, 0(r13)
    beq r14, r4, {label}_done
    st  r4, 0(r13)
    la  r13, stack
    add r13, r13, r5
    st  r11, 0(r13)
    inc r5
    la  r13, group
    add r13, r13, r6
    st  r11, 0(r13)
    inc r6
{label}_done:"""


def _capture_neighbor_block(label: str, np_expr: str) -> str:
    """One neighbour probe of the capture search (placed pos in r22)."""
    return f"""
{np_expr}
    la  r20, board
    add r20, r20, r21
    ld  r20, 0(r20)
    bne r20, r25, {label}_skip
    mov r1, r21
    call flood_check      ; r1 = group size, r2 = liberties
    bnez r2, {label}_skip
    li  r20, 0            ; captured: clear every group cell
{label}_rm:
    beq r20, r1, {label}_add
    la  r21, group
    add r21, r21, r20
    ld  r2, 0(r21)
    la  r21, board
    add r21, r21, r2
    st  r0, 0(r21)
    inc r20
    j {label}_rm
{label}_add:
    add r24, r24, r1
{label}_skip:"""


def build_source() -> str:
    flood_blocks = "\n".join(
        [
            "    beqz r10, fcl_done\n    subi r11, r8, 1" + _flood_neighbor_block("fcl"),
            "    li  r14, EDGE\n    bge r10, r14, fcr_done\n    addi r11, r8, 1"
            + _flood_neighbor_block("fcr"),
            "    beqz r9, fcu_done\n    subi r11, r8, DIM" + _flood_neighbor_block("fcu"),
            "    li  r14, EDGE\n    bge r9, r14, fcd_done\n    addi r11, r8, DIM"
            + _flood_neighbor_block("fcd"),
        ]
    )
    capture_blocks = "\n".join(
        [
            _capture_neighbor_block(
                "cnl", "    beqz r28, cnl_skip\n    subi r21, r22, 1"
            ),
            _capture_neighbor_block(
                "cnr", "    li  r20, EDGE\n    bge r28, r20, cnr_skip\n    addi r21, r22, 1"
            ),
            _capture_neighbor_block(
                "cnu", "    beqz r15, cnu_skip\n    subi r21, r22, DIM"
            ),
            _capture_neighbor_block(
                "cnd", "    li  r20, EDGE\n    bge r15, r20, cnd_skip\n    addi r21, r22, DIM"
            ),
        ]
    )
    return f"""
.program go
.equ SIZE 361
.equ DIM 19
.equ EDGE 18
.equ SCAN_INTERVAL 64
.data
board:   .space 361
visited: .space 361
libmark: .space 361
stack:   .space 361
group:   .space 361
genctr:  .word 0
capcell: .word 0
.text
.proc main nargs=0
    in r16            ; N moves
    li r17, 0         ; score
    li r18, 0         ; collisions
    li r19, 0         ; moves since last scan
    li r20, 0         ; last black count
    li r21, 0         ; last white count
mloop:
    beqz r16, done
    dec r16
    in r26            ; position
    in r27            ; color
    mov r1, r26
    mov r2, r27
    call place        ; r1 = placed?
    bnez r1, placed
    inc r18
    j cont
placed:
    mov r1, r26
    mov r2, r27
    call capture_neighbors   ; r1 = stones captured by this move
    la  r7, capcell
    ld  r8, 0(r7)
    add r8, r8, r1
    st  r8, 0(r7)
    mov r1, r26
    mov r2, r27
    call eval_neighbors
    add r17, r17, r1
cont:
    inc r19
    li  r7, SCAN_INTERVAL
    blt r19, r7, mloop
    li  r19, 0
    call scan_board   ; r1 = black, r2 = white
    mov r20, r1
    mov r21, r2
    j mloop
done:
    call scan_board
    mov r20, r1
    mov r21, r2
    out r17
    out r20
    out r21
    out r18
    la  r7, capcell
    ld  r8, 0(r7)
    out r8
    halt
.endproc

.proc place nargs=2
    ; r1 = position, r2 = color -> r1 = 1 if the square was empty
    la  r11, board
    add r11, r11, r1
    ld  r12, 0(r11)
    beqz r12, pl_free
    li  r1, 0
    ret
pl_free:
    st  r2, 0(r11)
    li  r1, 1
    ret
.endproc

.proc flood_check nargs=1
    ; r1 = a stone's cell.  Flood-fills its group with a fresh
    ; generation stamp; returns r1 = group size, r2 = liberties.
    ; The group's cells are left in the ``group`` array.
    la  r13, genctr
    ld  r4, 0(r13)
    inc r4
    st  r4, 0(r13)
    la  r13, board
    add r13, r13, r1
    ld  r3, 0(r13)    ; group colour
    la  r13, stack
    st  r1, 0(r13)
    li  r5, 1         ; stack depth
    la  r13, visited
    add r13, r13, r1
    st  r4, 0(r13)
    la  r13, group
    st  r1, 0(r13)
    li  r6, 1         ; group size
    li  r2, 0         ; liberties
fc_loop:
    beqz r5, fc_done
    dec r5
    la  r13, stack
    add r13, r13, r5
    ld  r8, 0(r13)    ; pos
    divi r9, r8, DIM
    remi r10, r8, DIM
{flood_blocks}
    j fc_loop
fc_done:
    mov r1, r6
    ret
.endproc

.proc capture_neighbors nargs=2
    ; r1 = placed position, r2 = placed colour.
    ; Removes every adjacent zero-liberty enemy group;
    ; returns r1 = stones captured.
    push lr
    mov  r22, r1
    mov  r23, r2
    li   r24, 0       ; captured stones
    li   r25, 3
    sub  r25, r25, r23  ; opponent colour (3 - colour)
    divi r15, r22, DIM  ; row
    remi r28, r22, DIM  ; column
{capture_blocks}
    mov r1, r24
    pop lr
    ret
.endproc

.proc eval_neighbors nargs=2
    ; r1 = position, r2 = color -> r1 = 3*friend + empty - 2*foe
    push lr
    mov  r5, r1
    mov  r6, r2
    divi r10, r5, DIM     ; row
    remi r11, r5, DIM     ; column
    li   r12, 0           ; friends
    li   r13, 0           ; empties
    li   r14, 0           ; foes
    beqz r11, en_noleft
    subi r1, r5, 1
    call classify
en_noleft:
    li   r7, EDGE
    bge  r11, r7, en_noright
    addi r1, r5, 1
    call classify
en_noright:
    beqz r10, en_noup
    subi r1, r5, DIM
    call classify
en_noup:
    li   r7, EDGE
    bge  r10, r7, en_nodown
    addi r1, r5, DIM
    call classify
en_nodown:
    muli r1, r12, 3
    add  r1, r1, r13
    muli r7, r14, 2
    sub  r1, r1, r7
    pop  lr
    ret
.endproc

.proc classify nargs=1
    ; r1 = neighbour position; reads r6 = color; bumps r12/r13/r14
    la  r3, board
    add r3, r3, r1
    ld  r4, 0(r3)
    beqz r4, cl_empty
    beq  r4, r6, cl_friend
    inc r14
    ret
cl_friend:
    inc r12
    ret
cl_empty:
    inc r13
    ret
.endproc

.proc scan_board nargs=0
    ; -> r1 = number of 1-stones, r2 = number of 2-stones
    la  r10, board
    li  r11, SIZE
    li  r1, 0
    li  r2, 0
sb_loop:
    beqz r11, sb_done
    ld  r12, 0(r10)
    inc r10
    dec r11
    seqi r13, r12, 1
    add  r1, r1, r13
    seqi r13, r12, 2
    add  r2, r2, r13
    j sb_loop
sb_done:
    ret
.endproc
"""


def make_input(variant: str, scale: float, rng: random.Random) -> List[int]:
    """Random alternating moves; test plays a shorter, corner-biased game."""
    base = 3_000 if variant == "train" else 2_200
    n = max(8, int(base * scale))
    values: List[int] = [n]
    for index in range(n):
        if variant == "test" and rng.random() < 0.5:
            # Corner-biased opening style: a different value mix.
            position = rng.randrange(_DIM // 2) * _DIM + rng.randrange(_DIM // 2)
        else:
            position = rng.randrange(_SIZE)
        color = 1 + (index & 1)
        values.extend((position, color))
    return values


def _neighbors(position: int) -> List[int]:
    """Neighbour cells in the same order the assembly probes them."""
    row, col = divmod(position, _DIM)
    result = []
    if col > 0:
        result.append(position - 1)
    if col < _DIM - 1:
        result.append(position + 1)
    if row > 0:
        result.append(position - _DIM)
    if row < _DIM - 1:
        result.append(position + _DIM)
    return result


class _Flood:
    """Generation-stamped flood fill mirroring the VPA implementation."""

    def __init__(self) -> None:
        self.visited = [0] * _SIZE
        self.libmark = [0] * _SIZE
        self.generation = 0

    def check(self, board: List[int], start: int):
        """Returns (group cells, liberty count) of ``start``'s group."""
        self.generation += 1
        gen = self.generation
        color = board[start]
        stack = [start]
        self.visited[start] = gen
        group = [start]
        liberties = 0
        while stack:
            position = stack.pop()
            for np in _neighbors(position):
                value = board[np]
                if value == 0:
                    if self.libmark[np] != gen:
                        self.libmark[np] = gen
                        liberties += 1
                elif value == color and self.visited[np] != gen:
                    self.visited[np] = gen
                    stack.append(np)
                    group.append(np)
        return group, liberties


def reference(values: Sequence[int]) -> List[int]:
    stream = iter(values)
    n = next(stream)
    board = [0] * _SIZE
    flood = _Flood()
    score = 0
    collisions = 0
    captures = 0
    since_scan = 0
    black = white = 0

    def scan() -> None:
        nonlocal black, white
        black = sum(1 for cell in board if cell == 1)
        white = sum(1 for cell in board if cell == 2)

    for _ in range(n):
        position = next(stream)
        color = next(stream)
        if board[position] != 0:
            collisions += 1
        else:
            board[position] = color
            # Capture search over adjacent enemy groups, in probe order.
            opponent = 3 - color
            for np in _neighbors(position):
                if board[np] != opponent:
                    continue
                group, liberties = flood.check(board, np)
                if liberties == 0:
                    for cell in group:
                        board[cell] = 0
                    captures += len(group)
            # Score the move on the post-capture board.
            friends = empties = foes = 0
            for np in _neighbors(position):
                cell = board[np]
                if cell == 0:
                    empties += 1
                elif cell == color:
                    friends += 1
                else:
                    foes += 1
            score += 3 * friends + empties - 2 * foes
        since_scan += 1
        if since_scan >= _SCAN_INTERVAL:
            since_scan = 0
            scan()
    scan()
    return [score, black, white, collisions, captures]


WORKLOAD = register(
    Workload(
        name="go",
        spec_analogue="099.go",
        description="19x19 board: capture search (flood fill) + move scoring",
        build_source=build_source,
        make_input=make_input,
        reference=reference,
    )
)
