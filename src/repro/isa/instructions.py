"""The VPA instruction set.

VPA ("Value Profiling Architecture") is the Alpha-flavoured 64-bit RISC
this reproduction uses in place of DEC Alpha binaries.  It is a load/
store register machine:

* 32 general registers ``r0``–``r31``; ``r0`` is hardwired to zero.
  Convention: ``r1``–``r6`` carry arguments and ``r1`` the return
  value, ``r29`` is the stack pointer, ``r31`` the link register.
* Word-addressed data memory; every cell holds one 64-bit value.
* Two's-complement 64-bit arithmetic with wraparound.

The set below is deliberately small but covers everything the SPEC95
analogues need and — crucially for the paper — gives every *register-
defining* instruction a well-defined destination value to profile.

Each opcode carries metadata: its operand format (how the assembler
parses it), whether it defines a register (is a value-profiling site),
and its *class* for the per-instruction-class breakdown (Table V.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional


class Format(enum.Enum):
    """Operand encodings understood by the assembler."""

    RRR = "rd, ra, rb"  # three registers
    RRI = "rd, ra, imm"  # two registers + immediate
    RI = "rd, imm"  # register + immediate (li)
    RL = "rd, label"  # register + label address (la)
    RR = "rd, ra"  # two registers (mov, jalr)
    R = "rd"  # one register (in, out, jr)
    MEM = "rd, off(ra)"  # loads/stores
    BRANCH = "ra, rb, label"  # compare-and-branch
    LABEL = "label"  # jumps/calls
    NONE = ""  # halt, nop, ret


class InsnClass(enum.Enum):
    """Instruction families used by the Table V.3 breakdown."""

    LOAD = "load"
    STORE = "store"
    ALU = "alu"
    MULDIV = "muldiv"
    SHIFT = "shift"
    COMPARE = "compare"
    MOVE = "move"
    BRANCH = "branch"
    JUMP = "jump"
    IO = "io"
    SYSTEM = "system"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one VPA opcode."""

    mnemonic: str
    fmt: Format
    insn_class: InsnClass
    defines_register: bool
    description: str

    @property
    def is_load(self) -> bool:
        return self.insn_class is InsnClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.insn_class is InsnClass.STORE

    @property
    def is_branch(self) -> bool:
        return self.insn_class in (InsnClass.BRANCH, InsnClass.JUMP)


def _op(mnemonic: str, fmt: Format, insn_class: InsnClass, defines: bool, description: str) -> OpcodeInfo:
    return OpcodeInfo(mnemonic, fmt, insn_class, defines, description)


#: Every opcode of the architecture, keyed by mnemonic.
OPCODES: Dict[str, OpcodeInfo] = {
    info.mnemonic: info
    for info in [
        # arithmetic -------------------------------------------------
        _op("add", Format.RRR, InsnClass.ALU, True, "rd = ra + rb"),
        _op("addi", Format.RRI, InsnClass.ALU, True, "rd = ra + imm"),
        _op("sub", Format.RRR, InsnClass.ALU, True, "rd = ra - rb"),
        _op("subi", Format.RRI, InsnClass.ALU, True, "rd = ra - imm"),
        _op("mul", Format.RRR, InsnClass.MULDIV, True, "rd = ra * rb"),
        _op("muli", Format.RRI, InsnClass.MULDIV, True, "rd = ra * imm"),
        _op("div", Format.RRR, InsnClass.MULDIV, True, "rd = ra / rb (trunc, fault on 0)"),
        _op("divi", Format.RRI, InsnClass.MULDIV, True, "rd = ra / imm"),
        _op("rem", Format.RRR, InsnClass.MULDIV, True, "rd = ra mod rb (trunc, fault on 0)"),
        _op("remi", Format.RRI, InsnClass.MULDIV, True, "rd = ra mod imm"),
        # bitwise ------------------------------------------------------
        _op("and", Format.RRR, InsnClass.ALU, True, "rd = ra & rb"),
        _op("andi", Format.RRI, InsnClass.ALU, True, "rd = ra & imm"),
        _op("or", Format.RRR, InsnClass.ALU, True, "rd = ra | rb"),
        _op("ori", Format.RRI, InsnClass.ALU, True, "rd = ra | imm"),
        _op("xor", Format.RRR, InsnClass.ALU, True, "rd = ra ^ rb"),
        _op("xori", Format.RRI, InsnClass.ALU, True, "rd = ra ^ imm"),
        # shifts -------------------------------------------------------
        _op("sll", Format.RRR, InsnClass.SHIFT, True, "rd = ra << (rb & 63)"),
        _op("slli", Format.RRI, InsnClass.SHIFT, True, "rd = ra << imm"),
        _op("srl", Format.RRR, InsnClass.SHIFT, True, "rd = (unsigned) ra >> (rb & 63)"),
        _op("srli", Format.RRI, InsnClass.SHIFT, True, "rd = (unsigned) ra >> imm"),
        _op("sra", Format.RRR, InsnClass.SHIFT, True, "rd = (signed) ra >> (rb & 63)"),
        _op("srai", Format.RRI, InsnClass.SHIFT, True, "rd = (signed) ra >> imm"),
        # comparisons --------------------------------------------------
        _op("slt", Format.RRR, InsnClass.COMPARE, True, "rd = 1 if ra < rb else 0"),
        _op("slti", Format.RRI, InsnClass.COMPARE, True, "rd = 1 if ra < imm else 0"),
        _op("seq", Format.RRR, InsnClass.COMPARE, True, "rd = 1 if ra == rb else 0"),
        _op("seqi", Format.RRI, InsnClass.COMPARE, True, "rd = 1 if ra == imm else 0"),
        _op("sne", Format.RRR, InsnClass.COMPARE, True, "rd = 1 if ra != rb else 0"),
        _op("snei", Format.RRI, InsnClass.COMPARE, True, "rd = 1 if ra != imm else 0"),
        # moves / constants -------------------------------------------
        _op("li", Format.RI, InsnClass.MOVE, True, "rd = imm (any 64-bit constant)"),
        _op("la", Format.RL, InsnClass.MOVE, True, "rd = address of data label"),
        _op("mov", Format.RR, InsnClass.MOVE, True, "rd = ra"),
        # memory -------------------------------------------------------
        _op("ld", Format.MEM, InsnClass.LOAD, True, "rd = memory[ra + off]"),
        _op("st", Format.MEM, InsnClass.STORE, False, "memory[ra + off] = rd"),
        # control flow -------------------------------------------------
        _op("beq", Format.BRANCH, InsnClass.BRANCH, False, "if ra == rb goto label"),
        _op("bne", Format.BRANCH, InsnClass.BRANCH, False, "if ra != rb goto label"),
        _op("blt", Format.BRANCH, InsnClass.BRANCH, False, "if ra < rb goto label"),
        _op("bge", Format.BRANCH, InsnClass.BRANCH, False, "if ra >= rb goto label"),
        _op("ble", Format.BRANCH, InsnClass.BRANCH, False, "if ra <= rb goto label"),
        _op("bgt", Format.BRANCH, InsnClass.BRANCH, False, "if ra > rb goto label"),
        _op("j", Format.LABEL, InsnClass.JUMP, False, "goto label"),
        _op("jal", Format.LABEL, InsnClass.JUMP, False, "r31 = pc + 1; goto label (call)"),
        _op("jalr", Format.RR, InsnClass.JUMP, False, "rd = pc + 1; goto ra (indirect call)"),
        _op("jr", Format.R, InsnClass.JUMP, False, "goto rd (return / computed jump)"),
        # i/o and system ----------------------------------------------
        _op("in", Format.R, InsnClass.IO, True, "rd = next input value (0 at EOF)"),
        _op("out", Format.R, InsnClass.IO, False, "append rd to the output stream"),
        _op("nop", Format.NONE, InsnClass.SYSTEM, False, "do nothing"),
        _op("halt", Format.NONE, InsnClass.SYSTEM, False, "stop the machine"),
    ]
}

#: Latency model used by the machine's cycle accounting (simple scalar
#: in-order costs: multiplies/divides are long-latency, memory costs 2).
CYCLE_COSTS = {
    InsnClass.LOAD: 2,
    InsnClass.STORE: 2,
    InsnClass.MULDIV: 4,
    InsnClass.ALU: 1,
    InsnClass.SHIFT: 1,
    InsnClass.COMPARE: 1,
    InsnClass.MOVE: 1,
    InsnClass.BRANCH: 1,
    InsnClass.JUMP: 1,
    InsnClass.IO: 1,
    InsnClass.SYSTEM: 1,
}


def cycle_cost(mnemonic: str) -> int:
    """Cycles charged for one execution of ``mnemonic``."""
    return CYCLE_COSTS[OPCODES[mnemonic].insn_class]


NUM_REGISTERS = 32
WORD_MASK = (1 << 64) - 1
SIGN_BIT = 1 << 63

REG_ZERO = 0
REG_RETURN = 1
REG_ARGS = (1, 2, 3, 4, 5, 6)
REG_SP = 29
REG_LINK = 31


def to_signed64(value: int) -> int:
    """Wrap a Python int to signed two's-complement 64-bit."""
    value &= WORD_MASK
    if value & SIGN_BIT:
        value -= 1 << 64
    return value


@dataclass
class Instruction:
    """One decoded VPA instruction.

    ``rd``/``ra``/``rb`` are register indices, ``imm`` an immediate or
    memory offset, ``target`` a resolved code address for control flow.
    ``pc`` and ``procedure`` locate the instruction for profiling and
    diagnostics; ``line`` is the assembly source line.
    """

    opcode: str
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0
    target: int = 0
    pc: int = 0
    procedure: str = ""
    line: int = 0

    @property
    def info(self) -> OpcodeInfo:
        return OPCODES[self.opcode]

    def render(self) -> str:
        """Disassemble back to canonical assembly text."""
        info = self.info
        fmt = info.fmt
        if fmt is Format.RRR:
            ops = f"r{self.rd}, r{self.ra}, r{self.rb}"
        elif fmt is Format.RRI:
            ops = f"r{self.rd}, r{self.ra}, {self.imm}"
        elif fmt is Format.RI:
            ops = f"r{self.rd}, {self.imm}"
        elif fmt is Format.RL:
            ops = f"r{self.rd}, {self.imm}"
        elif fmt is Format.RR:
            ops = f"r{self.rd}, r{self.ra}"
        elif fmt is Format.R:
            ops = f"r{self.rd}"
        elif fmt is Format.MEM:
            ops = f"r{self.rd}, {self.imm}(r{self.ra})"
        elif fmt is Format.BRANCH:
            ops = f"r{self.ra}, r{self.rb}, @{self.target}"
        elif fmt is Format.LABEL:
            ops = f"@{self.target}"
        else:
            ops = ""
        text = self.opcode if not ops else f"{self.opcode} {ops}"
        return text

    def __str__(self) -> str:
        return f"{self.pc:5d}: {self.render()}"


def opcode_info(mnemonic: str) -> Optional[OpcodeInfo]:
    """Lookup that returns ``None`` for unknown mnemonics."""
    return OPCODES.get(mnemonic)
