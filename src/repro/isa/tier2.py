"""Tier-2 engine: profile-guided superinstruction specialization.

The thesis' claim is that semi-invariant values justify specializing
the code that consumes them behind a cheap equality guard.  The repo
already applies that to the *profiled programs*
(:mod:`repro.specialize`); this module applies it to the interpreter
itself, the way CPython's PEP 659 adaptive interpreter quickens its
own bytecode.

The tier sits above :class:`~repro.isa.engine.ThreadedEngine` and
reuses its per-pc handler closures as the deopt target.  Execution
starts per-instruction; a counting stub at each fusible basic-block
leader tracks hotness and samples the block's live-in registers for
operand stability.  When a block crosses the hot threshold it is
*quickened*: the whole block becomes one generated superinstruction
closure with

* operand registers read once and forwarded through locals (fused
  load+ALU / compare+branch sequences — no per-instruction dispatch),
* stable live-in registers constant-folded under an entry guard that
  compares them against the sampled values,
* observer hooks collapsed: blocks with no active instrumentation
  targets compile to pure compute, and buffered
  :class:`~repro.isa.instrument.ValueProfiler` hooks are inlined to a
  list append + threshold check (the hook advertises its internals via
  ``__vp_inline__``),
* dynamic-counter and cycle bookkeeping batched to one add per block.

A failed guard *deopts*: the entry falls back to a chain of the
block's original per-pc handlers (bit-identical semantics, including
mid-block traps), the mismatching registers are recorded, and after
``fail_limit`` failures the block is either *requickened* with the
newly stable values or permanently *despecialized* to an unguarded —
but still fused — superinstruction.  Whether a guard set is worth
keeping is decided by the same
:class:`~repro.specialize.analysis.BenefitModel` the offline
specializer uses (``net_benefit_terms``).

Semantics are bit-identical to the reference loop on every exit path
(results, traps, profiles, counters), enforced by
``tests/isa/test_engine_differential.py``.  Select with
``Machine(engine="tier2")``, ``REPRO_ENGINE=tier2``, or opt in for
``auto`` via ``REPRO_TIER2=1``.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.sites import Site, SiteKind
from repro.errors import MachineError
from repro.isa.engine import _BIAS, _MASK, _BadPC, _Halt, _Trap, ThreadedEngine
from repro.isa.instructions import to_signed64
from repro.obs.flight import FLIGHT as _FLIGHT
from repro.obs.jitlog import JITLOG as _JITLOG
from repro.obs.metrics import METRICS as _METRICS
from repro.obs.timeseries import TIMESERIES as _TIMESERIES
from repro.specialize.analysis import BenefitModel

#: straight-line opcodes a superinstruction may absorb.
_BODY_OPS = frozenset({
    "ld", "st", "add", "addi", "sub", "subi", "mul", "muli",
    "div", "divi", "rem", "remi", "and", "andi", "or", "ori",
    "xor", "xori", "sll", "slli", "srl", "srli", "sra", "srai",
    "slt", "slti", "seq", "seqi", "sne", "snei",
    "li", "la", "mov", "in", "out", "nop",
})

#: conditional branches and their Python comparison operator.
_BRANCH_PY = {"beq": "==", "bne": "!=", "blt": "<", "bge": ">=", "ble": "<=", "bgt": ">"}

_ALU_IMM = {"addi": "add", "subi": "sub", "muli": "mul",
            "andi": "and", "ori": "or", "xori": "xor"}
_ALU_REG = frozenset({"add", "sub", "mul", "and", "or", "xor"})
_SHIFT_IMM = {"slli": "sll", "srli": "srl", "srai": "sra"}
_SHIFT_REG = frozenset({"sll", "srl", "sra"})
_CMP_IMM = {"slti": "slt", "seqi": "seq", "snei": "sne"}
_CMP_REG = frozenset({"slt", "seq", "sne"})
_CMP_PY = {"slt": "<", "seq": "==", "sne": "!="}

#: register operands each opcode reads (before any write it makes).
_READS_RA_RB = frozenset(
    {"add", "sub", "mul", "div", "rem", "and", "or", "xor",
     "sll", "srl", "sra", "slt", "seq", "sne"} | set(_BRANCH_PY)
)
_READS_RA = frozenset(
    {"addi", "subi", "muli", "divi", "remi", "andi", "ori", "xori",
     "slli", "srli", "srai", "slti", "seqi", "snei", "mov", "ld"}
)


#: compiled superinstruction bodies, keyed by exact source text.  The
#: source embeds everything semantic (opcodes, constants, thresholds,
#: trap messages); per-machine objects are bound as default args at
#: exec time, so the cache is safe across Machine instances and saves
#: the dominant ``compile()`` cost on repeated runs of a program.
_CODE_CACHE: Dict[str, object] = {}
_CODE_CACHE_CAP = 4096


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise MachineError(f"{name} must be an integer, got {raw!r}") from None


class Tier2Config:
    """Tunables for the quicken/deopt lifecycle.

    Environment overrides (read at engine construction):
    ``REPRO_TIER2_THRESHOLD`` (block entries before quickening),
    ``REPRO_TIER2_FAIL_LIMIT`` (guard failures before respecializing),
    ``REPRO_TIER2_REQUICKEN`` (rebind attempts before permanent
    despecialization).
    """

    __slots__ = ("hot_threshold", "fail_limit", "requicken_budget",
                 "max_guards", "min_fused", "max_quickened", "max_trace",
                 "extrapolation", "model")

    def __init__(
        self,
        hot_threshold: Optional[int] = None,
        fail_limit: Optional[int] = None,
        requicken_budget: Optional[int] = None,
        max_guards: int = 4,
        min_fused: int = 2,
        max_quickened: int = 4096,
        max_trace: int = 32,
        extrapolation: int = 64,
        model: Optional[BenefitModel] = None,
    ) -> None:
        self.hot_threshold = (
            _env_int("REPRO_TIER2_THRESHOLD", 8) if hot_threshold is None else hot_threshold
        )
        self.fail_limit = (
            _env_int("REPRO_TIER2_FAIL_LIMIT", 4) if fail_limit is None else fail_limit
        )
        self.requicken_budget = (
            _env_int("REPRO_TIER2_REQUICKEN", 2) if requicken_budget is None else requicken_budget
        )
        self.max_guards = max_guards
        self.min_fused = min_fused
        self.max_quickened = max_quickened
        #: fused-instruction cap per trace; bounds codegen cost and
        #: tail duplication when traces cross block boundaries.
        self.max_trace = max_trace
        #: one hot entry predicts this many future entries — the
        #: ``executions`` estimate fed to the benefit model.
        self.extrapolation = extrapolation
        #: the thesis break-even model, shared with the offline
        #: specializer; guard_cost is per guarded register per entry.
        self.model = model if model is not None else BenefitModel(
            saving_per_call=1.0, guard_cost=0.05, specialization_cost=100.0
        )


class _Block:
    """Lifecycle state for one fusible trace.

    A trace starts at a basic-block leader and follows fallthrough
    through conditional branches (which become early exits) and the
    targets of unconditional jumps, so one superinstruction can span
    several basic blocks; ``pcs`` lists the absorbed pcs in execution
    order along the full-fallthrough path.
    """

    __slots__ = ("start", "pcs", "fused", "watch", "count", "samples",
                 "unstable", "threshold", "mode", "bindings", "fails",
                 "requickens", "refit", "volatile", "guard_cell", "preheated",
                 "capped")

    def __init__(self, start, pcs, fused, watch, threshold, capped=False):
        self.start = start
        self.pcs = pcs              # pcs the trace absorbs, in order
        self.fused = fused          # instructions the superblock absorbs
        self.watch = watch          # live-in registers sampled for stability
        self.count = 0
        self.samples: Dict[int, int] = {}
        self.unstable: set = set()
        self.threshold = threshold
        self.mode = "counting"      # -> "guarded" | "fused" | "rejected"
        self.bindings: Dict[int, int] = {}
        self.fails = 0
        self.requickens = 0
        self.refit: Dict[int, int] = {}
        self.volatile: set = set()
        self.guard_cell = [0]       # guard passes, bumped by the prologue
        self.preheated = False
        self.capped = capped        # trace growth stopped at max_trace


def _reads_of(inst) -> Tuple[int, ...]:
    op = inst.opcode
    if op in _READS_RA_RB:
        return (inst.ra, inst.rb)
    if op in _READS_RA:
        return (inst.ra,)
    if op == "st":
        return (inst.ra, inst.rd)
    if op == "out":
        return (inst.rd,)
    return ()


def _fold_alu(op2: str, a: int, b: int) -> int:
    if op2 == "add":
        return to_signed64(a + b)
    if op2 == "sub":
        return to_signed64(a - b)
    if op2 == "mul":
        return to_signed64(a * b)
    if op2 == "and":
        return to_signed64(a & b)
    if op2 == "or":
        return to_signed64(a | b)
    return to_signed64(a ^ b)


def _fold_shift(op2: str, a: int, s: int) -> int:
    if op2 == "sll":
        return to_signed64(a << s)
    if op2 == "srl":
        return to_signed64((a & _MASK) >> s)
    return to_signed64(a >> s)


def _branch_taken(op: str, a: int, b: int) -> bool:
    if op == "beq":
        return a == b
    if op == "bne":
        return a != b
    if op == "blt":
        return a < b
    if op == "bge":
        return a >= b
    if op == "ble":
        return a <= b
    return a > b


def _fold_cmp(op2: str, a: int, b: int) -> int:
    if op2 == "slt":
        return 1 if a < b else 0
    if op2 == "seq":
        return 1 if a == b else 0
    return 1 if a != b else 0


class Tier2Engine(ThreadedEngine):
    """Quickening tier above the threaded engine.

    Reuses the parent's decode (per-pc handler closures) verbatim;
    adds a parallel dispatch table where hot basic blocks are replaced
    by generated superinstruction closures.  With ``count_pcs`` block
    profiling active, quickening is disabled and runs delegate to the
    threaded loop unchanged.
    """

    def __init__(self, machine, config: Optional[Tier2Config] = None) -> None:
        super().__init__(machine)
        self._config = config if config is not None else Tier2Config()
        self._funcs: Optional[List[Callable[[], int]]] = None
        self._lens: Optional[List[int]] = None
        self._blocks: Dict[int, _Block] = {}
        self._counters = {"quickened": 0, "requickened": 0,
                          "despecialized": 0, "deopts": 0}
        #: [uncounted-instructions, trap-pc] correction cell shared with
        #: generated code; see the run() exception handlers.
        self._und: List[int] = [1, -1]
        #: countdown budget cell, shared with generated code: a trace
        #: is charged its full length at dispatch, early exits (taken
        #: branches, deopts that leave the trace) pay the unexecuted
        #: tail back, and loop-closed superinstructions charge each
        #: internal iteration themselves.  ``executed`` is always
        #: ``max_instructions − rem[0]`` (plus the trap correction).
        self._rem: List[int] = [0]
        #: budget of the current run; with the countdown cell it gives
        #: the jitlog event clock (instructions retired) at any point.
        self._max_instructions = 0
        self._metrics_prev = {"quickened": 0, "requickened": 0,
                              "despecialized": 0, "deopts": 0, "guards": 0}

    # ------------------------------------------------------------------
    # decode: base handlers + tier tables + counting stubs
    # ------------------------------------------------------------------

    def _decode(self) -> None:
        super()._decode()
        handlers = self._handlers
        self._funcs = list(handlers)
        self._lens = [1] * len(handlers)
        self._blocks = {}
        self._counters = {"quickened": 0, "requickened": 0,
                          "despecialized": 0, "deopts": 0}
        # The metric-delta baseline must reset with the counters (and
        # with the blocks whose guard cells feed the guards delta):
        # a re-decode between runs — e.g. an observer change — would
        # otherwise leave stale prior totals here, and the next
        # _emit_tier2_metrics would under-report every machine.tier2.*
        # delta (value − stale_prev goes zero or negative).
        self._metrics_prev = {"quickened": 0, "requickened": 0,
                              "despecialized": 0, "deopts": 0, "guards": 0}
        if self._machine.pc_counts is not None:
            # Block profiling needs the per-pc count loop; stay tier-1.
            return
        threshold = self._config.hot_threshold
        for bb in self._machine.program.basic_blocks():
            blk = self._analyze_block(bb, threshold)
            if blk is not None:
                self._blocks[blk.start] = blk
                self._install_counter(blk)

    def _analyze_block(self, bb, threshold: int) -> Optional[_Block]:
        """Grow a trace from a block leader.

        The trace absorbs straight-line opcodes, follows the
        fallthrough edge of conditional branches (compiled as guarded
        early exits), and follows unconditional ``j`` targets, so hot
        paths spanning several basic blocks fuse into one
        superinstruction.  Calls, returns, and indirect jumps
        (``jal``/``jalr``/``jr``) end a trace but are absorbed as its
        terminator — the trace tail-calls the original handler, whose
        returned pc goes straight back to the dispatch loop — so
        argument setup fuses with the transfer.  Traces also stop on
        revisiting a pc (loop backedges re-enter through the dispatch
        table or close into an in-trace loop), at ``halt``, and at the
        ``max_trace`` cap.
        """
        insts = self._machine.program.instructions
        code_size = len(insts)
        cap = self._config.max_trace
        pcs: List[int] = []
        fused = []
        seen: set = set()
        pc = bb.start
        while len(fused) < cap and 0 <= pc < code_size and pc not in seen:
            inst = insts[pc]
            op = inst.opcode
            if op in _BODY_OPS:
                pcs.append(pc)
                seen.add(pc)
                fused.append(inst)
                pc += 1
            elif op in _BRANCH_PY and 0 <= inst.target < code_size:
                pcs.append(pc)
                seen.add(pc)
                fused.append(inst)
                if inst.target < pc and inst.target != bb.start:
                    # Backward branch that does not close this trace's own
                    # loop: almost certainly a hot backedge, i.e. usually
                    # taken.  Following the fallthrough would build a tail
                    # that early-exits nearly every dispatch (pure refund
                    # churn), so end the trace here with the branch as the
                    # terminal instruction instead.
                    break
                pc += 1
            elif op == "j" and 0 <= inst.target < code_size:
                pcs.append(pc)
                seen.add(pc)
                fused.append(inst)
                pc = inst.target
            elif op in ("jal", "jalr", "jr"):
                pcs.append(pc)
                fused.append(inst)
                break
            else:
                break
        capped = len(fused) >= cap
        if len(fused) < self._config.min_fused:
            if fused and _JITLOG.enabled:
                _JITLOG.emit("reject", self._clock(),
                             self._machine.program.name, bb.start,
                             reason="min_fused", fused=len(fused),
                             limit=self._config.min_fused)
            return None
        if capped and _JITLOG.enabled:
            # The truncated trace still compiles; growth past the cap
            # was what got rejected.
            _JITLOG.emit("reject", self._clock(),
                         self._machine.program.name, bb.start,
                         reason="max_trace", fused=len(fused),
                         limit=cap)
        watch: List[int] = []
        written: set = set()
        for inst in fused:
            for reg in _reads_of(inst):
                if reg != 0 and reg not in written and reg not in watch:
                    watch.append(reg)
            if inst.info.defines_register and inst.rd != 0:
                written.add(inst.rd)
        # The counting stub samples every watched register on every entry
        # during warm-up; cap the list so long traces with many live-ins
        # don't make warm-up itself expensive.  Bindings are limited to
        # ``max_guards`` anyway, so extra watch slots rarely pay off.
        max_watch = 2 + self._config.max_guards
        return _Block(bb.start, tuple(pcs), fused, tuple(watch[:max_watch]),
                      threshold, capped=capped)

    def _install_counter(self, blk: _Block) -> None:
        base = self._handlers[blk.start]
        decide = self._decide
        if blk.watch:
            def counting(blk=blk, R=self._machine.registers, watch=blk.watch,
                         samples=blk.samples, unstable=blk.unstable,
                         threshold=blk.threshold, decide=decide, base=base):
                n = blk.count + 1
                blk.count = n
                for r in watch:
                    v = R[r]
                    p = samples.get(r)
                    if p is None:
                        samples[r] = v
                    elif p != v:
                        unstable.add(r)
                if n >= threshold:
                    decide(blk)
                return base()
        else:
            def counting(blk=blk, threshold=blk.threshold, decide=decide, base=base):
                n = blk.count + 1
                blk.count = n
                if n >= threshold:
                    decide(blk)
                return base()
        self._funcs[blk.start] = counting

    # ------------------------------------------------------------------
    # quicken / deopt / respecialize
    # ------------------------------------------------------------------

    def _clock(self) -> int:
        """Instructions retired — the deterministic jitlog event clock."""
        return self._max_instructions - self._rem[0]

    def _jl_emit(self, type: str, blk: _Block, **fields) -> None:
        _JITLOG.emit(type, self._clock(), self._machine.program.name,
                     blk.start, **fields)

    def _flight_note(self, blk: _Block, what: str, value: int) -> None:
        proc = self._machine._procedure_by_pc[blk.start]
        site = Site(kind=SiteKind.INSTRUCTION,
                    program=self._machine.program.name,
                    procedure=proc.name if proc is not None else "",
                    label=str(blk.start), opcode=f"tier2.{what}")
        _FLIGHT.record(site, value)

    def _decide(self, blk: _Block) -> None:
        cfg = self._config
        if _JITLOG.enabled:
            self._jl_emit("hot", blk, count=blk.count,
                          threshold=blk.threshold, preheated=blk.preheated,
                          unstable=sorted(blk.unstable))
        if self._counters["quickened"] >= cfg.max_quickened:
            if _JITLOG.enabled:
                self._jl_emit("reject", blk, reason="max_quickened",
                              fused=len(blk.fused), limit=cfg.max_quickened)
            blk.mode = "rejected"
            self._funcs[blk.start] = self._handlers[blk.start]
            return
        bindings: Dict[int, int] = {}
        for r in blk.watch[: cfg.max_guards]:
            if r in blk.unstable:
                continue
            v = blk.samples.get(r)
            if v is not None:
                bindings[r] = v
        folds = substs = 0
        net = None
        if bindings:
            fn, folds, substs = self._compile(blk, bindings)
            # The thesis break-even test, with observed stability as
            # invariance=1.0 and hotness extrapolated forward.
            net = cfg.model.net_benefit_terms(
                blk.count * cfg.extrapolation,
                1.0,
                saving_per_call=folds + 0.25 * substs,
                guards=len(bindings),
            )
            if net <= 0:
                if _JITLOG.enabled:
                    self._jl_emit("reject", blk, reason="benefit",
                                  fused=len(blk.fused), folds=folds,
                                  substs=substs, guards=len(bindings),
                                  net=round(net, 6))
                bindings = {}
                net = None
        if not bindings:
            fn, folds, substs = self._compile(blk, {})
        blk.bindings = bindings
        blk.mode = "guarded" if bindings else "fused"
        blk.samples = {}
        blk.unstable = set()
        self._counters["quickened"] += 1
        self._funcs[blk.start] = fn
        self._lens[blk.start] = len(blk.fused)
        if _JITLOG.enabled:
            self._jl_emit("quicken", blk, mode=blk.mode,
                          pc_range=[blk.pcs[0], blk.pcs[-1]],
                          fused=len(blk.fused), capped=blk.capped,
                          bindings=sorted(bindings.items()),
                          folds=folds, substs=substs,
                          guards=len(bindings),
                          net=round(net, 6) if net is not None else None)

    def _make_fallback(self, blk: _Block):
        """Deopt path: the trace's original per-pc handlers, followed.

        Re-executes the trace through the base handlers, following the
        pc each one returns: a taken branch (or any divergence from the
        trace's fallthrough path) leaves the chain and refunds the
        unexecuted tail.  A mid-chain trap reports the uncounted tail
        and the trapping pc through the correction cell, so every exit
        matches the threaded loop bit for bit.
        """
        pcs = blk.pcs

        def fb(pcs=pcs, base=self._handlers, und=self._und, rem=self._rem,
               note=self._note_deopt, blk=blk, K=len(pcs)):
            note(blk)
            i = 0
            p = pcs[0]
            try:
                while True:
                    p = base[p]()
                    i += 1
                    if i >= K or p != pcs[i]:
                        break
            except BaseException:
                und[0] = K - i
                und[1] = pcs[i]
                raise
            if i < K:
                rem[0] += K - i
            return p

        return fb

    def _note_deopt(self, blk: _Block) -> None:
        journal = _JITLOG.enabled
        self._counters["deopts"] += 1
        blk.fails += 1
        R = self._machine.registers
        for r, bound in blk.bindings.items():
            v = R[r]
            if v != bound:
                if journal:
                    self._jl_emit("guard_fail", blk, reg=r, expected=bound,
                                  observed=v, entries=blk.guard_cell[0],
                                  fails=blk.fails)
                prev = blk.refit.get(r)
                if prev is None:
                    blk.refit[r] = v
                elif prev != v:
                    blk.volatile.add(r)
        if journal:
            self._jl_emit("deopt", blk, fails=blk.fails,
                          limit=self._config.fail_limit)
        if _FLIGHT.enabled:
            self._flight_note(blk, "deopt", blk.fails)
        if blk.fails >= self._config.fail_limit:
            self._respecialize(blk)

    def _respecialize(self, blk: _Block) -> None:
        cfg = self._config
        if blk.requickens < cfg.requicken_budget:
            blk.requickens += 1
            bindings = {}
            for r, bound in blk.bindings.items():
                if r in blk.volatile:
                    continue
                bindings[r] = blk.refit.get(r, bound)
            blk.fails = 0
            blk.refit = {}
            blk.volatile = set()
            if bindings:
                fn, _, _ = self._compile(blk, bindings)
                blk.bindings = bindings
                self._counters["requickened"] += 1
                self._funcs[blk.start] = fn
                if _JITLOG.enabled:
                    self._jl_emit("requicken", blk,
                                  bindings=sorted(bindings.items()),
                                  requickens=blk.requickens)
                return
        fn, _, _ = self._compile(blk, {})
        blk.bindings = {}
        blk.mode = "fused"
        self._counters["despecialized"] += 1
        self._funcs[blk.start] = fn
        if _JITLOG.enabled:
            self._jl_emit("despecialize", blk, requickens=blk.requickens,
                          budget=cfg.requicken_budget)
        if _FLIGHT.enabled:
            self._flight_note(blk, "despecialize", blk.requickens)

    def _compile(self, blk: _Block, bindings: Dict[int, int]):
        return _Codegen(self, blk, bindings).build()

    # ------------------------------------------------------------------
    # profile preheat
    # ------------------------------------------------------------------

    def preheat(self, database) -> int:
        """Lower quicken thresholds from an existing profile.

        Blocks containing INSTRUCTION/LOAD sites whose TNV top value is
        highly invariant get an immediate (threshold-1) quicken
        decision — the offline profile standing in for online warmup.
        Returns the number of blocks preheated.
        """
        if self._handlers is None or self._machine.observer is not self._bound_observer:
            self._decode()
        name = self._machine.program.name
        hot_pcs = set()
        for profile in database.profiles():
            site = profile.site
            if site.program != name or not site.label or not site.label.isdigit():
                continue
            if profile.tnv.estimated_invariance(1) >= 0.5:
                hot_pcs.add(int(site.label))
        touched = 0
        for blk in self._blocks.values():
            if blk.mode != "counting" or blk.preheated:
                continue
            if any(pc in hot_pcs for pc in blk.pcs):
                blk.preheated = True
                blk.threshold = 1
                self._install_counter(blk)
                touched += 1
                if _JITLOG.enabled:
                    self._jl_emit("preheat", blk, threshold=1)
        return touched

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        blocks = self._blocks
        c = self._counters
        return {
            "engine": "tier2",
            "candidate_blocks": len(blocks),
            "quickened": c["quickened"],
            "requickened": c["requickened"],
            "despecialized": c["despecialized"],
            "deopts": c["deopts"],
            "guard_hits": sum(b.guard_cell[0] for b in blocks.values()),
            "guarded_blocks": sum(1 for b in blocks.values() if b.mode == "guarded"),
            "fused_instructions": sum(
                len(b.fused) for b in blocks.values() if b.mode in ("guarded", "fused")
            ),
        }

    def block_summaries(self) -> List[Dict[str, object]]:
        """Deterministic per-block lifecycle snapshot (for reporting).

        One dict per candidate block, sorted by leader pc.  ``entries``
        is warm-up entries through the counting stub (it stops counting
        once the block quickens); ``guard_entries`` is guard passes of
        the compiled superinstruction, including in-trace loop
        iterations.
        """
        out = []
        for start in sorted(self._blocks):
            b = self._blocks[start]
            out.append({
                "start": b.start,
                "end": b.pcs[-1] if b.pcs else b.start,
                "pcs": list(b.pcs),
                "fused": len(b.fused),
                "mode": b.mode,
                "entries": b.count,
                "guard_entries": b.guard_cell[0],
                "bindings": sorted(b.bindings.items()),
                "fails": b.fails,
                "requickens": b.requickens,
                "preheated": b.preheated,
                "capped": b.capped,
            })
        return out

    def _emit_tier2_metrics(self) -> None:
        c = self._counters
        prev = self._metrics_prev
        guards = sum(b.guard_cell[0] for b in self._blocks.values())
        for key, value in (("quickened", c["quickened"]),
                           ("requickened", c["requickened"]),
                           ("despecialized", c["despecialized"]),
                           ("deopts", c["deopts"]),
                           ("guards", guards)):
            delta = value - prev[key]
            if delta:
                _METRICS.inc(f"machine.tier2.{key}", delta)
            prev[key] = value

    # ------------------------------------------------------------------
    # driver loop
    # ------------------------------------------------------------------

    def run(self, max_instructions: int):
        machine = self._machine
        if machine.pc_counts is not None:
            return super().run(max_instructions)
        observer = machine.observer
        if self._handlers is None or observer is not self._bound_observer:
            self._decode()
        dyn = self._dyn
        dyn[0] = machine.dynamic_loads
        dyn[1] = machine.dynamic_stores
        dyn[2] = machine.dynamic_calls
        dyn[3] = machine.dynamic_defines
        input_state = self._input_state
        input_state[0] = machine._input
        input_state[1] = machine._input_pos
        extra_cycles = self._extra_cycles
        extra_cycles[0] = 0
        und = self._und
        und[0] = 1
        und[1] = -1

        funcs = self._funcs
        lens = self._lens
        base = self._handlers
        code_size = len(base)
        name = machine.program.name
        pc = machine.pc
        executed_at_entry = machine.instructions_executed
        # The budget rides a countdown cell shared with generated
        # code: whole traces are charged up front (k instructions per
        # dispatch), plain handlers cost one, early trace exits pay
        # the unexecuted tail back, and loop-closed superinstructions
        # charge their own internal iterations.  ``executed`` is
        # recovered as max_instructions−rem[0] on every exit; the
        # correction cell backs out instructions a trace charged but
        # never completed.
        rem = self._rem
        rem[0] = max_instructions - executed_at_entry
        self._max_instructions = max_instructions
        started = time.perf_counter() if _METRICS.enabled else 0.0

        try:
            if not machine.halted:
                while True:
                    k = lens[pc]
                    r = rem[0]
                    if k > r:
                        if r <= 0:
                            break
                        # Budget smaller than the superblock: step the
                        # tail per-instruction so exhaustion lands on
                        # the exact same pc as the reference loop.
                        rem[0] = r - 1
                        pc = base[pc]()
                        continue
                    rem[0] = r - k
                    pc = funcs[pc]()
                executed = max_instructions - rem[0]
                self._sync(pc, executed)
                machine._flush_observer()
                raise MachineError(
                    f"{name}: instruction budget exceeded "
                    f"({max_instructions}); infinite loop?"
                )
        except _Halt:
            executed = max_instructions - rem[0]
            pc += 1
            machine.halted = True
        except _Trap as trap:
            executed = max_instructions - rem[0] - und[0]
            if und[1] >= 0:
                pc = und[1]
            self._sync(pc, executed + 1)
            machine._flush_observer()
            raise MachineError(trap.message) from None
        except _BadPC as bad:
            executed = max_instructions - rem[0]
            pc = bad.pc
            self._sync(pc, executed)
            machine._flush_observer()
            if executed >= max_instructions:
                raise MachineError(
                    f"{name}: instruction budget exceeded "
                    f"({max_instructions}); infinite loop?"
                ) from None
            raise MachineError(f"{name}: pc {pc} outside code segment") from None
        except IndexError:
            if 0 <= pc < code_size:  # pragma: no cover - genuine handler bug
                raise
            executed = max_instructions - rem[0]
            self._sync(pc, executed)
            machine._flush_observer()
            raise MachineError(f"{name}: pc {pc} outside code segment") from None

        self._sync(pc, executed)
        cycles = machine.cycles + (executed - executed_at_entry) + extra_cycles[0]
        machine.cycles = cycles
        if _METRICS.enabled:
            _METRICS.inc("machine.runs")
            _METRICS.inc("machine.engine.tier2_runs")
            _METRICS.inc("machine.instructions", executed - executed_at_entry)
            _METRICS.inc("machine.loads", machine.dynamic_loads)
            _METRICS.inc("machine.stores", machine.dynamic_stores)
            _METRICS.inc("machine.calls", machine.dynamic_calls)
            _METRICS.inc("machine.defines", machine.dynamic_defines)
            elapsed = time.perf_counter() - started
            _METRICS.observe("machine.run", elapsed)
            _METRICS.inc(f"machine.tier2.instructions.{name}", executed - executed_at_entry)
            _METRICS.observe(f"machine.tier2.run.{name}", elapsed)
            self._emit_tier2_metrics()
        _TIMESERIES.advance(executed - executed_at_entry)
        machine._flush_observer()
        return machine._make_result(executed, cycles)


class _Codegen:
    """Generates one superinstruction closure for a block.

    The emitted function body mirrors the per-pc handlers statement
    for statement, with three batching transforms: register reads are
    forwarded through locals, dyn-counter and surcharge updates are
    summed to one add each at block end (partial sums are flushed on
    every trap branch so counters stay exact), and observer hooks are
    inlined or dropped.  Constants propagate from guard bindings,
    ``li``/``la`` and folded results; any non-constant write kills the
    destination's constness.
    """

    def __init__(self, engine: Tier2Engine, blk: _Block, bindings: Dict[int, int]):
        self.engine = engine
        self.machine = engine._machine
        self.blk = blk
        self.bindings = dict(bindings)
        self.lines: List[str] = []
        self.args: Dict[str, object] = {}
        self.consts: Dict[int, int] = {0: 0}
        self.consts.update(bindings)
        self.loc: Dict[int, str] = {}
        self.pending = [0, 0, 0]  # loads, stores, defines
        self.folds = 0
        self.substs = 0
        self.dead = False
        self.ret: Optional[str] = None
        self.ntmp = 0
        self.K = len(blk.fused)
        self.pcs = blk.pcs
        self.guard_cond = ""
        self.ind = ""
        # A branch (or terminal j) back to the trace head closes the
        # loop inside the superinstruction: the whole body is wrapped
        # in ``while True`` and the backedge continues instead of
        # returning to the dispatcher.
        last = blk.fused[-1]
        self.loop_close = any(
            inst.opcode in _BRANCH_PY and inst.target == blk.start
            for inst in blk.fused
        ) or (last.opcode == "j" and last.target == blk.start)
        self.tail_backedge = False

    def extra_cycles(self, n: int) -> int:
        """Cycle surcharge of the first ``n`` trace instructions."""
        cost_by_pc = self.machine._cost_by_pc
        return sum(cost_by_pc[p] - 1 for p in self.pcs[:n])

    # -- small helpers --------------------------------------------------

    def ensure(self, name: str, obj) -> None:
        if name not in self.args:
            self.args[name] = obj

    def emit(self, line: str) -> None:
        self.lines.append("    " + self.ind + line)

    def lit(self, v: int) -> str:
        return f"({v})" if v < 0 else str(v)

    def newtmp(self, prefix: str = "t") -> str:
        self.ntmp += 1
        return f"{prefix}{self.ntmp}"

    def operand(self, reg: int) -> Tuple[Optional[int], str]:
        """(const-or-None, expression) for a register read."""
        c = self.consts.get(reg)
        if c is not None or reg in self.consts:
            self.substs += 1
            return self.consts[reg], self.lit(self.consts[reg])
        name = self.loc.get(reg)
        if name is not None:
            return None, name
        self.ensure("R", self.machine.registers)
        return None, f"R[{reg}]"

    def set_reg(self, rd: int, expr: str, is_temp: bool = False) -> str:
        self.ensure("R", self.machine.registers)
        if is_temp:
            t = expr
        else:
            t = self.newtmp()
            self.emit(f"{t} = {expr}")
        self.consts.pop(rd, None)
        self.loc[rd] = t
        self.emit(f"R[{rd}] = {t}")
        return t

    def set_reg_const(self, rd: int, value: int) -> None:
        self.ensure("R", self.machine.registers)
        self.loc.pop(rd, None)
        self.consts[rd] = value
        self.emit(f"R[{rd}] = {self.lit(value)}")

    def trap_lines(self, j: int, raise_line: str) -> List[str]:
        """Statements for a trap branch: flush partial counters, record
        the uncounted tail and trapping pc, raise."""
        self.ensure("und", self.engine._und)
        self.ensure("_T", _Trap)
        out = []
        dl, ds, dd = self.pending
        if dl:
            self.ensure("dyn", self.engine._dyn)
            out.append(f"dyn[0] += {dl}")
        if ds:
            self.ensure("dyn", self.engine._dyn)
            out.append(f"dyn[1] += {ds}")
        if dd:
            self.ensure("dyn", self.engine._dyn)
            out.append(f"dyn[3] += {dd}")
        out.append(f"und[0] = {self.K - j}")
        out.append(f"und[1] = {self.pcs[j]}")
        out.append(raise_line)
        return out

    def exit_lines(self, n: int, target: int) -> List[str]:
        """Statements for an early trace exit after ``n`` executed
        instructions: flush partial counters and cycle surcharge,
        refund the unexecuted tail, return the successor pc."""
        out = []
        dl, ds, dd = self.pending
        if dl:
            self.ensure("dyn", self.engine._dyn)
            out.append(f"dyn[0] += {dl}")
        if ds:
            self.ensure("dyn", self.engine._dyn)
            out.append(f"dyn[1] += {ds}")
        if dd:
            self.ensure("dyn", self.engine._dyn)
            out.append(f"dyn[3] += {dd}")
        extra = self.extra_cycles(n)
        if extra:
            self.ensure("cyc", self.engine._extra_cycles)
            out.append(f"cyc[0] += {extra}")
        if n < self.K:
            self.ensure("rem", self.engine._rem)
            out.append(f"rem[0] += {self.K - n}")
        out.append(f"return {target}")
        return out

    def backedge_lines(self, n: int) -> List[str]:
        """Statements for a taken loop backedge: like an early exit,
        but instead of returning to the dispatch loop the
        superinstruction charges the next iteration itself and jumps
        back to its own top — provided the budget covers a full
        iteration and the guarded registers still hold their bound
        values (a stale binding returns to the dispatcher, whose entry
        guard turns it into a proper deopt)."""
        out = []
        dl, ds, dd = self.pending
        if dl:
            self.ensure("dyn", self.engine._dyn)
            out.append(f"dyn[0] += {dl}")
        if ds:
            self.ensure("dyn", self.engine._dyn)
            out.append(f"dyn[1] += {ds}")
        if dd:
            self.ensure("dyn", self.engine._dyn)
            out.append(f"dyn[3] += {dd}")
        extra = self.extra_cycles(n)
        if extra:
            self.ensure("cyc", self.engine._extra_cycles)
            out.append(f"cyc[0] += {extra}")
        self.ensure("rem", self.engine._rem)
        if n < self.K:
            out.append(f"rem[0] += {self.K - n}")
        recheck = f"rem[0] < {self.K}"
        if self.guard_cond:
            recheck += f" or {self.guard_cond}"
        out.append(f"if {recheck}: return {self.blk.start}")
        out.append(f"rem[0] -= {self.K}")
        if self.bindings:
            out.append("gs[0] += 1")
        out.append("continue")
        return out

    def emit_trap_branch(self, j: int, cond: str, raise_line: str) -> None:
        self.emit(f"if {cond}:")
        for line in self.trap_lines(j, raise_line):
            self.emit("    " + line)

    def emit_unconditional_trap(self, j: int, raise_line: str) -> None:
        for line in self.trap_lines(j, raise_line):
            self.emit(line)
        self.dead = True

    # -- observer hooks -------------------------------------------------

    def emit_value_hook(self, j: int, hook, value_expr: str, tag: str,
                        call_args: Optional[str] = None) -> None:
        """Inline a buffered-profiler hook, or call it.

        ``call_args`` overrides the argument list for the call path
        (load hooks take ``(address, value)``); the inline path always
        appends just the value, matching the profiler's own hooks.
        """
        if hook is None:
            return
        spec = getattr(hook, "__vp_inline__", None)
        if spec is not None:
            buffers, site, threshold, flush = spec
            buf = buffers.get(site)
            if buf is not None:
                b, s, f = f"b{tag}{j}", f"s{tag}{j}", f"f{tag}{j}"
                self.args[b] = buf
                self.args[s] = site
                self.args[f] = flush
                self.ensure("len", len)
                self.emit(f"{b}.append({value_expr})")
                self.emit(f"if len({b}) >= {threshold}: {f}({s}, {b})")
                return
        h = f"h{tag}{j}"
        self.args[h] = hook
        self.emit(f"{h}({call_args if call_args is not None else value_expr})")

    def finish_define(self, j: int, inst, kind: str, val, dh) -> None:
        """Common tail of a defining instruction: register write, dyn
        count, define hook — with the r0 hardwired-zero rule."""
        rd = inst.rd
        if rd == 0:
            hv = "0"
        elif kind == "const":
            self.set_reg_const(rd, val)
            hv = self.lit(val)
        else:
            t = self.set_reg(rd, val, is_temp=(kind == "temp"))
            hv = t
        self.pending[2] += 1
        self.emit_value_hook(j, dh, hv, "d")

    # -- per-opcode emitters --------------------------------------------

    def value_of(self, j: int, inst):
        """(kind, value) for a pure computing opcode.

        kind is "const" (value: int), "expr" (value: expression string)
        or "temp" (value: existing local name).  Pure means no side
        effects — safe to skip entirely when rd is r0.
        """
        op = inst.opcode
        if op == "li":
            return "const", to_signed64(inst.imm)
        if op == "la":
            return "const", inst.imm
        if op == "mov":
            ac, ax = self.operand(inst.ra)
            if ac is not None:
                return "const", ac
            return ("temp", ax) if ax == self.loc.get(inst.ra) else ("expr", ax)
        if op in _ALU_IMM or op in _ALU_REG:
            if op in _ALU_IMM:
                op2 = _ALU_IMM[op]
                bc, bx = inst.imm, self.lit(inst.imm)
            else:
                op2 = op
                bc, bx = self.operand(inst.rb)
            ac, ax = self.operand(inst.ra)
            return self.alu_value(op2, ac, ax, bc, bx)
        if op in _SHIFT_IMM or op in _SHIFT_REG:
            if op in _SHIFT_IMM:
                op2 = _SHIFT_IMM[op]
                sc, sx = inst.imm & 63, str(inst.imm & 63)
            else:
                op2 = op
                sc, sx = self.operand(inst.rb)
                if sc is not None:
                    sc, sx = sc & 63, str(sc & 63)
                else:
                    sx = f"({sx} & 63)"
            ac, ax = self.operand(inst.ra)
            return self.shift_value(op2, ac, ax, sc, sx)
        if op in _CMP_IMM or op in _CMP_REG:
            if op in _CMP_IMM:
                op2 = _CMP_IMM[op]
                bc, bx = inst.imm, self.lit(inst.imm)
            else:
                op2 = op
                bc, bx = self.operand(inst.rb)
            ac, ax = self.operand(inst.ra)
            if ac is not None and bc is not None:
                self.folds += 1
                return "const", _fold_cmp(op2, ac, bc)
            return "expr", f"1 if {ax} {_CMP_PY[op2]} {bx} else 0"
        raise MachineError(f"tier2: no value emitter for {op!r}")  # pragma: no cover

    def alu_value(self, op2, ac, ax, bc, bx):
        B, Mk = "B", "Mk"
        self.ensure("B", _BIAS)
        self.ensure("Mk", _MASK)
        if ac is not None and bc is not None:
            self.folds += 1
            return "const", _fold_alu(op2, ac, bc)
        # Identity folds: sound because register values are always
        # canonical signed-64 (every write wraps).
        if op2 == "add":
            if bc == 0:
                self.folds += 1
                return self.copy_of(ac, ax)
            if ac == 0:
                self.folds += 1
                return self.copy_of(bc, bx)
            return "expr", f"(({ax} + {bx} + {B}) & {Mk}) - {B}"
        if op2 == "sub":
            if bc == 0:
                self.folds += 1
                return self.copy_of(ac, ax)
            return "expr", f"(({ax} - {bx} + {B}) & {Mk}) - {B}"
        if op2 == "mul":
            if bc == 0 or ac == 0:
                self.folds += 1
                return "const", 0
            if bc == 1:
                self.folds += 1
                return self.copy_of(ac, ax)
            if ac == 1:
                self.folds += 1
                return self.copy_of(bc, bx)
            if bc is not None and bc > 1 and bc & (bc - 1) == 0:
                self.folds += 1
                s = bc.bit_length() - 1
                return "expr", f"((({ax} << {s}) + {B}) & {Mk}) - {B}"
            return "expr", f"(({ax} * {bx} + {B}) & {Mk}) - {B}"
        if op2 == "and":
            if bc == 0 or ac == 0:
                self.folds += 1
                return "const", 0
            if bc == -1:
                self.folds += 1
                return self.copy_of(ac, ax)
            if ac == -1:
                self.folds += 1
                return self.copy_of(bc, bx)
            return "expr", f"(({ax} & {bx}) + {B} & {Mk}) - {B}"
        if op2 == "or":
            if bc == 0:
                self.folds += 1
                return self.copy_of(ac, ax)
            if ac == 0:
                self.folds += 1
                return self.copy_of(bc, bx)
            if bc == -1 or ac == -1:
                self.folds += 1
                return "const", -1
            return "expr", f"(({ax} | {bx}) + {B} & {Mk}) - {B}"
        # xor
        if bc == 0:
            self.folds += 1
            return self.copy_of(ac, ax)
        if ac == 0:
            self.folds += 1
            return self.copy_of(bc, bx)
        return "expr", f"(({ax} ^ {bx}) + {B} & {Mk}) - {B}"

    def copy_of(self, c, x):
        if c is not None:
            return "const", c
        # A bare local temp can be forwarded without rematerializing.
        return ("temp", x) if x.isidentifier() else ("expr", x)

    def shift_value(self, op2, ac, ax, sc, sx):
        if ac is not None and sc is not None:
            self.folds += 1
            return "const", _fold_shift(op2, ac, sc)
        if sc == 0:
            self.folds += 1
            return self.copy_of(ac, ax)
        self.ensure("B", _BIAS)
        self.ensure("Mk", _MASK)
        if op2 == "sll":
            return "expr", f"((({ax} << {sx}) + B) & Mk) - B"
        if op2 == "srl":
            return "expr", f"(((({ax} & Mk) >> {sx}) + B) & Mk) - B"
        return "expr", f"((({ax} >> {sx}) + B) & Mk) - B"

    def emit_ld(self, j: int, inst, dh, lh) -> None:
        self.ensure("M", self.machine.memory)
        mw = self.machine.memory_words
        name = self.machine.program.name
        pc = inst.pc
        ac, ax = self.operand(inst.ra)
        if ac is not None:
            addr = ac + inst.imm
            if not 0 <= addr < mw:
                msg = f"{name}: load out of range at pc {pc}: address {addr}"
                m = f"m{j}"
                self.args[m] = msg
                self.emit_unconditional_trap(j, f"raise _T({m})")
                return
            self.folds += 1
            aexpr = str(addr)
        else:
            at = self.newtmp("a")
            self.emit(f"{at} = {ax} + {inst.imm}" if inst.imm else f"{at} = {ax}")
            m = f"m{j}"
            self.args[m] = f"{name}: load out of range at pc {pc}: address "
            self.ensure("str", str)
            self.emit_trap_branch(j, f"not 0 <= {at} < {mw}",
                                  f"raise _T(m{j} + str({at}))")
            aexpr = at
        vt = self.newtmp()
        self.emit(f"{vt} = M[{aexpr}]")
        rd = inst.rd
        if rd != 0:
            self.consts.pop(rd, None)
            self.loc[rd] = vt
            self.ensure("R", self.machine.registers)
            self.emit(f"R[{rd}] = {vt}")
        self.pending[0] += 1
        self.emit_value_hook(j, lh, vt, "l", call_args=f"{aexpr}, {vt}")
        self.pending[2] += 1
        self.emit_value_hook(j, dh, vt if rd != 0 else "0", "d")

    def emit_st(self, j: int, inst, sh) -> None:
        self.ensure("M", self.machine.memory)
        mw = self.machine.memory_words
        name = self.machine.program.name
        pc = inst.pc
        ac, ax = self.operand(inst.ra)
        vc, vx = self.operand(inst.rd)
        if ac is not None:
            addr = ac + inst.imm
            if not 0 <= addr < mw:
                msg = f"{name}: store out of range at pc {pc}: address {addr}"
                m = f"m{j}"
                self.args[m] = msg
                self.emit_unconditional_trap(j, f"raise _T({m})")
                return
            self.folds += 1
            aexpr = str(addr)
        else:
            at = self.newtmp("a")
            self.emit(f"{at} = {ax} + {inst.imm}" if inst.imm else f"{at} = {ax}")
            m = f"m{j}"
            self.args[m] = f"{name}: store out of range at pc {pc}: address "
            self.ensure("str", str)
            self.emit_trap_branch(j, f"not 0 <= {at} < {mw}",
                                  f"raise _T(m{j} + str({at}))")
            aexpr = at
        if vc is None and not vx.isidentifier():
            vt = self.newtmp()
            self.emit(f"{vt} = {vx}")
            vx = vt
        self.emit(f"M[{aexpr}] = {vx}")
        self.pending[1] += 1
        if sh is not None:
            h = f"hs{j}"
            self.args[h] = sh
            self.emit(f"{h}({aexpr}, {vx})")

    def emit_div(self, j: int, inst, dh) -> None:
        op = inst.opcode
        is_div = op.startswith("div")
        name = self.machine.program.name
        msg = (f"{name}: division by zero at pc {inst.pc} "
               f"({inst.render()}, line {inst.line})")
        if op.endswith("i"):
            dc, dx = inst.imm, self.lit(inst.imm)
        else:
            dc, dx = self.operand(inst.rb)
        nc, nx = self.operand(inst.ra)
        if dc == 0:
            m = f"m{j}"
            self.args[m] = msg
            self.emit_unconditional_trap(j, f"raise _T({m})")
            return
        if dc is None:
            dt = self.newtmp("d")
            self.emit(f"{dt} = {dx}")
            dx = dt
            m = f"m{j}"
            self.args[m] = msg
            self.emit_trap_branch(j, f"{dx} == 0", f"raise _T(m{j})")
        if nc is not None and dc is not None:
            q = abs(nc) // abs(dc)
            if (nc < 0) != (dc < 0):
                q = -q
            self.folds += 1
            value = to_signed64(q) if is_div else to_signed64(nc - q * dc)
            self.finish_define(j, inst, "const", value, dh)
            return
        if inst.rd == 0:
            # Quotient is dead (r0 write); only the zero trap above is
            # architecturally visible.
            self.finish_define(j, inst, "const", 0, dh)
            return
        if not nx.isidentifier():
            nt = self.newtmp("n")
            self.emit(f"{nt} = {nx}")
            nx = nt
        self.ensure("abs", abs)
        self.ensure("B", _BIAS)
        self.ensure("Mk", _MASK)
        qt = self.newtmp("q")
        self.emit(f"{qt} = abs({nx}) // abs({dx})")
        self.emit(f"if ({nx} < 0) != ({dx} < 0): {qt} = -{qt}")
        if is_div:
            expr = f"(({qt} + B) & Mk) - B"
        else:
            expr = f"(({nx} - {qt} * {dx} + B) & Mk) - B"
        self.finish_define(j, inst, "expr", expr, dh)

    def emit_in(self, j: int, inst, dh) -> None:
        self.ensure("ist", self.engine._input_state)
        self.ensure("len", len)
        pt = self.newtmp("p")
        vt = self.newtmp()
        self.emit(f"{pt} = ist[1]")
        self.emit(f"if {pt} < len(ist[0]):")
        self.emit(f"    {vt} = ist[0][{pt}]")
        self.emit(f"    ist[1] = {pt} + 1")
        self.emit("else:")
        self.emit(f"    {vt} = 0")
        self.finish_define(j, inst, "temp", vt, dh)

    def emit_inst(self, j: int, inst) -> None:
        op = inst.opcode
        dh, lh, sh = self.engine._hooks_for(inst)
        if op == "nop":
            return
        if op == "out":
            _, vx = self.operand(inst.rd)
            self.ensure("outp", self.machine.output.append)
            self.emit(f"outp({vx})")
            return
        if op == "ld":
            self.emit_ld(j, inst, dh, lh)
            return
        if op == "st":
            self.emit_st(j, inst, sh)
            return
        if op in ("div", "divi", "rem", "remi"):
            self.emit_div(j, inst, dh)
            return
        if op == "in":
            self.emit_in(j, inst, dh)
            return
        kind, val = self.value_of(j, inst)
        if inst.rd == 0 and kind == "expr":
            # Dead pure compute into r0: skip the arithmetic, keep the
            # architecturally visible define event (value 0).
            kind, val = "const", 0
        self.finish_define(j, inst, kind, val, dh)

    def emit_branch(self, j: int, inst) -> None:
        """A conditional branch: trace terminator when last, guarded
        early exit (taken path) when mid-trace — the trace itself
        continues along the fallthrough edge."""
        op = inst.opcode
        t, npc = inst.target, inst.pc + 1
        ac, ax = self.operand(inst.ra)
        bc, bx = self.operand(inst.rb)
        last = j == self.K - 1
        backedge = t == self.blk.start
        if ac is not None and bc is not None:
            self.folds += 1
            if _branch_taken(op, ac, bc):
                if backedge:
                    # Constant-taken backedge: loop unconditionally
                    # until the budget (or a guard recheck) breaks out.
                    for line in self.backedge_lines(j + 1):
                        self.emit(line)
                    self.dead = True
                elif last:
                    self.ret = str(t)
                else:
                    # Constant-taken mid-trace: the fused tail is
                    # unreachable; exit (refunding it) unconditionally.
                    for line in self.exit_lines(j + 1, t):
                        self.emit(line)
                    self.dead = True
            elif last:
                self.ret = str(npc)
            # constant not-taken mid-trace: no code, fall through.
            return
        cond = f"{ax} {_BRANCH_PY[op]} {bx}"
        if t == npc:
            # Branch to the next instruction: both edges continue the
            # trace, nothing to test.
            self.folds += 1
            if last:
                self.ret = str(npc)
            return
        if backedge:
            self.emit(f"if {cond}:")
            for line in self.backedge_lines(j + 1):
                self.emit("    " + line)
            if last:
                self.ret = str(npc)
            return
        if last:
            self.ret = f"{t} if {cond} else {npc}"
            return
        self.emit(f"if {cond}:")
        for line in self.exit_lines(j + 1, t):
            self.emit("    " + line)

    # -- assembly -------------------------------------------------------

    def build(self):
        blk = self.blk
        engine = self.engine
        head: List[str] = []
        if self.bindings:
            self.ensure("R", self.machine.registers)
            self.args["fb"] = engine._make_fallback(blk)
            self.args["gs"] = blk.guard_cell
            self.guard_cond = " or ".join(
                f"R[{r}] != {self.lit(v)}" for r, v in sorted(self.bindings.items())
            )
            head.append(f"    if {self.guard_cond}:")
            head.append("        return fb()")
            head.append("    gs[0] += 1")
        if self.loop_close:
            head.append("    while True:")
            self.ind = "    "
        for j, inst in enumerate(blk.fused):
            op = inst.opcode
            if op in _BRANCH_PY:
                self.emit_branch(j, inst)
            elif op == "j":
                if j == self.K - 1:
                    if inst.target == blk.start:
                        self.tail_backedge = True
                    else:
                        self.ret = str(inst.target)
                # Mid-trace j: the trace continued at the target, so
                # the jump itself compiles to nothing.
            elif op in ("jal", "jalr", "jr"):
                # Terminal control transfer: tail-call the original
                # handler (link write, call/return hooks, bad-target
                # checks) after flushing the batched counters.
                h = f"hx{j}"
                self.args[h] = engine._handlers[inst.pc]
                self.ret = f"{h}()"
            else:
                self.emit_inst(j, inst)
            if self.dead:
                break
        if not self.dead:
            if self.tail_backedge:
                for line in self.backedge_lines(self.K):
                    self.emit(line)
            else:
                dl, ds, dd = self.pending
                if dl or ds or dd:
                    self.ensure("dyn", engine._dyn)
                if dl:
                    self.emit(f"dyn[0] += {dl}")
                if ds:
                    self.emit(f"dyn[1] += {ds}")
                if dd:
                    self.emit(f"dyn[3] += {dd}")
                extra = self.extra_cycles(self.K)
                if extra:
                    self.ensure("cyc", engine._extra_cycles)
                    self.emit(f"cyc[0] += {extra}")
                if self.ret is None:
                    self.ret = str(self.pcs[-1] + 1)
                self.emit(f"return {self.ret}")
        params = ", ".join(f"{n}={n}" for n in self.args)
        body = head + (self.lines or ["    pass"])
        src = f"def _sb({params}):\n" + "\n".join(body) + "\n"
        ns = dict(self.args)
        code = _CODE_CACHE.get(src)
        hit = code is not None
        if code is None:
            if len(_CODE_CACHE) >= _CODE_CACHE_CAP:
                _CODE_CACHE.clear()
            code = compile(src, f"<tier2:{self.machine.program.name}:{blk.start}>", "exec")
            _CODE_CACHE[src] = code
        if _JITLOG.enabled:
            engine._jl_emit("cache_hit" if hit else "cache_miss", blk,
                            source_lines=src.count("\n"))
        exec(code, ns)  # noqa: S102 - source assembled from trusted opcode table
        return ns["_sb"], self.folds, self.substs
