"""The VPA ISA substrate: assembler, interpreter, instrumentation.

This package replaces the paper's DEC Alpha + ATOM toolchain.  A
workload is VPA assembly text; :func:`assemble` turns it into a
:class:`Program`; :class:`Machine` executes it; observers in
:mod:`repro.isa.instrument` deliver the (site, value) event stream the
profiling core consumes.
"""

from repro.isa.assembler import Assembler, assemble
from repro.isa.instructions import (
    Format,
    InsnClass,
    Instruction,
    OPCODES,
    OpcodeInfo,
    opcode_info,
    to_signed64,
)
from repro.isa.instrument import (
    ALL_TARGETS,
    FanoutObserver,
    GlobalTraceCollector,
    ProfileTarget,
    ValueProfiler,
    ValueTraceCollector,
)
from repro.isa.machine import (
    DEFAULT_BUDGET,
    DEFAULT_MEMORY_WORDS,
    Machine,
    MachineObserver,
    RunResult,
    block_counts,
    run_program,
)
from repro.isa.program import BasicBlock, Procedure, Program

__all__ = [
    "ALL_TARGETS",
    "Assembler",
    "BasicBlock",
    "DEFAULT_BUDGET",
    "DEFAULT_MEMORY_WORDS",
    "FanoutObserver",
    "GlobalTraceCollector",
    "Format",
    "InsnClass",
    "Instruction",
    "Machine",
    "MachineObserver",
    "OPCODES",
    "OpcodeInfo",
    "Procedure",
    "ProfileTarget",
    "Program",
    "RunResult",
    "ValueProfiler",
    "ValueTraceCollector",
    "assemble",
    "block_counts",
    "opcode_info",
    "run_program",
    "to_signed64",
]
