"""Executable VPA programs: procedures, basic blocks, data segment.

The assembler produces a :class:`Program`; the machine executes it and
the instrumentation layer queries it — exactly the role ATOM's program
representation plays in the paper, where "instructions, basic blocks,
and procedures [can] be queried and manipulated" (§III.E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import MachineError
from repro.isa.instructions import Instruction


@dataclass(frozen=True)
class Procedure:
    """One procedure: a contiguous range of instructions.

    Attributes:
        name: procedure name from the ``.proc`` directive.
        start: pc of the first instruction (the call target).
        end: pc one past the last instruction.
        nargs: declared argument count (``r1``..``r<nargs>`` at entry),
            used by the parameter-profiling front end.
    """

    name: str
    start: int
    end: int
    nargs: int = 0

    def __contains__(self, pc: int) -> bool:
        return self.start <= pc < self.end

    @property
    def size(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class BasicBlock:
    """Maximal straight-line instruction range within one procedure."""

    start: int
    end: int
    procedure: str

    @property
    def size(self) -> int:
        return self.end - self.start


@dataclass
class Program:
    """A fully assembled VPA program.

    Attributes:
        name: program (workload) name; becomes the ``program`` field of
            every profile site.
        instructions: the code segment, indexed by pc.
        procedures: procedure table by name.
        labels: code labels by name (includes procedure entries).
        data_symbols: data-segment symbol addresses by name.
        data_image: initial contents of the data segment, starting at
            address 0.
        entry: pc where execution starts (the ``main`` procedure).
    """

    name: str
    instructions: List[Instruction]
    procedures: Dict[str, Procedure]
    labels: Dict[str, int]
    data_symbols: Dict[str, int]
    data_image: List[int]
    entry: int = 0
    source: str = field(default="", repr=False)

    def __len__(self) -> int:
        return len(self.instructions)

    def procedure_at(self, pc: int) -> Optional[Procedure]:
        """The procedure containing ``pc`` (linear scan is fine: few procs)."""
        for procedure in self.procedures.values():
            if pc in procedure:
                return procedure
        return None

    def procedure_of_label(self, label: str) -> Procedure:
        try:
            return self.procedures[label]
        except KeyError:
            raise MachineError(f"{self.name}: no procedure named {label!r}") from None

    def basic_blocks(self) -> List[BasicBlock]:
        """Partition the code into basic blocks.

        Leaders are: entry of every procedure, every branch/jump target,
        and every instruction following a control transfer.
        """
        if not self.instructions:
            return []
        leaders = {procedure.start for procedure in self.procedures.values()}
        leaders.add(0)
        for inst in self.instructions:
            info = inst.info
            if info.is_branch:
                if inst.opcode not in ("jr", "jalr"):
                    leaders.add(inst.target)
                if inst.pc + 1 < len(self.instructions):
                    leaders.add(inst.pc + 1)
        boundaries = sorted(leaders) + [len(self.instructions)]
        blocks = []
        for start, end in zip(boundaries, boundaries[1:]):
            if start >= end:
                continue
            procedure = self.procedure_at(start)
            blocks.append(BasicBlock(start, end, procedure.name if procedure else ""))
        return blocks

    def disassemble(self) -> str:
        """Readable listing of the whole code segment."""
        lines = []
        starts = {procedure.start: procedure for procedure in self.procedures.values()}
        for inst in self.instructions:
            if inst.pc in starts:
                procedure = starts[inst.pc]
                lines.append(f"{procedure.name}:  ; nargs={procedure.nargs}")
            lines.append(f"  {inst}")
        return "\n".join(lines)

    def static_load_count(self) -> int:
        """Number of static load instructions (Diff(L/I) denominators)."""
        return sum(1 for inst in self.instructions if inst.info.is_load)

    def static_defining_count(self) -> int:
        """Number of static register-defining instructions."""
        return sum(1 for inst in self.instructions if inst.info.defines_register)
