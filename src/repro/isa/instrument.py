"""ATOM-style instrumentation of the VPA machine.

The paper instruments Alpha binaries with ATOM [35]: a probe after each
instruction passes the destination-register value to an analysis
routine that updates the TNV table (§III.E).  This module is that
layer for VPA: :class:`ValueProfiler` subscribes to machine events and
records values into any object with a ``record(site, value)`` method —
a :class:`~repro.core.profile.ProfileDatabase` for full profiling or a
:class:`~repro.core.sampling.SamplingProfiler` for sampled profiling.

Site objects are interned per static instruction / memory word /
parameter so the per-event cost is one dictionary lookup, mirroring how
ATOM passes a pre-allocated per-instruction handle to its probes.
"""

from __future__ import annotations

import enum
from functools import partial
from typing import Dict, Hashable, Iterable, List, Optional, Protocol, Sequence, Set, Tuple

from repro.core.sites import (
    Site,
    instruction_site,
    load_site,
    memory_site,
    parameter_site,
    return_site,
)
from repro.isa.instructions import Instruction
from repro.isa.machine import MachineObserver
from repro.isa.program import Procedure, Program
from repro.obs.flight import FLIGHT as _FLIGHT
from repro.obs.metrics import METRICS as _METRICS


class ProfileTarget(enum.Enum):
    """Which event families a profiler subscribes to."""

    INSTRUCTIONS = "instructions"  # destination values of all defining instructions
    LOADS = "loads"  # values fetched by load instructions
    MEMORY = "memory"  # values stored to each memory word
    PARAMETERS = "parameters"  # argument registers at procedure entry
    RETURNS = "returns"  # the return register at procedure exit


ALL_TARGETS = frozenset(ProfileTarget)


class Recorder(Protocol):
    """Anything that accepts (site, value) profile events."""

    def record(self, site: Site, value: Hashable) -> None:  # pragma: no cover
        ...


#: Default per-site buffer size for buffered profiling.  Roughly one
#: sampling burst (the thesis' burst is 1000), so buffered sampled
#: profiling flushes about once per burst.
DEFAULT_FLUSH_THRESHOLD = 1024


class ValueProfiler(MachineObserver):
    """Machine observer that feeds a profile recorder.

    Args:
        program: the program being profiled (site identities come from
            its instruction and procedure tables).
        recorder: destination for (site, value) events.
        targets: event families to profile; fewer targets means less
            interpreter overhead, exactly as with ATOM probes.
        buffered: accumulate (site, value) events in per-site buffers
            and flush them as batches through the recorder's
            ``record_batch`` method (falling back to per-event
            ``record`` when the recorder has none).  Because every
            profiling structure keeps per-site state only, per-site
            buffering produces byte-identical profiles while collapsing
            the per-event Python call chain; the exception is recorders
            whose sampling policy has cross-site state
            (``site_local == False``), which must stay unbuffered.
        flush_threshold: buffered events per site before that site's
            buffer is flushed; :meth:`flush` drains the rest at run end
            (the machine calls it when the program halts).
    """

    def __init__(
        self,
        program: Program,
        recorder: Recorder,
        targets: Iterable[ProfileTarget] = (ProfileTarget.INSTRUCTIONS,),
        parameter_context: bool = False,
        buffered: bool = False,
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
    ) -> None:
        self.program = program
        self.recorder = recorder
        self.buffered = buffered
        self.flush_threshold = flush_threshold
        self._buffers: Dict[Site, List[Hashable]] = {}
        self._record_batch = getattr(recorder, "record_batch", None)
        #: per-event sink the on_* handlers call; bound once so the
        #: unbuffered path costs exactly one call into the recorder.
        self._emit = self._emit_buffered if buffered else recorder.record
        if _METRICS.enabled and not buffered:
            # Observability on: swap in a counting emit.  Decided once
            # at construction, so the disabled-mode per-event path is
            # byte-for-byte the line above.  (The buffered path counts
            # at flush time instead — see _flush_site.)
            base_emit = self._emit

            def counting_emit(site: Site, value: Hashable, _base=base_emit) -> None:
                _METRICS.inc("profiler.events")
                _base(site, value)

            self._emit = counting_emit
        if _FLIGHT.enabled and not buffered:
            # Flight recorder on: tee every event into the crash ring.
            # Decided once at construction like the counting emit above,
            # so the disabled-mode per-event path is unchanged.  The
            # buffered path tees whole batches in _flush_site instead.
            base_emit = self._emit

            def flight_emit(
                site: Site, value: Hashable, _base=base_emit, _flight=_FLIGHT.record
            ) -> None:
                _flight(site, value)
                _base(site, value)

            self._emit = flight_emit
        self.targets: Set[ProfileTarget] = set(targets)
        #: when set, parameter sites are keyed by calling site as well
        #: (Young & Smith-style path sensitivity; thesis future work)
        self.parameter_context = parameter_context
        name = program.name
        # Pre-interned sites, indexed by pc.
        self._instruction_sites: List[Optional[Site]] = []
        self._load_sites: List[Optional[Site]] = []
        for inst in program.instructions:
            info = inst.info
            self._instruction_sites.append(
                instruction_site(name, inst.procedure, inst.pc, inst.opcode)
                if info.defines_register
                else None
            )
            self._load_sites.append(
                load_site(name, inst.procedure, inst.pc, inst.opcode) if info.is_load else None
            )
        self._memory_sites: Dict[int, Site] = {}
        self._parameter_sites: Dict[Tuple[str, int, int], Site] = {}
        self._return_sites: Dict[str, Site] = {}
        self._want_instructions = ProfileTarget.INSTRUCTIONS in self.targets
        self._want_loads = ProfileTarget.LOADS in self.targets
        self._want_memory = ProfileTarget.MEMORY in self.targets
        self._want_parameters = ProfileTarget.PARAMETERS in self.targets
        self._want_returns = ProfileTarget.RETURNS in self.targets

    # ------------------------------------------------------------------
    # buffering
    # ------------------------------------------------------------------

    def _emit_buffered(self, site: Site, value: Hashable) -> None:
        buffers = self._buffers
        buffer = buffers.get(site)
        if buffer is None:
            buffer = buffers[site] = []
        buffer.append(value)
        if len(buffer) >= self.flush_threshold:
            self._flush_site(site, buffer)

    def _flush_site(self, site: Site, buffer: List[Hashable]) -> None:
        if _METRICS.enabled:
            _METRICS.inc("profiler.buffer_flushes")
            _METRICS.inc("profiler.events", len(buffer))
        if _FLIGHT.enabled:
            _FLIGHT.record_batch(site, buffer)
        if self._record_batch is not None:
            self._record_batch(site, buffer)
        else:
            record = self.recorder.record
            for value in buffer:
                record(site, value)
        buffer.clear()

    def flush(self) -> None:
        """Drain every per-site buffer into the recorder.

        Called by the machine when the program halts; safe (and a
        no-op) for unbuffered profilers.
        """
        _METRICS.gauge("profiler.buffered_sites", len(self._buffers))
        for site, buffer in self._buffers.items():
            if buffer:
                self._flush_site(site, buffer)

    # ------------------------------------------------------------------
    # MachineObserver interface
    # ------------------------------------------------------------------

    def on_define(self, inst: Instruction, value: int) -> None:
        if not self._want_instructions:
            return
        site = self._instruction_sites[inst.pc]
        if site is not None:
            self._emit(site, value)

    def on_load(self, inst: Instruction, address: int, value: int) -> None:
        if not self._want_loads:
            return
        site = self._load_sites[inst.pc]
        if site is not None:
            self._emit(site, value)

    def on_store(self, inst: Instruction, address: int, value: int) -> None:
        if not self._want_memory:
            return
        site = self._memory_sites.get(address)
        if site is None:
            site = memory_site(self.program.name, address)
            self._memory_sites[address] = site
        self._emit(site, value)

    def on_call(self, procedure: Procedure, args: Sequence[int], call_site: int = -1) -> None:
        if not self._want_parameters:
            return
        context = call_site if self.parameter_context else -1
        for index, value in enumerate(args):
            key = (procedure.name, index, context)
            site = self._parameter_sites.get(key)
            if site is None:
                site = parameter_site(self.program.name, procedure.name, index)
                if context >= 0:
                    site = Site(
                        kind=site.kind,
                        program=site.program,
                        procedure=site.procedure,
                        label=f"{site.label}@{context}",
                    )
                self._parameter_sites[key] = site
            self._emit(site, value)


    def on_return(self, procedure: Procedure, value: int) -> None:
        if not self._want_returns:
            return
        site = self._return_sites.get(procedure.name)
        if site is None:
            site = return_site(self.program.name, procedure.name)
            self._return_sites[procedure.name] = site
        self._emit(site, value)

    # ------------------------------------------------------------------
    # decode-time binding (threaded engine)
    # ------------------------------------------------------------------
    #
    # The on_* handlers above re-decide "do I want this family?" and
    # re-look-up the interned site on *every event*.  Both decisions
    # depend only on the static instruction, so for the threaded engine
    # they are made once at decode: the returned hook is the emit sink
    # with its site pre-bound, or None when the event family is off —
    # in which case the engine skips the call entirely.  The resulting
    # event stream is byte-identical to the on_* path.

    def _bind_emit(self, site: Site):
        """Per-site emit sink for decode-time binding.

        Unbuffered profilers get the generic emit with the site
        pre-bound.  Buffered profilers get a closure that caches the
        site's buffer list after the first event, replacing
        :meth:`_emit_buffered`'s per-event dict lookup with a cell
        load; the cache stays valid because ``_flush_site`` clears the
        list in place.  Buffer creation stays lazy (first event, not
        decode), so flush order — and therefore recorder call order —
        is identical to the unbound path.
        """
        if not self.buffered:
            return partial(self._emit, site)

        def emit(value, _cell=[], _buffers=self._buffers, _site=site,
                 _threshold=self.flush_threshold, _flush=self._flush_site):
            if _cell:
                buffer = _cell[0]
            else:
                buffer = _buffers.get(_site)
                if buffer is None:
                    buffer = _buffers[_site] = []
                _cell.append(buffer)
            buffer.append(value)
            if len(buffer) >= _threshold:
                _flush(_site, buffer)

        # Inline contract for the tier-2 engine: the hook's whole
        # per-event effect is append + threshold flush on this site's
        # buffer, so a superinstruction may compile those two
        # statements in place of the call.  Valid only once the buffer
        # exists (creation order is part of the observable flush
        # order), which tier-2 guarantees by quickening only blocks
        # whose hooks have already fired.
        emit.__vp_inline__ = (self._buffers, site, self.flush_threshold,
                              self._flush_site)
        return emit

    def bind_define(self, inst: Instruction):
        if not self._want_instructions:
            return None
        site = self._instruction_sites[inst.pc]
        if site is None:
            return None
        return self._bind_emit(site)

    def bind_load(self, inst: Instruction):
        if not self._want_loads:
            return None
        site = self._load_sites[inst.pc]
        if site is None:
            return None
        if self.buffered:
            # Same cached-buffer emit as _bind_emit, inlined so the
            # (address, value) load hook is a single call deep.
            def hook(address, value, _cell=[], _buffers=self._buffers,
                     _site=site, _threshold=self.flush_threshold,
                     _flush=self._flush_site):
                if _cell:
                    buffer = _cell[0]
                else:
                    buffer = _buffers.get(_site)
                    if buffer is None:
                        buffer = _buffers[_site] = []
                    _cell.append(buffer)
                buffer.append(value)
                if len(buffer) >= _threshold:
                    _flush(_site, buffer)

            # Same tier-2 inline contract as _bind_emit (the load hook
            # ignores the address, so the inlined form is identical).
            hook.__vp_inline__ = (self._buffers, site, self.flush_threshold,
                                  self._flush_site)
            return hook

        def hook(address, value, _emit=self._emit, _site=site):
            _emit(_site, value)

        return hook

    def bind_store(self, inst: Instruction):
        if not self._want_memory:
            return None

        def hook(
            address,
            value,
            _sites=self._memory_sites,
            _emit=self._emit,
            _name=self.program.name,
        ):
            site = _sites.get(address)
            if site is None:
                site = memory_site(_name, address)
                _sites[address] = site
            _emit(site, value)

        return hook

    def bind_call(self, procedure: Procedure, call_pc: int):
        if not self._want_parameters:
            return None
        context = call_pc if self.parameter_context else -1
        sites = []
        for index in range(procedure.nargs):
            key = (procedure.name, index, context)
            site = self._parameter_sites.get(key)
            if site is None:
                site = parameter_site(self.program.name, procedure.name, index)
                if context >= 0:
                    site = Site(
                        kind=site.kind,
                        program=site.program,
                        procedure=site.procedure,
                        label=f"{site.label}@{context}",
                    )
                self._parameter_sites[key] = site
            sites.append(site)

        def hook(args, _emits=tuple(self._bind_emit(site) for site in sites)):
            for emit, value in zip(_emits, args):
                emit(value)

        return hook

    def bind_return(self, procedure: Procedure):
        if not self._want_returns:
            return None
        site = self._return_sites.get(procedure.name)
        if site is None:
            site = return_site(self.program.name, procedure.name)
            self._return_sites[procedure.name] = site
        return self._bind_emit(site)


class ValueTraceCollector(MachineObserver):
    """Observer that collects raw per-site value *sequences*.

    Value predictors (:mod:`repro.predictors`) need the ordered stream
    of values each site produced, not just its histogram.  Traces can
    be capped per site to bound memory; ``dropped`` counts the events
    discarded past a site's cap, so a capped collection is always
    distinguishable from a complete one.
    """

    def __init__(
        self,
        program: Program,
        targets: Iterable[ProfileTarget] = (ProfileTarget.INSTRUCTIONS,),
        max_per_site: Optional[int] = None,
    ) -> None:
        self._profiler = ValueProfiler(program, recorder=self, targets=targets)
        self.max_per_site = max_per_site
        self.traces: Dict[Site, List[int]] = {}
        self.dropped = 0

    # Recorder protocol (the inner ValueProfiler writes into us).
    def record(self, site: Site, value: Hashable) -> None:
        trace = self.traces.get(site)
        if trace is None:
            trace = []
            self.traces[site] = trace
        if self.max_per_site is None or len(trace) < self.max_per_site:
            trace.append(value)
        else:
            self.dropped += 1

    # MachineObserver interface — delegate to the site-interning profiler.
    def on_define(self, inst: Instruction, value: int) -> None:
        self._profiler.on_define(inst, value)

    def on_load(self, inst: Instruction, address: int, value: int) -> None:
        self._profiler.on_load(inst, address, value)

    def on_store(self, inst: Instruction, address: int, value: int) -> None:
        self._profiler.on_store(inst, address, value)

    def on_call(self, procedure: Procedure, args: Sequence[int], call_site: int = -1) -> None:
        self._profiler.on_call(procedure, args, call_site)

    def on_return(self, procedure: Procedure, value: int) -> None:
        self._profiler.on_return(procedure, value)

    # Threaded-engine binding — reuse the inner profiler's site logic.
    def bind_define(self, inst: Instruction):
        return self._profiler.bind_define(inst)

    def bind_load(self, inst: Instruction):
        return self._profiler.bind_load(inst)

    def bind_store(self, inst: Instruction):
        return self._profiler.bind_store(inst)

    def bind_call(self, procedure: Procedure, call_pc: int):
        return self._profiler.bind_call(procedure, call_pc)

    def bind_return(self, procedure: Procedure):
        return self._profiler.bind_return(procedure)


class GlobalTraceCollector(MachineObserver):
    """Observer that records (site, value) events in *program order*.

    Per-site traces (:class:`ValueTraceCollector`) lose the interleaving
    between sites, which finite prediction-table simulations need: two
    sites aliasing to one table entry interact only through the global
    order.  Memory is bounded by ``max_events``.
    """

    def __init__(
        self,
        program: Program,
        targets: Iterable[ProfileTarget] = (ProfileTarget.INSTRUCTIONS,),
        max_events: Optional[int] = None,
    ) -> None:
        self._profiler = ValueProfiler(program, recorder=self, targets=targets)
        self.max_events = max_events
        self.events: List[Tuple[Site, int]] = []
        self.dropped = 0

    def record(self, site: Site, value: Hashable) -> None:
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append((site, value))

    def on_define(self, inst: Instruction, value: int) -> None:
        self._profiler.on_define(inst, value)

    def on_load(self, inst: Instruction, address: int, value: int) -> None:
        self._profiler.on_load(inst, address, value)

    def on_store(self, inst: Instruction, address: int, value: int) -> None:
        self._profiler.on_store(inst, address, value)

    def on_call(self, procedure: Procedure, args: Sequence[int], call_site: int = -1) -> None:
        self._profiler.on_call(procedure, args, call_site)

    def on_return(self, procedure: Procedure, value: int) -> None:
        self._profiler.on_return(procedure, value)

    # Threaded-engine binding — reuse the inner profiler's site logic.
    def bind_define(self, inst: Instruction):
        return self._profiler.bind_define(inst)

    def bind_load(self, inst: Instruction):
        return self._profiler.bind_load(inst)

    def bind_store(self, inst: Instruction):
        return self._profiler.bind_store(inst)

    def bind_call(self, procedure: Procedure, call_pc: int):
        return self._profiler.bind_call(procedure, call_pc)

    def bind_return(self, procedure: Procedure):
        return self._profiler.bind_return(procedure)


def _compose_hooks(hooks):
    """Fan one event out to several bound hooks, in child order.

    ``None`` children (observers that declined the event at decode
    time) are dropped; with no takers the composition itself is
    ``None`` so the engine skips the event entirely.
    """
    takers = [hook for hook in hooks if hook is not None]
    if not takers:
        return None
    if len(takers) == 1:
        return takers[0]

    def fan(*args, _hooks=tuple(takers)):
        for hook in _hooks:
            hook(*args)

    return fan


class FanoutObserver(MachineObserver):
    """Broadcasts machine events to several observers in order.

    Lets one simulation run feed e.g. a full profiler and a sampling
    profiler simultaneously so accuracy comparisons share a trace.
    """

    def __init__(self, observers: Sequence[MachineObserver]) -> None:
        self.observers = list(observers)

    def on_define(self, inst: Instruction, value: int) -> None:
        for observer in self.observers:
            observer.on_define(inst, value)

    def on_load(self, inst: Instruction, address: int, value: int) -> None:
        for observer in self.observers:
            observer.on_load(inst, address, value)

    def on_store(self, inst: Instruction, address: int, value: int) -> None:
        for observer in self.observers:
            observer.on_store(inst, address, value)

    def on_call(self, procedure: Procedure, args: Sequence[int], call_site: int = -1) -> None:
        for observer in self.observers:
            observer.on_call(procedure, args, call_site)

    def on_return(self, procedure: Procedure, value: int) -> None:
        for observer in self.observers:
            observer.on_return(procedure, value)

    def flush(self) -> None:
        for observer in self.observers:
            flush = getattr(observer, "flush", None)
            if flush is not None:
                flush()

    # Threaded-engine binding: compose the children's bound hooks so
    # each event is delivered in the same child order as the on_* loops
    # above.  Duck-typed children without bind_* get a generic wrapper.
    def bind_define(self, inst: Instruction):
        hooks = []
        for child in self.observers:
            binder = getattr(child, "bind_define", None)
            if binder is not None:
                hooks.append(binder(inst))
            else:
                hooks.append(
                    lambda value, _cb=child.on_define, _inst=inst: _cb(_inst, value)
                )
        return _compose_hooks(hooks)

    def bind_load(self, inst: Instruction):
        hooks = []
        for child in self.observers:
            binder = getattr(child, "bind_load", None)
            if binder is not None:
                hooks.append(binder(inst))
            else:
                hooks.append(
                    lambda address, value, _cb=child.on_load, _inst=inst: _cb(
                        _inst, address, value
                    )
                )
        return _compose_hooks(hooks)

    def bind_store(self, inst: Instruction):
        hooks = []
        for child in self.observers:
            binder = getattr(child, "bind_store", None)
            if binder is not None:
                hooks.append(binder(inst))
            else:
                hooks.append(
                    lambda address, value, _cb=child.on_store, _inst=inst: _cb(
                        _inst, address, value
                    )
                )
        return _compose_hooks(hooks)

    def bind_call(self, procedure: Procedure, call_pc: int):
        hooks = []
        for child in self.observers:
            binder = getattr(child, "bind_call", None)
            if binder is not None:
                hooks.append(binder(procedure, call_pc))
            else:
                hooks.append(
                    lambda args, _cb=child.on_call, _proc=procedure, _pc=call_pc: _cb(
                        _proc, args, _pc
                    )
                )
        return _compose_hooks(hooks)

    def bind_return(self, procedure: Procedure):
        hooks = []
        for child in self.observers:
            binder = getattr(child, "bind_return", None)
            if binder is not None:
                hooks.append(binder(procedure))
            else:
                hooks.append(
                    lambda value, _cb=child.on_return, _proc=procedure: _cb(_proc, value)
                )
        return _compose_hooks(hooks)
