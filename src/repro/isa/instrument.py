"""ATOM-style instrumentation of the VPA machine.

The paper instruments Alpha binaries with ATOM [35]: a probe after each
instruction passes the destination-register value to an analysis
routine that updates the TNV table (§III.E).  This module is that
layer for VPA: :class:`ValueProfiler` subscribes to machine events and
records values into any object with a ``record(site, value)`` method —
a :class:`~repro.core.profile.ProfileDatabase` for full profiling or a
:class:`~repro.core.sampling.SamplingProfiler` for sampled profiling.

Site objects are interned per static instruction / memory word /
parameter so the per-event cost is one dictionary lookup, mirroring how
ATOM passes a pre-allocated per-instruction handle to its probes.
"""

from __future__ import annotations

import enum
from typing import Dict, Hashable, Iterable, List, Optional, Protocol, Sequence, Set, Tuple

from repro.core.sites import (
    Site,
    instruction_site,
    load_site,
    memory_site,
    parameter_site,
    return_site,
)
from repro.isa.instructions import Instruction
from repro.isa.machine import MachineObserver
from repro.isa.program import Procedure, Program
from repro.obs.metrics import METRICS as _METRICS


class ProfileTarget(enum.Enum):
    """Which event families a profiler subscribes to."""

    INSTRUCTIONS = "instructions"  # destination values of all defining instructions
    LOADS = "loads"  # values fetched by load instructions
    MEMORY = "memory"  # values stored to each memory word
    PARAMETERS = "parameters"  # argument registers at procedure entry
    RETURNS = "returns"  # the return register at procedure exit


ALL_TARGETS = frozenset(ProfileTarget)


class Recorder(Protocol):
    """Anything that accepts (site, value) profile events."""

    def record(self, site: Site, value: Hashable) -> None:  # pragma: no cover
        ...


#: Default per-site buffer size for buffered profiling.  Roughly one
#: sampling burst (the thesis' burst is 1000), so buffered sampled
#: profiling flushes about once per burst.
DEFAULT_FLUSH_THRESHOLD = 1024


class ValueProfiler(MachineObserver):
    """Machine observer that feeds a profile recorder.

    Args:
        program: the program being profiled (site identities come from
            its instruction and procedure tables).
        recorder: destination for (site, value) events.
        targets: event families to profile; fewer targets means less
            interpreter overhead, exactly as with ATOM probes.
        buffered: accumulate (site, value) events in per-site buffers
            and flush them as batches through the recorder's
            ``record_batch`` method (falling back to per-event
            ``record`` when the recorder has none).  Because every
            profiling structure keeps per-site state only, per-site
            buffering produces byte-identical profiles while collapsing
            the per-event Python call chain; the exception is recorders
            whose sampling policy has cross-site state
            (``site_local == False``), which must stay unbuffered.
        flush_threshold: buffered events per site before that site's
            buffer is flushed; :meth:`flush` drains the rest at run end
            (the machine calls it when the program halts).
    """

    def __init__(
        self,
        program: Program,
        recorder: Recorder,
        targets: Iterable[ProfileTarget] = (ProfileTarget.INSTRUCTIONS,),
        parameter_context: bool = False,
        buffered: bool = False,
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
    ) -> None:
        self.program = program
        self.recorder = recorder
        self.buffered = buffered
        self.flush_threshold = flush_threshold
        self._buffers: Dict[Site, List[Hashable]] = {}
        self._record_batch = getattr(recorder, "record_batch", None)
        #: per-event sink the on_* handlers call; bound once so the
        #: unbuffered path costs exactly one call into the recorder.
        self._emit = self._emit_buffered if buffered else recorder.record
        if _METRICS.enabled and not buffered:
            # Observability on: swap in a counting emit.  Decided once
            # at construction, so the disabled-mode per-event path is
            # byte-for-byte the line above.  (The buffered path counts
            # at flush time instead — see _flush_site.)
            base_emit = self._emit

            def counting_emit(site: Site, value: Hashable, _base=base_emit) -> None:
                _METRICS.inc("profiler.events")
                _base(site, value)

            self._emit = counting_emit
        self.targets: Set[ProfileTarget] = set(targets)
        #: when set, parameter sites are keyed by calling site as well
        #: (Young & Smith-style path sensitivity; thesis future work)
        self.parameter_context = parameter_context
        name = program.name
        # Pre-interned sites, indexed by pc.
        self._instruction_sites: List[Optional[Site]] = []
        self._load_sites: List[Optional[Site]] = []
        for inst in program.instructions:
            info = inst.info
            self._instruction_sites.append(
                instruction_site(name, inst.procedure, inst.pc, inst.opcode)
                if info.defines_register
                else None
            )
            self._load_sites.append(
                load_site(name, inst.procedure, inst.pc, inst.opcode) if info.is_load else None
            )
        self._memory_sites: Dict[int, Site] = {}
        self._parameter_sites: Dict[Tuple[str, int, int], Site] = {}
        self._return_sites: Dict[str, Site] = {}
        self._want_instructions = ProfileTarget.INSTRUCTIONS in self.targets
        self._want_loads = ProfileTarget.LOADS in self.targets
        self._want_memory = ProfileTarget.MEMORY in self.targets
        self._want_parameters = ProfileTarget.PARAMETERS in self.targets
        self._want_returns = ProfileTarget.RETURNS in self.targets

    # ------------------------------------------------------------------
    # buffering
    # ------------------------------------------------------------------

    def _emit_buffered(self, site: Site, value: Hashable) -> None:
        buffers = self._buffers
        buffer = buffers.get(site)
        if buffer is None:
            buffer = buffers[site] = []
        buffer.append(value)
        if len(buffer) >= self.flush_threshold:
            self._flush_site(site, buffer)

    def _flush_site(self, site: Site, buffer: List[Hashable]) -> None:
        if _METRICS.enabled:
            _METRICS.inc("profiler.buffer_flushes")
            _METRICS.inc("profiler.events", len(buffer))
        if self._record_batch is not None:
            self._record_batch(site, buffer)
        else:
            record = self.recorder.record
            for value in buffer:
                record(site, value)
        buffer.clear()

    def flush(self) -> None:
        """Drain every per-site buffer into the recorder.

        Called by the machine when the program halts; safe (and a
        no-op) for unbuffered profilers.
        """
        _METRICS.gauge("profiler.buffered_sites", len(self._buffers))
        for site, buffer in self._buffers.items():
            if buffer:
                self._flush_site(site, buffer)

    # ------------------------------------------------------------------
    # MachineObserver interface
    # ------------------------------------------------------------------

    def on_define(self, inst: Instruction, value: int) -> None:
        if not self._want_instructions:
            return
        site = self._instruction_sites[inst.pc]
        if site is not None:
            self._emit(site, value)

    def on_load(self, inst: Instruction, address: int, value: int) -> None:
        if not self._want_loads:
            return
        site = self._load_sites[inst.pc]
        if site is not None:
            self._emit(site, value)

    def on_store(self, inst: Instruction, address: int, value: int) -> None:
        if not self._want_memory:
            return
        site = self._memory_sites.get(address)
        if site is None:
            site = memory_site(self.program.name, address)
            self._memory_sites[address] = site
        self._emit(site, value)

    def on_call(self, procedure: Procedure, args: Sequence[int], call_site: int = -1) -> None:
        if not self._want_parameters:
            return
        context = call_site if self.parameter_context else -1
        for index, value in enumerate(args):
            key = (procedure.name, index, context)
            site = self._parameter_sites.get(key)
            if site is None:
                site = parameter_site(self.program.name, procedure.name, index)
                if context >= 0:
                    site = Site(
                        kind=site.kind,
                        program=site.program,
                        procedure=site.procedure,
                        label=f"{site.label}@{context}",
                    )
                self._parameter_sites[key] = site
            self._emit(site, value)


    def on_return(self, procedure: Procedure, value: int) -> None:
        if not self._want_returns:
            return
        site = self._return_sites.get(procedure.name)
        if site is None:
            site = return_site(self.program.name, procedure.name)
            self._return_sites[procedure.name] = site
        self._emit(site, value)


class ValueTraceCollector(MachineObserver):
    """Observer that collects raw per-site value *sequences*.

    Value predictors (:mod:`repro.predictors`) need the ordered stream
    of values each site produced, not just its histogram.  Traces can
    be capped per site to bound memory.
    """

    def __init__(
        self,
        program: Program,
        targets: Iterable[ProfileTarget] = (ProfileTarget.INSTRUCTIONS,),
        max_per_site: Optional[int] = None,
    ) -> None:
        self._profiler = ValueProfiler(program, recorder=self, targets=targets)
        self.max_per_site = max_per_site
        self.traces: Dict[Site, List[int]] = {}

    # Recorder protocol (the inner ValueProfiler writes into us).
    def record(self, site: Site, value: Hashable) -> None:
        trace = self.traces.get(site)
        if trace is None:
            trace = []
            self.traces[site] = trace
        if self.max_per_site is None or len(trace) < self.max_per_site:
            trace.append(value)

    # MachineObserver interface — delegate to the site-interning profiler.
    def on_define(self, inst: Instruction, value: int) -> None:
        self._profiler.on_define(inst, value)

    def on_load(self, inst: Instruction, address: int, value: int) -> None:
        self._profiler.on_load(inst, address, value)

    def on_store(self, inst: Instruction, address: int, value: int) -> None:
        self._profiler.on_store(inst, address, value)

    def on_call(self, procedure: Procedure, args: Sequence[int], call_site: int = -1) -> None:
        self._profiler.on_call(procedure, args, call_site)

    def on_return(self, procedure: Procedure, value: int) -> None:
        self._profiler.on_return(procedure, value)


class GlobalTraceCollector(MachineObserver):
    """Observer that records (site, value) events in *program order*.

    Per-site traces (:class:`ValueTraceCollector`) lose the interleaving
    between sites, which finite prediction-table simulations need: two
    sites aliasing to one table entry interact only through the global
    order.  Memory is bounded by ``max_events``.
    """

    def __init__(
        self,
        program: Program,
        targets: Iterable[ProfileTarget] = (ProfileTarget.INSTRUCTIONS,),
        max_events: Optional[int] = None,
    ) -> None:
        self._profiler = ValueProfiler(program, recorder=self, targets=targets)
        self.max_events = max_events
        self.events: List[Tuple[Site, int]] = []
        self.dropped = 0

    def record(self, site: Site, value: Hashable) -> None:
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append((site, value))

    def on_define(self, inst: Instruction, value: int) -> None:
        self._profiler.on_define(inst, value)

    def on_load(self, inst: Instruction, address: int, value: int) -> None:
        self._profiler.on_load(inst, address, value)

    def on_store(self, inst: Instruction, address: int, value: int) -> None:
        self._profiler.on_store(inst, address, value)

    def on_call(self, procedure: Procedure, args: Sequence[int], call_site: int = -1) -> None:
        self._profiler.on_call(procedure, args, call_site)

    def on_return(self, procedure: Procedure, value: int) -> None:
        self._profiler.on_return(procedure, value)


class FanoutObserver(MachineObserver):
    """Broadcasts machine events to several observers in order.

    Lets one simulation run feed e.g. a full profiler and a sampling
    profiler simultaneously so accuracy comparisons share a trace.
    """

    def __init__(self, observers: Sequence[MachineObserver]) -> None:
        self.observers = list(observers)

    def on_define(self, inst: Instruction, value: int) -> None:
        for observer in self.observers:
            observer.on_define(inst, value)

    def on_load(self, inst: Instruction, address: int, value: int) -> None:
        for observer in self.observers:
            observer.on_load(inst, address, value)

    def on_store(self, inst: Instruction, address: int, value: int) -> None:
        for observer in self.observers:
            observer.on_store(inst, address, value)

    def on_call(self, procedure: Procedure, args: Sequence[int], call_site: int = -1) -> None:
        for observer in self.observers:
            observer.on_call(procedure, args, call_site)

    def on_return(self, procedure: Procedure, value: int) -> None:
        for observer in self.observers:
            observer.on_return(procedure, value)

    def flush(self) -> None:
        for observer in self.observers:
            flush = getattr(observer, "flush", None)
            if flush is not None:
                flush()
