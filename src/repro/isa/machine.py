"""The VPA interpreter.

Executes an assembled :class:`~repro.isa.program.Program` with 64-bit
two's-complement semantics, word-addressed memory, an input stream and
an output stream.  An optional :class:`MachineObserver` receives the
instruction-level events the value-profiling front ends consume — the
role ATOM's analysis routines play in the paper.

Three engines share these semantics bit for bit:

* ``simple`` — the reference loop below: a hand-ordered ``if``/``elif``
  chain over opcode mnemonics, kept as the executable specification.
* ``threaded`` — :class:`repro.isa.engine.ThreadedEngine`, which
  pre-decodes each static instruction into a per-pc closure (operands,
  immediates, trap messages and observer hooks bound at decode time)
  and dispatches through a handler table.  It is the default; the
  differential suite holds the engines byte-identical.
* ``tier2`` — :class:`repro.isa.tier2.Tier2Engine`, the threaded
  engine plus online quickening: hot basic blocks with stable live-in
  operands become guarded, constant-folded superinstruction closures
  that deopt back to the per-pc handlers on a guard miss.

Select with ``Machine(engine=...)`` — ``"auto"`` (the default) follows
the ``REPRO_ENGINE`` environment variable, engages ``tier2`` when
``REPRO_TIER2`` is truthy, and falls back to ``threaded``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import MachineError
from repro.isa.instructions import (
    REG_ARGS,
    REG_LINK,
    REG_RETURN,
    REG_SP,
    NUM_REGISTERS,
    Instruction,
    cycle_cost,
    to_signed64,
)
from repro.isa.program import Procedure, Program
from repro.obs.metrics import METRICS as _METRICS
from repro.obs.timeseries import TIMESERIES as _TIMESERIES

DEFAULT_MEMORY_WORDS = 1 << 20
DEFAULT_BUDGET = 200_000_000

_ENGINES = ("simple", "threaded", "tier2")

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def tier2_opted_in() -> bool:
    """Whether ``REPRO_TIER2`` asks ``auto`` to engage the tier-2 engine."""
    return os.environ.get("REPRO_TIER2", "").strip().lower() in _TRUTHY


def resolve_engine(engine: Optional[str]) -> str:
    """Normalize an engine selector to a member of ``_ENGINES``.

    Resolution for ``"auto"`` (or ``None``), in order:

    1. ``REPRO_ENGINE`` names an engine → that engine.
    2. ``REPRO_TIER2`` is truthy → ``"tier2"``.
    3. otherwise → ``"threaded"``.

    Unknown names — from the argument or from ``REPRO_ENGINE`` — raise
    :class:`~repro.errors.MachineError` immediately, so a typo fails at
    selection time rather than deep inside a run.
    """
    if engine is None:
        engine = "auto"
    engine = engine.strip().lower()
    if engine == "auto":
        engine = os.environ.get("REPRO_ENGINE", "").strip().lower()
        if not engine or engine == "auto":
            engine = "tier2" if tier2_opted_in() else "threaded"
    if engine not in _ENGINES:
        raise MachineError(
            f"unknown engine {engine!r} "
            f"(choose from 'simple', 'threaded', 'tier2', 'auto')"
        )
    return engine


class MachineObserver:
    """Instrumentation callbacks (all no-ops by default).

    Subclasses override only what they need; the machine checks a
    single ``observer is not None`` per event class.

    The ``bind_*`` methods are the decode-time counterpart used by the
    threaded engine: for each static instruction (or call/return edge)
    they return either a per-event callable with the site decision
    already made, or ``None`` when the observer does not care — in
    which case the engine emits nothing for that instruction at all.
    The defaults wrap the corresponding ``on_*`` method, so observers
    that only override ``on_*`` behave identically under both engines;
    observers may override ``bind_*`` for a faster specialized path
    (see :class:`~repro.isa.instrument.ValueProfiler`).
    """

    def on_define(self, inst: Instruction, value: int) -> None:
        """A register-defining instruction produced ``value``.

        Fires for every instruction whose opcode has
        ``defines_register`` — including loads and ``in``.
        """

    def on_load(self, inst: Instruction, address: int, value: int) -> None:
        """A load at ``inst`` fetched ``value`` from ``address``."""

    def on_store(self, inst: Instruction, address: int, value: int) -> None:
        """A store at ``inst`` wrote ``value`` to ``address``."""

    def on_call(self, procedure: Procedure, args: Sequence[int], call_site: int = -1) -> None:
        """Control entered ``procedure`` via ``jal``/``jalr``.

        ``call_site`` is the pc of the calling instruction (-1 when
        unknown), enabling calling-context-sensitive profiling.
        """

    def on_return(self, procedure: Procedure, value: int) -> None:
        """``procedure`` returned (``jr`` through the link register);
        ``value`` is the return register ``r1`` at that point."""

    def flush(self) -> None:
        """Drain any buffered events.  The machine calls this once when
        the program halts — and before raising on any error path — so
        buffering observers (e.g. a buffered
        :class:`~repro.isa.instrument.ValueProfiler`) never lose the
        tail of the event stream."""

    # -- decode-time binding (threaded engine) -------------------------

    def bind_define(self, inst: Instruction):
        """Per-event define hook for ``inst``, or ``None`` if unwanted."""
        if type(self).on_define is MachineObserver.on_define:
            return None

        def hook(value, _cb=self.on_define, _inst=inst):
            _cb(_inst, value)

        return hook

    def bind_load(self, inst: Instruction):
        """Per-event load hook ``f(address, value)``, or ``None``."""
        if type(self).on_load is MachineObserver.on_load:
            return None

        def hook(address, value, _cb=self.on_load, _inst=inst):
            _cb(_inst, address, value)

        return hook

    def bind_store(self, inst: Instruction):
        """Per-event store hook ``f(address, value)``, or ``None``."""
        if type(self).on_store is MachineObserver.on_store:
            return None

        def hook(address, value, _cb=self.on_store, _inst=inst):
            _cb(_inst, address, value)

        return hook

    def bind_call(self, procedure: Procedure, call_pc: int):
        """Per-event call hook ``f(args)`` for this call edge, or ``None``."""
        if type(self).on_call is MachineObserver.on_call:
            return None

        def hook(args, _cb=self.on_call, _proc=procedure, _pc=call_pc):
            _cb(_proc, args, _pc)

        return hook

    def bind_return(self, procedure: Procedure):
        """Per-event return hook ``f(value)``, or ``None``."""
        if type(self).on_return is MachineObserver.on_return:
            return None

        def hook(value, _cb=self.on_return, _proc=procedure):
            _cb(_proc, value)

        return hook


@dataclass
class RunResult:
    """Outcome of one complete execution."""

    program: str
    instructions_executed: int
    output: List[int]
    halted: bool
    dynamic_loads: int = 0
    dynamic_stores: int = 0
    dynamic_calls: int = 0
    dynamic_defines: int = 0
    cycles: int = 0
    procedure_calls: dict = field(default_factory=dict)


class Machine:
    """One VPA core plus its memory.

    Args:
        program: the assembled program to run.
        memory_words: data-memory size; the data image is loaded at
            address 0 and the stack starts at the top growing down.
        observer: optional instrumentation sink.
        engine: ``"threaded"`` (pre-decoded dispatch, the default via
            ``"auto"``), ``"simple"`` (the reference loop), or
            ``"auto"`` (honours ``REPRO_ENGINE``).
    """

    def __init__(
        self,
        program: Program,
        memory_words: int = DEFAULT_MEMORY_WORDS,
        observer: Optional[MachineObserver] = None,
        count_pcs: bool = False,
        engine: str = "auto",
        tier2_config=None,
    ) -> None:
        if len(program.data_image) > memory_words:
            raise MachineError(
                f"{program.name}: data image ({len(program.data_image)} words) "
                f"exceeds memory ({memory_words} words)"
            )
        self.program = program
        self.memory_words = memory_words
        self.observer = observer
        self.registers: List[int] = [0] * NUM_REGISTERS
        self.memory: List[int] = list(program.data_image) + [0] * (memory_words - len(program.data_image))
        self.pc = program.entry
        self.halted = False
        self.instructions_executed = 0
        self.output: List[int] = []
        self._input: List[int] = []
        self._input_pos = 0
        self._procedures_by_entry = {
            procedure.start: procedure for procedure in program.procedures.values()
        }
        self._cost_by_pc: List[int] = [cycle_cost(inst.opcode) for inst in program.instructions]
        #: per-pc execution counts (basic-block profiling); None unless
        #: count_pcs was requested — counting costs one list update per
        #: instruction, the classic block-profiling overhead
        self.pc_counts: Optional[List[int]] = (
            [0] * len(program.instructions) if count_pcs else None
        )
        self.cycles = 0
        self._procedure_by_pc: List[Optional[Procedure]] = [None] * len(program.instructions)
        for procedure in program.procedures.values():
            for pc in range(procedure.start, procedure.end):
                self._procedure_by_pc[pc] = procedure
        # counters for RunResult
        self.dynamic_loads = 0
        self.dynamic_stores = 0
        self.dynamic_calls = 0
        self.dynamic_defines = 0
        self.procedure_calls: dict = {}
        self.registers[REG_SP] = memory_words
        self.engine = resolve_engine(engine)
        self._threaded = None  # lazily built ThreadedEngine or Tier2Engine
        self._tier2_config = tier2_config

    # ------------------------------------------------------------------

    def set_input(self, values: Iterable[int]) -> None:
        """Install the input stream consumed by ``in`` instructions."""
        self._input = [to_signed64(v) for v in values]
        self._input_pos = 0

    def read_register(self, index: int) -> int:
        return self.registers[index]

    def read_memory(self, address: int) -> int:
        self._check_address(address)
        return self.memory[address]

    def write_memory(self, address: int, value: int) -> None:
        self._check_address(address)
        self.memory[address] = to_signed64(value)

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.memory_words:
            raise MachineError(
                f"{self.program.name}: memory access out of range: {address} "
                f"(pc={self.pc}, memory={self.memory_words} words)"
            )

    # ------------------------------------------------------------------

    def run(self, max_instructions: int = DEFAULT_BUDGET) -> RunResult:
        """Execute until ``halt`` or the instruction budget is exhausted."""
        if self.engine == "threaded":
            threaded = self._threaded
            if threaded is None:
                from repro.isa.engine import ThreadedEngine

                threaded = self._threaded = ThreadedEngine(self)
            return threaded.run(max_instructions)
        if self.engine == "tier2":
            tier2 = self._threaded
            if tier2 is None:
                from repro.isa.tier2 import Tier2Engine

                tier2 = self._threaded = Tier2Engine(self, config=self._tier2_config)
            return tier2.run(max_instructions)
        return self._run_simple(max_instructions)

    def tier2_stats(self) -> Optional[dict]:
        """Quicken/deopt statistics, or ``None`` off the tier-2 engine."""
        engine = self._threaded
        if self.engine != "tier2" or engine is None:
            return None
        return engine.stats()

    def tier2_block_summaries(self) -> Optional[list]:
        """Per-block lifecycle summaries (``Tier2Engine.block_summaries``),
        or ``None`` off the tier-2 engine.  Pairs with the jitlog journal:
        the journal records the transitions, this records where each
        block ended up."""
        engine = self._threaded
        if self.engine != "tier2" or engine is None:
            return None
        return engine.block_summaries()

    def tier2_preheat(self, database) -> int:
        """Seed tier-2 thresholds from a profile; see ``Tier2Engine.preheat``."""
        if self.engine != "tier2":
            return 0
        tier2 = self._threaded
        if tier2 is None:
            from repro.isa.tier2 import Tier2Engine

            tier2 = self._threaded = Tier2Engine(self, config=self._tier2_config)
        return tier2.preheat(database)

    def _run_simple(self, max_instructions: int) -> RunResult:
        """The reference interpreter loop (``engine="simple"``)."""
        observer = self.observer
        registers = self.registers
        memory = self.memory
        instructions = self.program.instructions
        code_size = len(instructions)
        memory_words = self.memory_words
        procedures_by_entry = self._procedures_by_entry
        cost_by_pc = self._cost_by_pc
        cycles = self.cycles
        pc_counts = self.pc_counts
        pc = self.pc
        executed = self.instructions_executed
        executed_at_entry = executed
        started = time.perf_counter() if _METRICS.enabled else 0.0

        while not self.halted:
            if executed >= max_instructions:
                self.pc = pc
                self.instructions_executed = executed
                self._flush_observer()
                raise MachineError(
                    f"{self.program.name}: instruction budget exceeded "
                    f"({max_instructions}); infinite loop?"
                )
            if not 0 <= pc < code_size:
                self.pc = pc
                self.instructions_executed = executed
                self._flush_observer()
                raise MachineError(f"{self.program.name}: pc {pc} outside code segment")
            inst = instructions[pc]
            op = inst.opcode
            executed += 1
            cycles += cost_by_pc[pc]
            if pc_counts is not None:
                pc_counts[pc] += 1
            next_pc = pc + 1
            value: Optional[int] = None

            if op == "ld":
                address = registers[inst.ra] + inst.imm
                if not 0 <= address < memory_words:
                    self.pc = pc
                    self.instructions_executed = executed
                    self._flush_observer()
                    raise MachineError(
                        f"{self.program.name}: load out of range at pc {pc}: address {address}"
                    )
                value = memory[address]
                registers[inst.rd] = value
                self.dynamic_loads += 1
                if observer is not None:
                    observer.on_load(inst, address, value)
            elif op == "st":
                address = registers[inst.ra] + inst.imm
                if not 0 <= address < memory_words:
                    self.pc = pc
                    self.instructions_executed = executed
                    self._flush_observer()
                    raise MachineError(
                        f"{self.program.name}: store out of range at pc {pc}: address {address}"
                    )
                stored = registers[inst.rd]
                memory[address] = stored
                self.dynamic_stores += 1
                if observer is not None:
                    observer.on_store(inst, address, stored)
            elif op == "addi":
                value = to_signed64(registers[inst.ra] + inst.imm)
                registers[inst.rd] = value
            elif op == "add":
                value = to_signed64(registers[inst.ra] + registers[inst.rb])
                registers[inst.rd] = value
            elif op == "beq":
                if registers[inst.ra] == registers[inst.rb]:
                    next_pc = inst.target
            elif op == "bne":
                if registers[inst.ra] != registers[inst.rb]:
                    next_pc = inst.target
            elif op == "blt":
                if registers[inst.ra] < registers[inst.rb]:
                    next_pc = inst.target
            elif op == "bge":
                if registers[inst.ra] >= registers[inst.rb]:
                    next_pc = inst.target
            elif op == "ble":
                if registers[inst.ra] <= registers[inst.rb]:
                    next_pc = inst.target
            elif op == "bgt":
                if registers[inst.ra] > registers[inst.rb]:
                    next_pc = inst.target
            elif op == "sub":
                value = to_signed64(registers[inst.ra] - registers[inst.rb])
                registers[inst.rd] = value
            elif op == "subi":
                value = to_signed64(registers[inst.ra] - inst.imm)
                registers[inst.rd] = value
            elif op == "li":
                value = to_signed64(inst.imm)
                registers[inst.rd] = value
            elif op == "la":
                value = inst.imm
                registers[inst.rd] = value
            elif op == "mov":
                value = registers[inst.ra]
                registers[inst.rd] = value
            elif op == "mul":
                value = to_signed64(registers[inst.ra] * registers[inst.rb])
                registers[inst.rd] = value
            elif op == "muli":
                value = to_signed64(registers[inst.ra] * inst.imm)
                registers[inst.rd] = value
            elif op in ("div", "divi", "rem", "remi"):
                numerator = registers[inst.ra]
                denominator = inst.imm if op.endswith("i") else registers[inst.rb]
                if denominator == 0:
                    self.pc = pc
                    self.instructions_executed = executed
                    self._flush_observer()
                    raise MachineError(
                        f"{self.program.name}: division by zero at pc {pc} "
                        f"({inst.render()}, line {inst.line})"
                    )
                quotient = abs(numerator) // abs(denominator)
                if (numerator < 0) != (denominator < 0):
                    quotient = -quotient
                if op.startswith("div"):
                    value = to_signed64(quotient)
                else:
                    value = to_signed64(numerator - quotient * denominator)
                registers[inst.rd] = value
            elif op == "and":
                value = to_signed64(registers[inst.ra] & registers[inst.rb])
                registers[inst.rd] = value
            elif op == "andi":
                value = to_signed64(registers[inst.ra] & inst.imm)
                registers[inst.rd] = value
            elif op == "or":
                value = to_signed64(registers[inst.ra] | registers[inst.rb])
                registers[inst.rd] = value
            elif op == "ori":
                value = to_signed64(registers[inst.ra] | inst.imm)
                registers[inst.rd] = value
            elif op == "xor":
                value = to_signed64(registers[inst.ra] ^ registers[inst.rb])
                registers[inst.rd] = value
            elif op == "xori":
                value = to_signed64(registers[inst.ra] ^ inst.imm)
                registers[inst.rd] = value
            elif op in ("sll", "slli"):
                shift = (inst.imm if op.endswith("i") else registers[inst.rb]) & 63
                value = to_signed64(registers[inst.ra] << shift)
                registers[inst.rd] = value
            elif op in ("srl", "srli"):
                shift = (inst.imm if op.endswith("i") else registers[inst.rb]) & 63
                value = to_signed64((registers[inst.ra] & ((1 << 64) - 1)) >> shift)
                registers[inst.rd] = value
            elif op in ("sra", "srai"):
                shift = (inst.imm if op.endswith("i") else registers[inst.rb]) & 63
                value = to_signed64(registers[inst.ra] >> shift)
                registers[inst.rd] = value
            elif op == "slt":
                value = 1 if registers[inst.ra] < registers[inst.rb] else 0
                registers[inst.rd] = value
            elif op == "slti":
                value = 1 if registers[inst.ra] < inst.imm else 0
                registers[inst.rd] = value
            elif op == "seq":
                value = 1 if registers[inst.ra] == registers[inst.rb] else 0
                registers[inst.rd] = value
            elif op == "seqi":
                value = 1 if registers[inst.ra] == inst.imm else 0
                registers[inst.rd] = value
            elif op == "sne":
                value = 1 if registers[inst.ra] != registers[inst.rb] else 0
                registers[inst.rd] = value
            elif op == "snei":
                value = 1 if registers[inst.ra] != inst.imm else 0
                registers[inst.rd] = value
            elif op == "j":
                next_pc = inst.target
            elif op == "jal":
                registers[REG_LINK] = pc + 1
                next_pc = inst.target
                self._enter_procedure(next_pc, pc, registers, observer)
            elif op == "jalr":
                registers[inst.rd] = pc + 1
                next_pc = registers[inst.ra]
                self._enter_procedure(next_pc, pc, registers, observer)
            elif op == "jr":
                next_pc = registers[inst.rd]
                if inst.rd == REG_LINK and observer is not None:
                    returning = self._procedure_by_pc[pc]
                    if returning is not None:
                        observer.on_return(returning, registers[REG_RETURN])
            elif op == "in":
                if self._input_pos < len(self._input):
                    value = self._input[self._input_pos]
                    self._input_pos += 1
                else:
                    value = 0
                registers[inst.rd] = value
            elif op == "out":
                self.output.append(registers[inst.rd])
            elif op == "nop":
                pass
            elif op == "halt":
                self.halted = True
            else:  # pragma: no cover - assembler rejects unknown opcodes
                raise MachineError(f"{self.program.name}: unimplemented opcode {op!r}")

            if value is not None:
                registers[0] = 0  # r0 stays hardwired to zero
                self.dynamic_defines += 1
                if observer is not None:
                    observer.on_define(inst, registers[inst.rd] if inst.rd != 0 else 0)
            pc = next_pc

        self.pc = pc
        self.instructions_executed = executed
        self.cycles = cycles
        if _METRICS.enabled:
            # Run-boundary instrumentation: the interpreter loop above
            # stays untouched, so disabled-mode simulation speed is
            # exactly the uninstrumented speed.
            _METRICS.inc("machine.runs")
            _METRICS.inc("machine.engine.simple_runs")
            _METRICS.inc("machine.instructions", executed - executed_at_entry)
            _METRICS.inc("machine.loads", self.dynamic_loads)
            _METRICS.inc("machine.stores", self.dynamic_stores)
            _METRICS.inc("machine.calls", self.dynamic_calls)
            _METRICS.inc("machine.defines", self.dynamic_defines)
            _METRICS.observe("machine.run", time.perf_counter() - started)
        _TIMESERIES.advance(executed - executed_at_entry)
        self._flush_observer()
        return self._make_result(executed, cycles)

    def _flush_observer(self) -> None:
        """Drain the observer's buffers (halt *and* error paths)."""
        observer = self.observer
        if observer is not None:
            flush = getattr(observer, "flush", None)
            if flush is not None:
                flush()

    def _make_result(self, executed: int, cycles: int) -> RunResult:
        return RunResult(
            program=self.program.name,
            instructions_executed=executed,
            output=list(self.output),
            halted=self.halted,
            dynamic_loads=self.dynamic_loads,
            dynamic_stores=self.dynamic_stores,
            dynamic_calls=self.dynamic_calls,
            dynamic_defines=self.dynamic_defines,
            cycles=cycles,
            procedure_calls=dict(self.procedure_calls),
        )

    def _enter_procedure(
        self,
        entry_pc: int,
        call_pc: int,
        registers: List[int],
        observer: Optional[MachineObserver],
    ) -> None:
        procedure = self._procedures_by_entry.get(entry_pc)
        if procedure is None:
            return
        self.dynamic_calls += 1
        self.procedure_calls[procedure.name] = self.procedure_calls.get(procedure.name, 0) + 1
        if observer is not None:
            args = tuple(registers[REG_ARGS[i]] for i in range(procedure.nargs))
            observer.on_call(procedure, args, call_pc)


def block_counts(machine: Machine) -> Dict[int, int]:
    """Basic-block execution counts from a ``count_pcs`` machine.

    Keyed by block-leader pc; the count is how many times execution
    entered the block (the leader's pc count).
    """
    if machine.pc_counts is None:
        raise MachineError("block_counts requires Machine(count_pcs=True)")
    return {
        block.start: machine.pc_counts[block.start]
        for block in machine.program.basic_blocks()
    }


def run_program(
    program: Program,
    input_values: Iterable[int] = (),
    observer: Optional[MachineObserver] = None,
    memory_words: int = DEFAULT_MEMORY_WORDS,
    max_instructions: int = DEFAULT_BUDGET,
) -> RunResult:
    """Convenience wrapper: build a machine, feed input, run to halt."""
    machine = Machine(program, memory_words=memory_words, observer=observer)
    machine.set_input(input_values)
    return machine.run(max_instructions=max_instructions)
