"""Pre-decoded direct-threaded execution engine for the VPA machine.

The reference interpreter (:meth:`repro.isa.machine.Machine.run`)
re-discovers everything about an instruction every time it executes it:
an ``if``/``elif`` walk over the mnemonic, half a dozen ``inst.``
attribute loads, observer dispatch through ``on_*`` methods that
re-check targets and re-intern sites per event.  All of that is
invariant across the run — it depends only on the *static* instruction
— which makes it exactly the kind of invariance-driven specialization
the profiled programs themselves are subjected to.

This engine partially evaluates the interpreter against the program at
decode time: each static instruction becomes one closure with its
operand register indices, immediates, jump targets, prebuilt trap
messages and observer hooks bound as default arguments.  Execution is
then direct-threaded code::

    for executed in range(executed, max_instructions):
        pc = handlers[pc]()

with no mnemonic comparison, no ``inst.`` loads and no dead observer
calls on the hot path (hooks an observer declines at decode time are
``None`` and skipped entirely).  The ``range`` iterator carries both
the instruction counter and the budget check in C; cycle accounting is
a flat cycle per iteration plus surcharges the multi-cycle handlers
(loads, stores, mul/div) bank on the side, so neither bookkeeping line
appears in the loop.

Semantics are bit-identical to the reference loop — same results, same
profiles, same trap messages, same counter values on every exit path —
and enforced by the differential test suite
(``tests/isa/test_engine_differential.py``).
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from repro.errors import MachineError
from repro.isa.instructions import REG_ARGS, REG_LINK, REG_RETURN
from repro.obs.metrics import METRICS as _METRICS
from repro.obs.timeseries import TIMESERIES as _TIMESERIES

#: two's-complement wrap constants, bound into the hot closures so the
#: signed wrap is three arithmetic ops instead of a function call.
#: ``((x + _BIAS) & _MASK) - _BIAS`` is exactly ``to_signed64(x)``.
_MASK = (1 << 64) - 1
_BIAS = 1 << 63


class _Halt(Exception):
    """Internal: the ``halt`` instruction fired."""


class _Trap(Exception):
    """Internal: a runtime trap (bad address, division by zero)."""

    def __init__(self, message: str) -> None:
        self.message = message


class _BadPC(Exception):
    """Internal: a computed jump left the code segment."""

    def __init__(self, pc: int) -> None:
        self.pc = pc


_HALT = _Halt()

#: opcodes whose handlers bank their extra cycles (cost − 1) inline.
_SURCHARGED = frozenset({"ld", "st", "mul", "muli", "div", "rem", "divi", "remi"})


class ThreadedEngine:
    """Direct-threaded executor bound to one :class:`Machine`.

    Decoding happens lazily on the first :meth:`run` and is redone when
    the machine's observer changes (hooks are bound into the closures).
    The machine's registers, memory, output list and procedure-call
    dict are captured by identity, so all externally visible state
    stays on the machine object exactly as with the reference engine.

    **Tier hooks.**  This class is also the substrate the tier-2
    specializer (:class:`repro.isa.tier2.Tier2Engine`) quickens on top
    of.  The contract a subclass may rely on:

    * :meth:`_decode` is the quicken point — after it returns,
      ``self._handlers[pc]`` is the complete per-pc closure table, and
      each closure returns the next pc.  A tier may call any handler
      directly (the deopt path) or replace its own dispatch table
      entries with multi-instruction superinstructions.
    * ``_dyn``, ``_extra_cycles`` and ``_input_state`` are the shared
      accounting cells the handlers mutate; generated code that
      bypasses handlers must keep them exact, and :meth:`_sync` writes
      them (plus pc/instruction counts) back to the machine on every
      exit path.
    * ``_Halt``/``_Trap``/``_BadPC`` are the control-flow exceptions a
      driver must translate into machine state; trap messages are part
      of the bit-identity contract.
    """

    def __init__(self, machine) -> None:
        self._machine = machine
        self._handlers: Optional[List[Callable[[], int]]] = None
        #: observer the current decode was specialized against.
        self._bound_observer = self
        #: [loads, stores, calls, defines] — mutated by handlers,
        #: synced to the machine's attributes on every exit path.
        self._dyn: List[int] = [0, 0, 0, 0]
        #: [input_values, input_pos] — shared with the ``in`` handler.
        self._input_state: list = [(), 0]
        #: [cycles beyond one per instruction] — loads/stores/mul/div
        #: handlers add their surcharge here; the driver then charges a
        #: flat cycle per instruction, so the per-iteration
        #: ``cycles += cost[pc]`` table walk disappears from the loop.
        self._extra_cycles: List[int] = [0]

    # ------------------------------------------------------------------
    # driver loop
    # ------------------------------------------------------------------

    def run(self, max_instructions: int):
        """Execute until ``halt``/trap/budget; mirrors ``Machine.run``.

        The instruction counter rides the ``for``-loop's ``range``
        iterator (incremented in C), budget exhaustion is simply range
        exhaustion, and cycle accounting is one flat cycle per
        iteration plus the surcharges the multi-cycle handlers banked
        in ``_extra_cycles`` — so the hot loop is a single statement:
        ``pc = handlers[pc]()``.

        Because the loop variable is assigned *before* the handler
        runs, each exceptional exit adjusts ``executed`` to land on the
        same value the reference loop reports: traps, halts and
        computed bad jumps count their instruction (+1); falling off
        the code segment does not (the handler never ran).
        """
        machine = self._machine
        observer = machine.observer
        if self._handlers is None or observer is not self._bound_observer:
            self._decode()
        dyn = self._dyn
        dyn[0] = machine.dynamic_loads
        dyn[1] = machine.dynamic_stores
        dyn[2] = machine.dynamic_calls
        dyn[3] = machine.dynamic_defines
        input_state = self._input_state
        input_state[0] = machine._input
        input_state[1] = machine._input_pos
        extra_cycles = self._extra_cycles
        extra_cycles[0] = 0

        handlers = self._handlers
        pc_counts = machine.pc_counts
        code_size = len(handlers)
        name = machine.program.name
        pc = machine.pc
        executed = machine.instructions_executed
        executed_at_entry = executed
        started = time.perf_counter() if _METRICS.enabled else 0.0

        try:
            if not machine.halted:
                if pc_counts is None:
                    for executed in range(executed, max_instructions):
                        pc = handlers[pc]()
                else:
                    for executed in range(executed, max_instructions):
                        pc_counts[pc] += 1
                        pc = handlers[pc]()
                # Range exhausted: the budget ran out.  The reference
                # loop notices at the top of the next iteration, with
                # the counter unchanged.
                if executed < max_instructions:
                    executed = max_instructions
                self._sync(pc, executed)
                machine._flush_observer()
                raise MachineError(
                    f"{name}: instruction budget exceeded "
                    f"({max_instructions}); infinite loop?"
                )
        except _Halt:
            executed += 1
            pc += 1
            machine.halted = True
        except _Trap as trap:
            # The trapping instruction counts as executed (the reference
            # loop increments before the opcode body) but, as there, the
            # cycle count of the failed run is not written back.
            self._sync(pc, executed + 1)
            machine._flush_observer()
            raise MachineError(trap.message) from None
        except _BadPC as bad:
            # A computed jump left the code segment.  The reference loop
            # notices at the *top* of the next iteration, after the
            # budget check — replicate that ordering exactly.
            executed += 1
            pc = bad.pc
            self._sync(pc, executed)
            machine._flush_observer()
            if executed >= max_instructions:
                raise MachineError(
                    f"{name}: instruction budget exceeded "
                    f"({max_instructions}); infinite loop?"
                ) from None
            raise MachineError(f"{name}: pc {pc} outside code segment") from None
        except IndexError:
            # ``handlers[pc]`` raised: execution fell off the end of the
            # code segment (sequential flow only ever reaches
            # pc == code_size; every jump is bounds-checked in its
            # handler).  The instruction never ran, so the counter is
            # not advanced — exactly the reference, which raises before
            # incrementing.
            if 0 <= pc < code_size:  # pragma: no cover - genuine handler bug
                raise
            self._sync(pc, executed)
            machine._flush_observer()
            raise MachineError(f"{name}: pc {pc} outside code segment") from None

        self._sync(pc, executed)
        cycles = machine.cycles + (executed - executed_at_entry) + extra_cycles[0]
        machine.cycles = cycles
        if _METRICS.enabled:
            _METRICS.inc("machine.runs")
            _METRICS.inc("machine.engine.threaded_runs")
            _METRICS.inc("machine.instructions", executed - executed_at_entry)
            _METRICS.inc("machine.loads", machine.dynamic_loads)
            _METRICS.inc("machine.stores", machine.dynamic_stores)
            _METRICS.inc("machine.calls", machine.dynamic_calls)
            _METRICS.inc("machine.defines", machine.dynamic_defines)
            _METRICS.observe("machine.run", time.perf_counter() - started)
        _TIMESERIES.advance(executed - executed_at_entry)
        machine._flush_observer()
        return machine._make_result(executed, cycles)

    def _sync(self, pc: int, executed: int) -> None:
        machine = self._machine
        machine.pc = pc
        machine.instructions_executed = executed
        dyn = self._dyn
        machine.dynamic_loads = dyn[0]
        machine.dynamic_stores = dyn[1]
        machine.dynamic_calls = dyn[2]
        machine.dynamic_defines = dyn[3]
        machine._input_pos = self._input_state[1]

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------

    def _decode(self) -> None:
        machine = self._machine
        observer = machine.observer
        self._handlers = [
            self._decode_one(inst) for inst in machine.program.instructions
        ]
        self._bound_observer = observer

    def _hooks_for(self, inst):
        """(define, load, store) hooks for one instruction, or Nones.

        Observers deriving from :class:`MachineObserver` specialize via
        their ``bind_*`` methods; anything else (duck-typed observers)
        gets a generic wrapper around its ``on_*`` methods so the event
        stream is identical either way.
        """
        observer = self._machine.observer
        if observer is None:
            return None, None, None
        bind_define = getattr(observer, "bind_define", None)
        if bind_define is not None:
            return (
                bind_define(inst),
                observer.bind_load(inst),
                observer.bind_store(inst),
            )

        def define_hook(value, _cb=observer.on_define, _inst=inst):
            _cb(_inst, value)

        def load_hook(address, value, _cb=observer.on_load, _inst=inst):
            _cb(_inst, address, value)

        def store_hook(address, value, _cb=observer.on_store, _inst=inst):
            _cb(_inst, address, value)

        return define_hook, load_hook, store_hook

    def _bind_call_hook(self, procedure, call_pc):
        observer = self._machine.observer
        if observer is None:
            return None
        bind_call = getattr(observer, "bind_call", None)
        if bind_call is not None:
            return bind_call(procedure, call_pc)

        def call_hook(args, _cb=observer.on_call, _proc=procedure, _pc=call_pc):
            _cb(_proc, args, _pc)

        return call_hook

    def _bind_return_hook(self, procedure):
        observer = self._machine.observer
        if observer is None:
            return None
        bind_return = getattr(observer, "bind_return", None)
        if bind_return is not None:
            return bind_return(procedure)

        def return_hook(value, _cb=observer.on_return, _proc=procedure):
            _cb(_proc, value)

        return return_hook

    def _decode_one(self, inst) -> Callable[[], int]:
        """Specialize one static instruction into its handler closure.

        Handlers return the next pc; control-flow anomalies travel as
        the internal exceptions above.  Every closure binds its operands
        as default arguments — the CPython idiom for turning globals and
        attribute loads into ``LOAD_FAST``.
        """
        machine = self._machine
        op = inst.opcode
        R = machine.registers
        M = machine.memory
        dyn = self._dyn
        rd, ra, rb = inst.rd, inst.ra, inst.rb
        imm = inst.imm
        pc = inst.pc
        npc = pc + 1
        code_size = len(machine.program.instructions)
        memory_words = machine.memory_words
        name = machine.program.name
        dh, lh, sh = self._hooks_for(inst)
        #: cycles this instruction costs beyond the flat one the driver
        #: charges per iteration; non-zero only for loads, stores and
        #: the mul/div family, which bank it in ``_extra_cycles``.
        cyc = self._extra_cycles
        extra = machine._cost_by_pc[pc] - 1

        # -- defining instructions ------------------------------------
        # Built assuming rd != 0; the r0 wrapper below restores the
        # hardwired zero and reports 0 to the define hook, exactly as
        # the reference loop does after each defining opcode.
        handler: Optional[Callable[[], int]] = None
        wants_define_wrap = False

        if op == "ld":
            wants_define_wrap = True
            define_hook = None if rd == 0 else dh

            def handler(R=R, M=M, rd=rd, ra=ra, imm=imm, npc=npc, dyn=dyn,
                        mw=memory_words, lh=lh, dh=define_hook, name=name, pc=pc,
                        cyc=cyc, ex=extra):
                address = R[ra] + imm
                if 0 <= address < mw:
                    cyc[0] += ex
                    value = M[address]
                    R[rd] = value
                    dyn[0] += 1
                    if lh is not None:
                        lh(address, value)
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc
                raise _Trap(f"{name}: load out of range at pc {pc}: address {address}")

        elif op == "st":

            def handler(R=R, M=M, rd=rd, ra=ra, imm=imm, npc=npc, dyn=dyn,
                        mw=memory_words, sh=sh, name=name, pc=pc,
                        cyc=cyc, ex=extra):
                address = R[ra] + imm
                if 0 <= address < mw:
                    cyc[0] += ex
                    value = R[rd]
                    M[address] = value
                    dyn[1] += 1
                    if sh is not None:
                        sh(address, value)
                    return npc
                raise _Trap(f"{name}: store out of range at pc {pc}: address {address}")

        elif op in ("addi", "subi", "muli", "andi", "ori", "xori"):
            wants_define_wrap = True
            define_hook = None if rd == 0 else dh
            if op == "addi":
                def handler(R=R, rd=rd, ra=ra, imm=imm, npc=npc, dyn=dyn,
                            dh=define_hook, B=_BIAS, Mk=_MASK):
                    value = ((R[ra] + imm + B) & Mk) - B
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc
            elif op == "subi":
                def handler(R=R, rd=rd, ra=ra, imm=imm, npc=npc, dyn=dyn,
                            dh=define_hook, B=_BIAS, Mk=_MASK):
                    value = ((R[ra] - imm + B) & Mk) - B
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc
            elif op == "muli":
                def handler(R=R, rd=rd, ra=ra, imm=imm, npc=npc, dyn=dyn,
                            dh=define_hook, B=_BIAS, Mk=_MASK, cyc=cyc, ex=extra):
                    cyc[0] += ex
                    value = ((R[ra] * imm + B) & Mk) - B
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc
            elif op == "andi":
                def handler(R=R, rd=rd, ra=ra, imm=imm, npc=npc, dyn=dyn,
                            dh=define_hook, B=_BIAS, Mk=_MASK):
                    value = ((R[ra] & imm) + B & Mk) - B
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc
            elif op == "ori":
                def handler(R=R, rd=rd, ra=ra, imm=imm, npc=npc, dyn=dyn,
                            dh=define_hook, B=_BIAS, Mk=_MASK):
                    value = ((R[ra] | imm) + B & Mk) - B
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc
            else:
                def handler(R=R, rd=rd, ra=ra, imm=imm, npc=npc, dyn=dyn,
                            dh=define_hook, B=_BIAS, Mk=_MASK):
                    value = ((R[ra] ^ imm) + B & Mk) - B
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc

        elif op in ("add", "sub", "mul", "and", "or", "xor"):
            wants_define_wrap = True
            define_hook = None if rd == 0 else dh
            if op == "add":
                def handler(R=R, rd=rd, ra=ra, rb=rb, npc=npc, dyn=dyn,
                            dh=define_hook, B=_BIAS, Mk=_MASK):
                    value = ((R[ra] + R[rb] + B) & Mk) - B
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc
            elif op == "sub":
                def handler(R=R, rd=rd, ra=ra, rb=rb, npc=npc, dyn=dyn,
                            dh=define_hook, B=_BIAS, Mk=_MASK):
                    value = ((R[ra] - R[rb] + B) & Mk) - B
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc
            elif op == "mul":
                def handler(R=R, rd=rd, ra=ra, rb=rb, npc=npc, dyn=dyn,
                            dh=define_hook, B=_BIAS, Mk=_MASK, cyc=cyc, ex=extra):
                    cyc[0] += ex
                    value = ((R[ra] * R[rb] + B) & Mk) - B
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc
            elif op == "and":
                def handler(R=R, rd=rd, ra=ra, rb=rb, npc=npc, dyn=dyn,
                            dh=define_hook, B=_BIAS, Mk=_MASK):
                    value = ((R[ra] & R[rb]) + B & Mk) - B
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc
            elif op == "or":
                def handler(R=R, rd=rd, ra=ra, rb=rb, npc=npc, dyn=dyn,
                            dh=define_hook, B=_BIAS, Mk=_MASK):
                    value = ((R[ra] | R[rb]) + B & Mk) - B
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc
            else:
                def handler(R=R, rd=rd, ra=ra, rb=rb, npc=npc, dyn=dyn,
                            dh=define_hook, B=_BIAS, Mk=_MASK):
                    value = ((R[ra] ^ R[rb]) + B & Mk) - B
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc

        elif op in ("li", "la"):
            wants_define_wrap = True
            define_hook = None if rd == 0 else dh
            # ``li`` wraps its immediate, ``la`` takes it verbatim —
            # both are constants after decode.
            constant = (((imm + _BIAS) & _MASK) - _BIAS) if op == "li" else imm

            def handler(R=R, rd=rd, value=constant, npc=npc, dyn=dyn, dh=define_hook):
                R[rd] = value
                dyn[3] += 1
                if dh is not None:
                    dh(value)
                return npc

        elif op == "mov":
            wants_define_wrap = True
            define_hook = None if rd == 0 else dh

            def handler(R=R, rd=rd, ra=ra, npc=npc, dyn=dyn, dh=define_hook):
                value = R[ra]
                R[rd] = value
                dyn[3] += 1
                if dh is not None:
                    dh(value)
                return npc

        elif op in ("div", "rem"):
            wants_define_wrap = True
            define_hook = None if rd == 0 else dh
            div_message = (
                f"{name}: division by zero at pc {pc} "
                f"({inst.render()}, line {inst.line})"
            )
            is_div = op == "div"

            def handler(R=R, rd=rd, ra=ra, rb=rb, npc=npc, dyn=dyn, dh=define_hook,
                        msg=div_message, is_div=is_div, B=_BIAS, Mk=_MASK,
                        cyc=cyc, ex=extra):
                numerator = R[ra]
                denominator = R[rb]
                if denominator == 0:
                    raise _Trap(msg)
                cyc[0] += ex
                quotient = abs(numerator) // abs(denominator)
                if (numerator < 0) != (denominator < 0):
                    quotient = -quotient
                if is_div:
                    value = ((quotient + B) & Mk) - B
                else:
                    value = ((numerator - quotient * denominator + B) & Mk) - B
                R[rd] = value
                dyn[3] += 1
                if dh is not None:
                    dh(value)
                return npc

        elif op in ("divi", "remi"):
            wants_define_wrap = True
            define_hook = None if rd == 0 else dh
            div_message = (
                f"{name}: division by zero at pc {pc} "
                f"({inst.render()}, line {inst.line})"
            )
            if imm == 0:
                # A statically doomed instruction: the trap is the handler.
                def handler(msg=div_message):
                    raise _Trap(msg)
            else:
                is_div = op == "divi"

                def handler(R=R, rd=rd, ra=ra, d=imm, npc=npc, dyn=dyn,
                            dh=define_hook, is_div=is_div, B=_BIAS, Mk=_MASK,
                            cyc=cyc, ex=extra):
                    cyc[0] += ex
                    numerator = R[ra]
                    quotient = abs(numerator) // abs(d)
                    if (numerator < 0) != (d < 0):
                        quotient = -quotient
                    if is_div:
                        value = ((quotient + B) & Mk) - B
                    else:
                        value = ((numerator - quotient * d + B) & Mk) - B
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc

        elif op in ("slli", "srli", "srai"):
            wants_define_wrap = True
            define_hook = None if rd == 0 else dh
            shift = imm & 63
            if op == "slli":
                def handler(R=R, rd=rd, ra=ra, s=shift, npc=npc, dyn=dyn,
                            dh=define_hook, B=_BIAS, Mk=_MASK):
                    value = (((R[ra] << s) + B) & Mk) - B
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc
            elif op == "srli":
                def handler(R=R, rd=rd, ra=ra, s=shift, npc=npc, dyn=dyn,
                            dh=define_hook, B=_BIAS, Mk=_MASK):
                    value = ((((R[ra] & Mk) >> s) + B) & Mk) - B
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc
            else:
                def handler(R=R, rd=rd, ra=ra, s=shift, npc=npc, dyn=dyn,
                            dh=define_hook, B=_BIAS, Mk=_MASK):
                    value = (((R[ra] >> s) + B) & Mk) - B
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc

        elif op in ("sll", "srl", "sra"):
            wants_define_wrap = True
            define_hook = None if rd == 0 else dh
            if op == "sll":
                def handler(R=R, rd=rd, ra=ra, rb=rb, npc=npc, dyn=dyn,
                            dh=define_hook, B=_BIAS, Mk=_MASK):
                    value = (((R[ra] << (R[rb] & 63)) + B) & Mk) - B
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc
            elif op == "srl":
                def handler(R=R, rd=rd, ra=ra, rb=rb, npc=npc, dyn=dyn,
                            dh=define_hook, B=_BIAS, Mk=_MASK):
                    value = ((((R[ra] & Mk) >> (R[rb] & 63)) + B) & Mk) - B
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc
            else:
                def handler(R=R, rd=rd, ra=ra, rb=rb, npc=npc, dyn=dyn,
                            dh=define_hook, B=_BIAS, Mk=_MASK):
                    value = (((R[ra] >> (R[rb] & 63)) + B) & Mk) - B
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc

        elif op in ("slt", "seq", "sne"):
            wants_define_wrap = True
            define_hook = None if rd == 0 else dh
            if op == "slt":
                def handler(R=R, rd=rd, ra=ra, rb=rb, npc=npc, dyn=dyn, dh=define_hook):
                    value = 1 if R[ra] < R[rb] else 0
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc
            elif op == "seq":
                def handler(R=R, rd=rd, ra=ra, rb=rb, npc=npc, dyn=dyn, dh=define_hook):
                    value = 1 if R[ra] == R[rb] else 0
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc
            else:
                def handler(R=R, rd=rd, ra=ra, rb=rb, npc=npc, dyn=dyn, dh=define_hook):
                    value = 1 if R[ra] != R[rb] else 0
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc

        elif op in ("slti", "seqi", "snei"):
            wants_define_wrap = True
            define_hook = None if rd == 0 else dh
            if op == "slti":
                def handler(R=R, rd=rd, ra=ra, imm=imm, npc=npc, dyn=dyn, dh=define_hook):
                    value = 1 if R[ra] < imm else 0
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc
            elif op == "seqi":
                def handler(R=R, rd=rd, ra=ra, imm=imm, npc=npc, dyn=dyn, dh=define_hook):
                    value = 1 if R[ra] == imm else 0
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc
            else:
                def handler(R=R, rd=rd, ra=ra, imm=imm, npc=npc, dyn=dyn, dh=define_hook):
                    value = 1 if R[ra] != imm else 0
                    R[rd] = value
                    dyn[3] += 1
                    if dh is not None:
                        dh(value)
                    return npc

        elif op == "in":
            wants_define_wrap = True
            define_hook = None if rd == 0 else dh
            input_state = self._input_state

            def handler(ist=input_state, R=R, rd=rd, npc=npc, dyn=dyn, dh=define_hook):
                pos = ist[1]
                values = ist[0]
                if pos < len(values):
                    value = values[pos]
                    ist[1] = pos + 1
                else:
                    value = 0
                R[rd] = value
                dyn[3] += 1
                if dh is not None:
                    dh(value)
                return npc

        # -- non-defining instructions --------------------------------

        elif op in ("beq", "bne", "blt", "bge", "ble", "bgt"):
            target = inst.target
            if 0 <= target < code_size:
                if op == "beq":
                    def handler(R=R, ra=ra, rb=rb, t=target, npc=npc):
                        return t if R[ra] == R[rb] else npc
                elif op == "bne":
                    def handler(R=R, ra=ra, rb=rb, t=target, npc=npc):
                        return t if R[ra] != R[rb] else npc
                elif op == "blt":
                    def handler(R=R, ra=ra, rb=rb, t=target, npc=npc):
                        return t if R[ra] < R[rb] else npc
                elif op == "bge":
                    def handler(R=R, ra=ra, rb=rb, t=target, npc=npc):
                        return t if R[ra] >= R[rb] else npc
                elif op == "ble":
                    def handler(R=R, ra=ra, rb=rb, t=target, npc=npc):
                        return t if R[ra] <= R[rb] else npc
                else:
                    def handler(R=R, ra=ra, rb=rb, t=target, npc=npc):
                        return t if R[ra] > R[rb] else npc
            else:
                # Statically out-of-range target: taking the branch must
                # surface as the reference loop's pc-bounds error.
                taken = _bad_target(target)
                if op == "beq":
                    def handler(R=R, ra=ra, rb=rb, taken=taken, npc=npc):
                        return taken() if R[ra] == R[rb] else npc
                elif op == "bne":
                    def handler(R=R, ra=ra, rb=rb, taken=taken, npc=npc):
                        return taken() if R[ra] != R[rb] else npc
                elif op == "blt":
                    def handler(R=R, ra=ra, rb=rb, taken=taken, npc=npc):
                        return taken() if R[ra] < R[rb] else npc
                elif op == "bge":
                    def handler(R=R, ra=ra, rb=rb, taken=taken, npc=npc):
                        return taken() if R[ra] >= R[rb] else npc
                elif op == "ble":
                    def handler(R=R, ra=ra, rb=rb, taken=taken, npc=npc):
                        return taken() if R[ra] <= R[rb] else npc
                else:
                    def handler(R=R, ra=ra, rb=rb, taken=taken, npc=npc):
                        return taken() if R[ra] > R[rb] else npc

        elif op == "j":
            target = inst.target
            if 0 <= target < code_size:
                def handler(t=target):
                    return t
            else:
                handler = _bad_target(target)

        elif op == "jal":
            target = inst.target
            procedure = machine._procedures_by_entry.get(target)
            target_ok = 0 <= target < code_size
            if procedure is None:
                if target_ok:
                    def handler(R=R, npc=npc, t=target, LINK=REG_LINK):
                        R[LINK] = npc
                        return t
                else:
                    def handler(R=R, npc=npc, t=target, LINK=REG_LINK):
                        R[LINK] = npc
                        raise _BadPC(t)
            else:
                call_hook = self._bind_call_hook(procedure, pc)
                arg_regs = REG_ARGS[: procedure.nargs]

                def handler(R=R, npc=npc, t=target, LINK=REG_LINK, dyn=dyn,
                            pcalls=machine.procedure_calls, pname=procedure.name,
                            ch=call_hook, arg_regs=arg_regs, ok=target_ok):
                    R[LINK] = npc
                    dyn[2] += 1
                    pcalls[pname] = pcalls.get(pname, 0) + 1
                    if ch is not None:
                        ch(tuple([R[i] for i in arg_regs]))
                    if ok:
                        return t
                    raise _BadPC(t)

        elif op == "jalr":

            def handler(R=R, rd=rd, ra=ra, npc=npc, dyn=dyn, cs=code_size,
                        by_entry=machine._procedures_by_entry,
                        pcalls=machine.procedure_calls,
                        bind_call=self._bind_call_hook, pc=pc, cache={},
                        ARGS=REG_ARGS):
                # The reference writes the link before reading the target,
                # so ``jalr rX, rX`` jumps to pc+1 — replicated verbatim.
                R[rd] = npc
                target = R[ra]
                procedure = by_entry.get(target)
                if procedure is not None:
                    dyn[2] += 1
                    pname = procedure.name
                    pcalls[pname] = pcalls.get(pname, 0) + 1
                    bound = cache.get(target)
                    if bound is None:
                        bound = (bind_call(procedure, pc), ARGS[: procedure.nargs])
                        cache[target] = bound
                    hook, arg_regs = bound
                    if hook is not None:
                        hook(tuple([R[i] for i in arg_regs]))
                if 0 <= target < cs:
                    return target
                raise _BadPC(target)

        elif op == "jr":
            return_hook = None
            if rd == REG_LINK and machine.observer is not None:
                returning = machine._procedure_by_pc[pc]
                if returning is not None:
                    return_hook = self._bind_return_hook(returning)
            if return_hook is None:
                def handler(R=R, rd=rd, cs=code_size):
                    target = R[rd]
                    if 0 <= target < cs:
                        return target
                    raise _BadPC(target)
            else:
                def handler(R=R, rd=rd, cs=code_size, rh=return_hook, RET=REG_RETURN):
                    target = R[rd]
                    rh(R[RET])
                    if 0 <= target < cs:
                        return target
                    raise _BadPC(target)

        elif op == "out":

            def handler(R=R, rd=rd, npc=npc, append=machine.output.append):
                append(R[rd])
                return npc

        elif op == "nop":

            def handler(npc=npc):
                return npc

        elif op == "halt":

            def handler():
                raise _HALT

        else:  # pragma: no cover - assembler rejects unknown opcodes
            raise MachineError(f"{name}: unimplemented opcode {op!r}")

        if wants_define_wrap and rd == 0:
            # r0 is hardwired to zero: the reference loop writes the
            # result, then clears r0 and reports 0 to on_define.  The
            # inner handler above was built with its define hook
            # suppressed; this wrapper restores the zero and fires the
            # hook with the architecturally visible value.
            inner = handler

            def handler(inner=inner, R=R, dh=dh):
                next_pc = inner()
                R[0] = 0
                if dh is not None:
                    dh(0)
                return next_pc

        if extra and op not in _SURCHARGED:
            # Future-proofing: should any other opcode's cost in
            # CYCLE_COSTS stop being 1, it still gets charged — just
            # through a generic wrapper instead of a hand-inlined add.
            charged = handler

            def handler(inner=charged, cyc=cyc, ex=extra):
                cyc[0] += ex
                return inner()

        return handler


def _bad_target(target: int) -> Callable[[], int]:
    """Handler tail for a statically out-of-range jump target."""

    def raise_bad(t=target):
        raise _BadPC(t)

    return raise_bad
