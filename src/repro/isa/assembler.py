"""Two-pass assembler for VPA assembly source.

Surface syntax (one statement per line, ``;`` or ``#`` comments)::

    .program compress
    .equ TABLE_SIZE 4096
    .data
    table:   .word 0, 1, 2, TABLE_SIZE
    buffer:  .space 256
    handlers:.word do_add, do_sub        ; code labels allowed (jump tables)
    .text
    .proc main nargs=0
        la   r10, table
        li   r11, TABLE_SIZE
    loop:
        ld   r12, 0(r10)
        beqz r12, done
        ...
        j    loop
    done:
        halt
    .endproc

Registers are ``r0``–``r31`` with aliases ``zero`` (r0), ``sp`` (r29)
and ``lr`` (r31).  Immediates are decimal or ``0x`` hexadecimal
integers, optionally negative, or ``.equ`` constants.

Pseudo-instructions (expanded in place, so labels stay correct):

==============  =======================================
``ret``         ``jr lr``
``call L``      ``jal L``
``push rX``     ``subi sp, sp, 1`` ; ``st rX, 0(sp)``
``pop rX``      ``ld rX, 0(sp)`` ; ``addi sp, sp, 1``
``beqz rX, L``  ``beq rX, zero, L``
``bnez rX, L``  ``bne rX, zero, L``
``inc rX``      ``addi rX, rX, 1``
``dec rX``      ``subi rX, rX, 1``
==============  =======================================
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblerError
from repro.isa.instructions import Format, Instruction, NUM_REGISTERS, OPCODES
from repro.isa.program import Procedure, Program

_REG_ALIASES = {"zero": 0, "sp": 29, "lr": 31}
_MEM_OPERAND = re.compile(r"^(?P<off>[^()]*)\((?P<reg>[^()]+)\)$")
_LABEL_NAME = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")

#: Expansion size (in real instructions) of each pseudo-instruction.
_PSEUDO_SIZES = {
    "ret": 1,
    "call": 1,
    "push": 2,
    "pop": 2,
    "beqz": 1,
    "bnez": 1,
    "inc": 1,
    "dec": 1,
}


@dataclass
class _Statement:
    """One source statement after comment stripping and label removal."""

    line: int
    mnemonic: str
    operands: List[str]


@dataclass
class _DataItem:
    """One unresolved data word: an int, symbol, or ``.equ`` name."""

    line: int
    text: str


@dataclass
class _ProcedureSpan:
    name: str
    start: int
    nargs: int
    end: int = -1
    line: int = 0


class Assembler:
    """Assembles VPA source text into a :class:`Program`."""

    def __init__(self) -> None:
        self._equates: Dict[str, int] = {}
        self._code_labels: Dict[str, int] = {}
        self._data_symbols: Dict[str, int] = {}
        self._data_items: List[Tuple[int, _DataItem]] = []  # (address, item)
        self._data_cursor = 0
        self._statements: List[_Statement] = []
        self._procedures: List[_ProcedureSpan] = []
        self._program_name = ""

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------

    def assemble(self, source: str, name: str = "") -> Program:
        """Assemble ``source``; ``name`` overrides any ``.program`` line."""
        self._first_pass(source)
        program_name = name or self._program_name or "anonymous"
        instructions = self._second_pass(program_name)
        data_image = self._resolve_data()
        procedures = {
            span.name: Procedure(span.name, span.start, span.end, span.nargs)
            for span in self._procedures
        }
        entry = procedures["main"].start if "main" in procedures else 0
        return Program(
            name=program_name,
            instructions=instructions,
            procedures=procedures,
            labels=dict(self._code_labels),
            data_symbols=dict(self._data_symbols),
            data_image=data_image,
            entry=entry,
            source=source,
        )

    # ------------------------------------------------------------------
    # pass 1: layout
    # ------------------------------------------------------------------

    def _first_pass(self, source: str) -> None:
        segment = "text"
        pc = 0
        open_proc: Optional[_ProcedureSpan] = None

        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = self._strip_comment(raw).strip()
            if not line:
                continue

            # Peel off any leading "label:" prefixes.
            while True:
                head, sep, rest = line.partition(":")
                if sep and _LABEL_NAME.match(head.strip()) and "(" not in head:
                    label = head.strip()
                    self._define_label(label, segment, pc, lineno)
                    line = rest.strip()
                    if not line:
                        break
                else:
                    break
            if not line:
                continue

            mnemonic, _, operand_text = line.partition(" ")
            mnemonic = mnemonic.strip().lower()
            operands = self._split_operands(operand_text)

            if mnemonic.startswith("."):
                segment, pc, open_proc = self._directive_pass1(
                    mnemonic, operands, operand_text, segment, pc, open_proc, lineno
                )
                continue

            if segment != "text":
                raise AssemblerError(f"instruction {mnemonic!r} outside .text", lineno)
            size = _PSEUDO_SIZES.get(mnemonic)
            if size is None:
                if mnemonic not in OPCODES:
                    raise AssemblerError(f"unknown mnemonic {mnemonic!r}", lineno)
                size = 1
            self._statements.append(_Statement(lineno, mnemonic, operands))
            pc += size

        if open_proc is not None:
            raise AssemblerError(f"procedure {open_proc.name!r} never closed (.endproc missing)", open_proc.line)

    def _directive_pass1(
        self,
        mnemonic: str,
        operands: List[str],
        operand_text: str,
        segment: str,
        pc: int,
        open_proc: Optional[_ProcedureSpan],
        lineno: int,
    ) -> Tuple[str, int, Optional[_ProcedureSpan]]:
        if mnemonic == ".program":
            if not operands:
                raise AssemblerError(".program needs a name", lineno)
            self._program_name = operands[0]
        elif mnemonic == ".equ":
            parts = operand_text.split()
            if len(parts) != 2:
                raise AssemblerError(".equ needs NAME VALUE", lineno)
            name, value_text = parts
            self._equates[name] = self._parse_int(value_text, lineno)
        elif mnemonic == ".data":
            segment = "data"
        elif mnemonic == ".text":
            segment = "text"
        elif mnemonic == ".word":
            if segment != "data":
                raise AssemblerError(".word outside .data", lineno)
            for item in operands:
                self._data_items.append((self._data_cursor, _DataItem(lineno, item)))
                self._data_cursor += 1
        elif mnemonic == ".space":
            if segment != "data":
                raise AssemblerError(".space outside .data", lineno)
            if len(operands) != 1:
                raise AssemblerError(".space needs a size", lineno)
            self._data_cursor += self._parse_int(operands[0], lineno)
        elif mnemonic == ".proc":
            if segment != "text":
                raise AssemblerError(".proc outside .text", lineno)
            if open_proc is not None:
                raise AssemblerError(
                    f"nested .proc (procedure {open_proc.name!r} still open)", lineno
                )
            words = operand_text.split()
            if not words:
                raise AssemblerError(".proc needs a name", lineno)
            name = words[0]
            nargs = 0
            for extra in words[1:]:
                key, _, value = extra.partition("=")
                if key.strip() == "nargs":
                    nargs = self._parse_int(value, lineno)
                else:
                    raise AssemblerError(f"unknown .proc attribute {extra!r}", lineno)
            self._define_label(name, "text", pc, lineno)
            open_proc = _ProcedureSpan(name=name, start=pc, nargs=nargs, line=lineno)
        elif mnemonic == ".endproc":
            if open_proc is None:
                raise AssemblerError(".endproc without .proc", lineno)
            open_proc.end = pc
            self._procedures.append(open_proc)
            open_proc = None
        else:
            raise AssemblerError(f"unknown directive {mnemonic!r}", lineno)
        return segment, pc, open_proc

    def _define_label(self, label: str, segment: str, pc: int, lineno: int) -> None:
        table = self._code_labels if segment == "text" else self._data_symbols
        other = self._data_symbols if segment == "text" else self._code_labels
        if label in table or label in other or label in self._equates:
            raise AssemblerError(f"duplicate label {label!r}", lineno)
        table[label] = pc if segment == "text" else self._data_cursor

    # ------------------------------------------------------------------
    # pass 2: encoding
    # ------------------------------------------------------------------

    def _second_pass(self, program_name: str) -> List[Instruction]:
        instructions: List[Instruction] = []
        proc_by_pc = {}
        for span in self._procedures:
            for pc in range(span.start, span.end):
                proc_by_pc[pc] = span.name

        for statement in self._statements:
            for inst in self._expand(statement):
                inst.pc = len(instructions)
                inst.procedure = proc_by_pc.get(inst.pc, "")
                instructions.append(inst)
        return instructions

    def _expand(self, statement: _Statement) -> List[Instruction]:
        """Expand pseudos, then encode each real instruction."""
        m, ops, line = statement.mnemonic, statement.operands, statement.line
        if m == "ret":
            self._expect(ops, 0, m, line)
            return [self._encode("jr", ["lr"], line)]
        if m == "call":
            self._expect(ops, 1, m, line)
            return [self._encode("jal", ops, line)]
        if m == "push":
            self._expect(ops, 1, m, line)
            return [
                self._encode("subi", ["sp", "sp", "1"], line),
                self._encode("st", [ops[0], "0(sp)"], line),
            ]
        if m == "pop":
            self._expect(ops, 1, m, line)
            return [
                self._encode("ld", [ops[0], "0(sp)"], line),
                self._encode("addi", ["sp", "sp", "1"], line),
            ]
        if m in ("beqz", "bnez"):
            self._expect(ops, 2, m, line)
            real = "beq" if m == "beqz" else "bne"
            return [self._encode(real, [ops[0], "zero", ops[1]], line)]
        if m in ("inc", "dec"):
            self._expect(ops, 1, m, line)
            real = "addi" if m == "inc" else "subi"
            return [self._encode(real, [ops[0], ops[0], "1"], line)]
        return [self._encode(m, ops, line)]

    def _encode(self, mnemonic: str, operands: List[str], line: int) -> Instruction:
        info = OPCODES[mnemonic]
        fmt = info.fmt
        inst = Instruction(opcode=mnemonic, line=line)
        if fmt is Format.RRR:
            self._expect(operands, 3, mnemonic, line)
            inst.rd = self._parse_reg(operands[0], line)
            inst.ra = self._parse_reg(operands[1], line)
            inst.rb = self._parse_reg(operands[2], line)
        elif fmt is Format.RRI:
            self._expect(operands, 3, mnemonic, line)
            inst.rd = self._parse_reg(operands[0], line)
            inst.ra = self._parse_reg(operands[1], line)
            inst.imm = self._parse_int(operands[2], line)
        elif fmt is Format.RI:
            self._expect(operands, 2, mnemonic, line)
            inst.rd = self._parse_reg(operands[0], line)
            inst.imm = self._parse_int(operands[1], line)
        elif fmt is Format.RL:
            self._expect(operands, 2, mnemonic, line)
            inst.rd = self._parse_reg(operands[0], line)
            inst.imm = self._resolve_symbol(operands[1], line)
        elif fmt is Format.RR:
            self._expect(operands, 2, mnemonic, line)
            inst.rd = self._parse_reg(operands[0], line)
            inst.ra = self._parse_reg(operands[1], line)
        elif fmt is Format.R:
            self._expect(operands, 1, mnemonic, line)
            inst.rd = self._parse_reg(operands[0], line)
        elif fmt is Format.MEM:
            self._expect(operands, 2, mnemonic, line)
            inst.rd = self._parse_reg(operands[0], line)
            match = _MEM_OPERAND.match(operands[1])
            if not match:
                raise AssemblerError(f"bad memory operand {operands[1]!r}", line)
            off_text = match.group("off").strip()
            inst.imm = self._parse_int(off_text, line) if off_text else 0
            inst.ra = self._parse_reg(match.group("reg").strip(), line)
        elif fmt is Format.BRANCH:
            self._expect(operands, 3, mnemonic, line)
            inst.ra = self._parse_reg(operands[0], line)
            inst.rb = self._parse_reg(operands[1], line)
            inst.target = self._resolve_code_label(operands[2], line)
        elif fmt is Format.LABEL:
            self._expect(operands, 1, mnemonic, line)
            inst.target = self._resolve_code_label(operands[0], line)
        elif fmt is Format.NONE:
            self._expect(operands, 0, mnemonic, line)
        return inst

    # ------------------------------------------------------------------
    # operand helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _expect(operands: List[str], count: int, mnemonic: str, line: int) -> None:
        if len(operands) != count:
            raise AssemblerError(
                f"{mnemonic} expects {count} operand(s), got {len(operands)}", line
            )

    @staticmethod
    def _strip_comment(line: str) -> str:
        for marker in (";", "#"):
            index = line.find(marker)
            if index >= 0:
                line = line[:index]
        return line

    @staticmethod
    def _split_operands(text: str) -> List[str]:
        text = text.strip()
        if not text:
            return []
        return [part.strip() for part in text.split(",")]

    def _parse_reg(self, text: str, line: int) -> int:
        name = text.strip().lower()
        if name in _REG_ALIASES:
            return _REG_ALIASES[name]
        if name.startswith("r") and name[1:].isdigit():
            index = int(name[1:])
            if 0 <= index < NUM_REGISTERS:
                return index
        raise AssemblerError(f"bad register {text!r}", line)

    def _parse_int(self, text: str, line: int) -> int:
        text = text.strip()
        if text in self._equates:
            return self._equates[text]
        try:
            return int(text, 0)
        except ValueError:
            raise AssemblerError(f"bad integer {text!r}", line) from None

    def _resolve_symbol(self, text: str, line: int) -> int:
        """Resolve a ``la`` operand: data symbol, equ, or literal."""
        text = text.strip()
        if text in self._data_symbols:
            return self._data_symbols[text]
        if text in self._code_labels:
            return self._code_labels[text]
        return self._parse_int(text, line)

    def _resolve_code_label(self, text: str, line: int) -> int:
        text = text.strip()
        if text in self._code_labels:
            return self._code_labels[text]
        raise AssemblerError(f"undefined code label {text!r}", line)

    def _resolve_data(self) -> List[int]:
        image = [0] * self._data_cursor
        for address, item in self._data_items:
            text = item.text
            if text in self._data_symbols:
                image[address] = self._data_symbols[text]
            elif text in self._code_labels:
                image[address] = self._code_labels[text]
            else:
                image[address] = self._parse_int(text, item.line)
        return image


def assemble(source: str, name: str = "") -> Program:
    """Assemble one VPA source string (fresh assembler per call)."""
    return Assembler().assemble(source, name=name)
