"""ISA-level code specialization — the thesis' Chapter X on VPA code.

Where :mod:`repro.specialize` specializes *Python* functions, this
module performs the paper's actual proposal: run-time code generation
for the profiled binary itself.  Given a procedure and a binding of
argument registers to the invariant values a (calling-context) value
profile discovered, it:

1. clones the procedure's instructions to the end of the code segment,
2. prepends a *guard* that falls back to the general entry when any
   bound register does not hold its profiled value,
3. rewrites the clone's body treating the bound registers as
   compile-time constants — folding register-register operations to
   immediate forms, strength-reducing multiplies by 0/1/powers of two
   to moves and shifts, and folding fully-constant compare-and-branch
   instructions,
4. patches selected call sites to target the specialized entry (a
   one-word patch, so no other code moves).

The transformation is conservative: a binding is only applied to
registers the procedure never writes, and every rewrite preserves
semantics instruction-for-instruction, so the specialized program
produces bit-identical output (tests assert this on whole workloads).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import MachineError
from repro.isa.instructions import Format, Instruction, OPCODES, cycle_cost, to_signed64
from repro.isa.program import Procedure, Program

#: Scratch register used by the guard; preserved via push/pop so the
#: transformation is liveness-oblivious.
_GUARD_SCRATCH = 7


@dataclass
class SpecializationReport:
    """What the specializer did to one procedure."""

    procedure: str
    variant: str
    bindings: Dict[int, int]
    entry: int
    folds: int = 0
    strength_reductions: int = 0
    branch_folds: int = 0
    #: static cycle saving per execution of each rewritten instruction
    #: (sum of old cost - new cost); the patch heuristic requires > 0
    #: so the per-call guard overhead is ever recoverable
    cycle_gain: int = 0
    patched_call_sites: List[int] = field(default_factory=list)

    @property
    def rewrites(self) -> int:
        return self.folds + self.strength_reductions + self.branch_folds


def written_registers(program: Program, procedure: Procedure) -> Set[int]:
    """Registers the procedure's own code may write."""
    written: Set[int] = set()
    for pc in range(procedure.start, procedure.end):
        inst = program.instructions[pc]
        info = OPCODES[inst.opcode]
        if info.defines_register or inst.opcode == "jalr":
            written.add(inst.rd)
    return written


def written_registers_transitive(program: Program, procedure: Procedure) -> Set[int]:
    """Registers the procedure or anything it may call can write.

    ``jal`` callees are followed recursively; an indirect call
    (``jalr``) could reach anything, so it conservatively returns all
    registers.  This is what makes binding an argument register sound
    across nested calls.
    """
    visited: Set[str] = set()
    written: Set[int] = set()

    def visit(proc: Procedure) -> bool:
        if proc.name in visited:
            return True
        visited.add(proc.name)
        for pc in range(proc.start, proc.end):
            inst = program.instructions[pc]
            info = OPCODES[inst.opcode]
            if info.defines_register:
                written.add(inst.rd)
            if inst.opcode == "jalr":
                return False  # indirect call: unbounded effects
            if inst.opcode == "jal":
                written.add(31)  # link register
                callee = program.procedure_at(inst.target)
                if callee is None or not visit(callee):
                    return False
        return True

    if not visit(procedure):
        return set(range(32))
    return written


def _power_of_two(value: int) -> Optional[int]:
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


_COMMUTATIVE_IMMEDIATE = {
    "add": "addi",
    "and": "andi",
    "or": "ori",
    "xor": "xori",
    "seq": "seqi",
    "sne": "snei",
}

_RIGHT_IMMEDIATE = {
    "sub": "subi",
    "slt": "slti",
    "sll": "slli",
    "srl": "srli",
    "sra": "srai",
    "div": "divi",
    "rem": "remi",
}

_BRANCH_TESTS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "bge": lambda a, b: a >= b,
    "ble": lambda a, b: a <= b,
    "bgt": lambda a, b: a > b,
}


class _BodyRewriter:
    """Rewrites one cloned instruction under the constant bindings."""

    def __init__(self, consts: Mapping[int, int], report: SpecializationReport) -> None:
        self.consts = dict(consts)
        self.report = report

    def rewrite(self, inst: Instruction) -> Instruction:
        rewritten = self._rewrite(inst)
        if rewritten is not inst:
            self.report.cycle_gain += cycle_cost(inst.opcode) - cycle_cost(rewritten.opcode)
        return rewritten

    def _rewrite(self, inst: Instruction) -> Instruction:
        op = inst.opcode
        fmt = OPCODES[op].fmt
        if fmt is Format.RRR:
            return self._rewrite_rrr(inst)
        if fmt is Format.RRI:
            return self._rewrite_rri(inst)
        if fmt is Format.RR and op == "mov" and inst.ra in self.consts:
            self.report.folds += 1
            return Instruction("li", rd=inst.rd, imm=self.consts[inst.ra], line=inst.line)
        if fmt is Format.BRANCH:
            return self._rewrite_branch(inst)
        if fmt is Format.MEM and inst.ra in self.consts:
            # Constant base address: rebase onto r0.
            self.report.folds += 1
            return Instruction(
                op,
                rd=inst.rd,
                ra=0,
                imm=inst.imm + self.consts[inst.ra],
                line=inst.line,
            )
        return inst

    # ------------------------------------------------------------------

    def _value(self, reg: int) -> Optional[int]:
        if reg == 0:
            return 0
        return self.consts.get(reg)

    def _rewrite_rri(self, inst: Instruction) -> Instruction:
        a = self._value(inst.ra)
        if a is None:
            return inst
        rrr_equivalent = {
            "addi": "add",
            "subi": "sub",
            "muli": "mul",
            "divi": "div",
            "remi": "rem",
            "andi": "and",
            "ori": "or",
            "xori": "xor",
            "slli": "sll",
            "srli": "srl",
            "srai": "sra",
            "slti": "slt",
            "seqi": "seq",
            "snei": "sne",
        }.get(inst.opcode)
        if rrr_equivalent is None:
            return inst
        folded = _evaluate_rrr(rrr_equivalent, a, inst.imm)
        if folded is None:
            return inst
        self.report.folds += 1
        return Instruction("li", rd=inst.rd, imm=folded, line=inst.line)

    def _rewrite_rrr(self, inst: Instruction) -> Instruction:
        op = inst.opcode
        a = self._value(inst.ra)
        b = self._value(inst.rb)
        if a is not None and b is not None:
            folded = _evaluate_rrr(op, a, b)
            if folded is not None:
                self.report.folds += 1
                return Instruction("li", rd=inst.rd, imm=folded, line=inst.line)
        if op == "mul":
            return self._rewrite_mul(inst, a, b)
        if b is not None and op in _RIGHT_IMMEDIATE:
            if op in ("div", "rem") and b == 0:
                return inst  # keep the faulting semantics
            self.report.folds += 1
            return Instruction(
                _RIGHT_IMMEDIATE[op], rd=inst.rd, ra=inst.ra, imm=b, line=inst.line
            )
        if op in _COMMUTATIVE_IMMEDIATE:
            if b is not None:
                self.report.folds += 1
                return Instruction(
                    _COMMUTATIVE_IMMEDIATE[op], rd=inst.rd, ra=inst.ra, imm=b, line=inst.line
                )
            if a is not None:
                self.report.folds += 1
                return Instruction(
                    _COMMUTATIVE_IMMEDIATE[op], rd=inst.rd, ra=inst.rb, imm=a, line=inst.line
                )
        return inst

    def _rewrite_mul(self, inst: Instruction, a: Optional[int], b: Optional[int]) -> Instruction:
        # Strength reduction; the known operand may be on either side.
        known, other = (b, inst.ra) if b is not None else (a, inst.rb)
        if known is None:
            return inst
        if known == 0:
            self.report.strength_reductions += 1
            return Instruction("li", rd=inst.rd, imm=0, line=inst.line)
        if known == 1:
            self.report.strength_reductions += 1
            return Instruction("mov", rd=inst.rd, ra=other, line=inst.line)
        shift = _power_of_two(known)
        if shift is not None:
            self.report.strength_reductions += 1
            return Instruction("slli", rd=inst.rd, ra=other, imm=shift, line=inst.line)
        self.report.folds += 1
        return Instruction("muli", rd=inst.rd, ra=other, imm=known, line=inst.line)

    def _rewrite_branch(self, inst: Instruction) -> Instruction:
        a = self._value(inst.ra)
        b = self._value(inst.rb)
        if a is None or b is None:
            return inst
        taken = _BRANCH_TESTS[inst.opcode](a, b)
        self.report.branch_folds += 1
        if taken:
            return Instruction("j", target=inst.target, line=inst.line)
        return Instruction("nop", line=inst.line)


def _evaluate_rrr(op: str, a: int, b: int) -> Optional[int]:
    """Fully-constant RRR evaluation with machine semantics."""
    if op == "add":
        return to_signed64(a + b)
    if op == "sub":
        return to_signed64(a - b)
    if op == "mul":
        return to_signed64(a * b)
    if op in ("div", "rem"):
        if b == 0:
            return None  # preserve the runtime fault
        quotient = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            quotient = -quotient
        return to_signed64(quotient) if op == "div" else to_signed64(a - quotient * b)
    if op == "and":
        return to_signed64(a & b)
    if op == "or":
        return to_signed64(a | b)
    if op == "xor":
        return to_signed64(a ^ b)
    if op == "sll":
        return to_signed64(a << (b & 63))
    if op == "srl":
        return to_signed64((a & ((1 << 64) - 1)) >> (b & 63))
    if op == "sra":
        return to_signed64(a >> (b & 63))
    if op == "slt":
        return 1 if a < b else 0
    if op == "seq":
        return 1 if a == b else 0
    if op == "sne":
        return 1 if a != b else 0
    return None


def specialize_procedure(
    program: Program,
    procedure_name: str,
    bindings: Mapping[int, int],
    variant_name: Optional[str] = None,
) -> Tuple[Program, SpecializationReport]:
    """Clone + guard + fold one procedure; returns the new program.

    Args:
        program: the program to extend (not mutated).
        procedure_name: the general procedure to specialize.
        bindings: argument register index -> profiled invariant value.
            Every bound register must never be written by the procedure.
        variant_name: name of the specialized procedure (defaults to
            ``<name>__spec``).

    The returned program contains both versions; use
    :func:`patch_call_site` to route callers to the variant.
    """
    if not bindings:
        raise MachineError("specialize_procedure: no register bindings given")
    procedure = program.procedures.get(procedure_name)
    if procedure is None:
        raise MachineError(f"{program.name}: no procedure named {procedure_name!r}")
    writable = written_registers_transitive(program, procedure)
    clobbered = sorted(set(bindings) & writable)
    if clobbered:
        raise MachineError(
            f"{procedure_name} writes register(s) r{clobbered}: binding them is unsound"
        )
    for reg in bindings:
        if not 0 < reg < 32:
            raise MachineError(f"cannot bind register r{reg}")

    variant_name = variant_name or f"{procedure_name}__spec"
    if variant_name in program.procedures:
        raise MachineError(f"{program.name}: procedure {variant_name!r} already exists")

    new_instructions = [copy.copy(inst) for inst in program.instructions]
    base = len(new_instructions)

    # --- guard: push scratch, compare every binding, fall back --------
    guard: List[Instruction] = []
    guard.append(Instruction("subi", rd=29, ra=29, imm=1))
    guard.append(Instruction("st", rd=_GUARD_SCRATCH, ra=29, imm=0))
    for reg, value in sorted(bindings.items()):
        guard.append(Instruction("snei", rd=_GUARD_SCRATCH, ra=reg, imm=value))
        # Branch target (the fallback block) is resolved after layout.
        guard.append(Instruction("bne", ra=_GUARD_SCRATCH, rb=0, target=-1))
    guard.append(Instruction("ld", rd=_GUARD_SCRATCH, ra=29, imm=0))
    guard.append(Instruction("addi", rd=29, ra=29, imm=1))
    body_jump = Instruction("j", target=-1)
    guard.append(body_jump)
    # fallback block: restore scratch, jump to the general entry
    fallback_start = len(guard)
    guard.append(Instruction("ld", rd=_GUARD_SCRATCH, ra=29, imm=0))
    guard.append(Instruction("addi", rd=29, ra=29, imm=1))
    guard.append(Instruction("j", target=procedure.start))

    body_start = base + len(guard)
    for inst in guard:
        if inst.opcode == "bne":
            inst.target = base + fallback_start
    body_jump.target = body_start

    # --- body: clone with target remap, then fold ---------------------
    report = SpecializationReport(
        procedure=procedure_name,
        variant=variant_name,
        bindings=dict(bindings),
        entry=base,
    )
    offset = body_start - procedure.start

    # Basic-block leaders within the procedure: local constants learned
    # from ``li``/``la`` must not flow across join points.
    leaders: Set[int] = {procedure.start}
    for pc in range(procedure.start, procedure.end):
        inst = program.instructions[pc]
        if OPCODES[inst.opcode].is_branch:
            if OPCODES[inst.opcode].fmt in (Format.BRANCH, Format.LABEL):
                if procedure.start <= inst.target < procedure.end:
                    leaders.add(inst.target)
            if pc + 1 < procedure.end:
                leaders.add(pc + 1)

    local_consts: Dict[int, int] = {}
    body: List[Instruction] = []
    for pc in range(procedure.start, procedure.end):
        if pc in leaders:
            local_consts = {}
        inst = copy.copy(program.instructions[pc])
        if OPCODES[inst.opcode].fmt in (Format.BRANCH, Format.LABEL):
            if procedure.start <= inst.target < procedure.end:
                inst.target += offset  # intra-procedure control flow
            # cross-procedure targets (e.g. nested calls) stay absolute
        env = dict(local_consts)
        env.update(bindings)  # bindings win and are never overwritten
        rewriter = _BodyRewriter(env, report)
        inst = rewriter.rewrite(inst)
        # Update block-local knowledge from the rewritten instruction.
        info = OPCODES[inst.opcode]
        if inst.opcode in ("li", "la"):
            if inst.rd != 0:
                local_consts[inst.rd] = to_signed64(inst.imm)
        elif info.defines_register or inst.opcode == "jalr":
            local_consts.pop(inst.rd, None)
        if inst.opcode in ("jal", "jalr"):
            local_consts = {}  # callee may clobber caller-saved state
        body.append(inst)

    new_instructions.extend(guard)
    new_instructions.extend(body)
    for pc, inst in enumerate(new_instructions):
        inst.pc = pc
    for pc in range(base, len(new_instructions)):
        new_instructions[pc].procedure = variant_name

    procedures = dict(program.procedures)
    procedures[variant_name] = Procedure(
        name=variant_name,
        start=base,
        end=len(new_instructions),
        nargs=procedure.nargs,
    )
    labels = dict(program.labels)
    labels[variant_name] = base

    specialized = Program(
        name=program.name,
        instructions=new_instructions,
        procedures=procedures,
        labels=labels,
        data_symbols=dict(program.data_symbols),
        data_image=list(program.data_image),
        entry=program.entry,
        source=program.source,
    )
    return specialized, report


def patch_call_site(program: Program, call_pc: int, variant_name: str) -> None:
    """Retarget the ``jal`` at ``call_pc`` to the specialized entry.

    A single-word patch (mirrors binary patching): no instruction moves,
    so every other target stays valid.  The guard inside the variant
    keeps the patch safe even if the profiled invariance was imperfect.
    """
    if not 0 <= call_pc < len(program.instructions):
        raise MachineError(f"{program.name}: call site pc {call_pc} out of range")
    inst = program.instructions[call_pc]
    if inst.opcode != "jal":
        raise MachineError(
            f"{program.name}: pc {call_pc} is {inst.opcode!r}, not a direct call"
        )
    variant = program.procedures.get(variant_name)
    if variant is None:
        raise MachineError(f"{program.name}: no procedure named {variant_name!r}")
    inst.target = variant.start
