"""Analysis layer: experiment registry, quantile analysis, rendering."""

from repro.analysis.experiments import (
    Experiment,
    ExperimentResult,
    all_experiments,
    clear_caches,
    experiment_ids,
    run,
)
from repro.analysis.diff import ProfileDiff, SiteDelta, diff_profiles
from repro.analysis.figures import bar_chart, series_plot
from repro.analysis.report import ValueProfileReport, build_report
from repro.analysis.quantile import Bucket, cumulative_share, invariance_buckets, top_weighted
from repro.analysis.tables import METRICS_COLUMNS, Table, metrics_row, percentage

__all__ = [
    "Bucket",
    "Experiment",
    "ProfileDiff",
    "SiteDelta",
    "ExperimentResult",
    "METRICS_COLUMNS",
    "Table",
    "ValueProfileReport",
    "build_report",
    "all_experiments",
    "bar_chart",
    "clear_caches",
    "cumulative_share",
    "diff_profiles",
    "experiment_ids",
    "invariance_buckets",
    "metrics_row",
    "percentage",
    "run",
    "series_plot",
    "top_weighted",
]
