"""Actionable value-profiling reports.

Turns one workload's profiles into the report a developer would act
on: classification of sites (invariant / semi-invariant / variant),
the top specialization candidates with break-even analysis, predictor
suitability, and hot-code concentration.  This is the "so what" layer
on top of the paper's metrics — the thesis motivates value profiling
precisely as the automated replacement for the user annotations
earlier systems required [2, 12, 15, 25, 26].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.quantile import cumulative_share
from repro.analysis.tables import Table, percentage
from repro.core.profile import ProfileDatabase
from repro.core.sites import SiteKind
from repro.predictors.classify import ClassifierConfig, InvarianceClass, classify
from repro.specialize.analysis import BenefitModel, SpecializationCandidate, find_candidates


@dataclass
class ValueProfileReport:
    """The assembled report for one profiled run."""

    name: str
    sections: List[str]
    classification: Dict[InvarianceClass, float]
    candidates: List[SpecializationCandidate]

    def render(self) -> str:
        return "\n\n".join(self.sections)


def build_report(
    database: ProfileDatabase,
    kind: SiteKind = SiteKind.LOAD,
    classifier: ClassifierConfig = ClassifierConfig(),
    benefit: Optional[BenefitModel] = None,
    top_candidates: int = 8,
) -> ValueProfileReport:
    """Build the report from a populated profile database.

    Args:
        database: profiles from any front end.
        kind: site family the report focuses on.
        classifier: invariance-class thresholds.
        benefit: break-even model for the specialization section
            (defaults to :class:`BenefitModel`'s conservative numbers).
    """
    benefit = benefit or BenefitModel()
    rows = database.metrics_by_site(kind)
    total_executions = sum(metrics.executions for _, metrics in rows) or 1
    sections: List[str] = []

    # --- headline -------------------------------------------------------
    summary = database.summary(kind)
    sections.append(
        f"Value profile report: {database.name or '(unnamed run)'} — "
        f"{len(rows)} {kind.value} sites, {total_executions:,} dynamic executions\n"
        f"  weighted LVP {percentage(summary.lvp):.1f}%   "
        f"Inv-Top1 {percentage(summary.inv_top1):.1f}%   "
        f"Inv-All {percentage(summary.inv_top_n):.1f}%   "
        f"%Zeros {percentage(summary.pct_zeros):.1f}%"
    )

    # --- classification --------------------------------------------------
    shares: Dict[InvarianceClass, float] = {cls: 0.0 for cls in InvarianceClass}
    for _, metrics in rows:
        shares[classify(metrics, classifier)] += metrics.executions / total_executions
    classification_table = Table(
        ("class", "execution share%"), title="Site classification (execution-weighted)"
    )
    for cls in InvarianceClass:
        classification_table.add_row(cls.value, percentage(shares[cls]))
    sections.append(classification_table.render())

    # --- hot-code concentration ------------------------------------------
    metric_rows = [metrics for _, metrics in rows]
    shares_cumulative = cumulative_share(metric_rows)
    concentration_lines = ["Hot-site concentration:"]
    for count in (1, 3, 10):
        if shares_cumulative and len(shares_cumulative) >= count:
            concentration_lines.append(
                f"  hottest {count:>2d} site(s) cover "
                f"{percentage(shares_cumulative[count - 1]):.1f}% of executions"
            )
    sections.append("\n".join(concentration_lines))

    # --- specialization candidates ---------------------------------------
    candidates = find_candidates(
        database, kind=kind, min_invariance=classifier.semi_invariant_threshold,
        min_executions=max(10, total_executions // 10_000),
    )
    candidate_table = Table(
        ("site", "execs", "Inv-Top1%", "top value", "break-even inv%", "verdict"),
        title="Top specialization candidates",
    )
    for candidate in candidates[:top_candidates]:
        breakeven = benefit.breakeven_invariance(candidate.executions)
        worthwhile = benefit.net_benefit(candidate) > 0
        candidate_table.add_row(
            candidate.site.qualified_name(),
            candidate.executions,
            percentage(candidate.invariance),
            repr(candidate.value),
            percentage(breakeven),
            "specialize" if worthwhile else "below break-even",
        )
    if not candidates:
        sections.append("Top specialization candidates: none above the invariance floor")
    else:
        sections.append(candidate_table.render())

    # --- prediction suitability -------------------------------------------
    predictable = [m for _, m in rows if m.lvp >= 0.6]
    predictable_share = sum(m.executions for m in predictable) / total_executions
    sections.append(
        "Value-prediction suitability:\n"
        f"  {len(predictable)} of {len(rows)} sites have LVP >= 60% "
        f"({percentage(predictable_share):.1f}% of executions) — the set a "
        "profile-filtered predictor (Gabbay-style) would cover"
    )

    return ValueProfileReport(
        name=database.name,
        sections=sections,
        classification=shares,
        candidates=candidates,
    )
