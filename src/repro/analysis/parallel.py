"""Process-parallel experiment execution and profile fan-out.

The paper's headline cost result is that full value profiling is
order-of-magnitude slow; the reproduction's answer is to batch the hot
path (:mod:`repro.core`) and to parallelize the cold one.  This module
provides the latter:

* :func:`run_experiments` — fan the experiment registry out over a
  ``ProcessPoolExecutor``.  Each worker renders its experiment exactly
  as the serial path would, so results (including the rendered text)
  are byte-identical; only the wall clock changes.  Workers share the
  persistent profile cache (:func:`repro.analysis.experiments.profiled`),
  so a workload profiled by one worker is a disk hit for the next run.
* :class:`ProfileJob` / :func:`profile_jobs` / :func:`profile_and_merge`
  — fan raw ``profile_workload`` jobs out and ship each result back as
  its ``to_json`` snapshot, then rebuild/merge databases in the parent
  with the existing ``from_json``/``merge`` machinery.  This is the
  multi-input aggregation path (e.g. profiling many input sets of one
  program and merging them into a single profile).
* :func:`fold_jobs` / :func:`fold_and_merge` — the columnar variant of
  the profile fan-out: each worker reduces its trace to per-site
  grouped folds (:meth:`~repro.core.tracestore.EventTrace.site_folds`)
  and ships folded ``(site, value, count)`` triples home instead of a
  rendered snapshot.  The parent replays the folds into databases,
  which — unlike the ``to_json`` path — can keep exact reference
  statistics, because the fold carries the full per-site histogram.

Everything submitted to a worker is a plain tuple/dataclass of
primitives, so the module works under both ``fork`` and ``spawn`` start
methods.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.fold import fold_from_payload, fold_to_payload
from repro.core.profile import ProfileDatabase, TNVConfig
from repro.errors import ExperimentError
from repro.obs import METRICS, TRACER, get_logger

_LOG = get_logger(__name__)


def _default_jobs(jobs: Optional[int]) -> int:
    if jobs is None or jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return jobs


# ----------------------------------------------------------------------
# experiment fan-out
# ----------------------------------------------------------------------


#: Heaviest experiments first — a static longest-processing-time
#: schedule.  Dispatching the heavy tail early keeps the pool busy to
#: the end instead of leaving one worker grinding through
#: ``table-predictors`` after everyone else finished.  Ids missing
#: from this list (new experiments) are dispatched first, ahead of the
#: known-heavy ones, which is the safe default for unknown cost.
_COST_ORDER = (
    "table-predictors",
    "table-sampling-accuracy",
    "table-vht-aliasing",
    "table-isa-specialization",
    "table-all-instructions",
    "table-memory-locations",
    "fig-convergence",
    "table-predictor-filtering",
    "table-benchmarks",
    "table-calling-context",
    "fig-invariance-distribution",
    "table-parameters",
    "table-load-speculation",
    "table-basic-blocks",
    "table-specialization",
    "table-insn-classes",
    "fig-tnv-accuracy",
    "table-memoization",
    "table-train-vs-test",
    "table-pyprof",
    "table-top-procedures",
    "table-load-values",
)


def _dispatch_order(ids: Sequence[str]) -> List[str]:
    rank = {experiment_id: index for index, experiment_id in enumerate(_COST_ORDER)}
    return sorted(ids, key=lambda eid: rank.get(eid, -1))


def _experiment_worker(
    args: Tuple[str, float, bool, bool, Optional[int], Optional[int], Optional[int]]
):
    """Top-level worker: run one experiment in a fresh process.

    Returns ``(result, metrics_snapshot, spans, timeseries_payload,
    jitlog_payload)``.  When the parent had observability enabled, the
    worker records into its own registry and tracer (span ids prefixed
    with the experiment id so they stay unique in the combined trace)
    and ships both home as plain dicts; otherwise those slots are
    ``None``.  With the parent's time-series collector on, the worker
    samples its own and ships the payload for an associative merge;
    with the flight recorder on, the worker runs its own ring so a
    crash inside the worker dumps from the process that saw the failing
    events.  With the parent's jitlog on, the worker journals its own
    tier-2 lifecycle (independently of ``observe`` — the journal has
    its own enable) and ships the events home for a deterministic
    merge in result order.
    """
    (experiment_id, scale, use_cache, observe, ts_interval,
     flight_capacity, jitlog_capacity) = args
    from repro.analysis import experiments
    from repro.obs.flight import FLIGHT
    from repro.obs.jitlog import JITLOG
    from repro.obs.timeseries import TIMESERIES

    if not use_cache:
        experiments.set_cache_enabled(False)
    if flight_capacity is not None:
        FLIGHT.enable(capacity=flight_capacity)
    if jitlog_capacity is not None:
        JITLOG.enable(capacity=jitlog_capacity)
    if not observe:
        result = experiments.run(experiment_id, scale=scale)
        jl_payload = JITLOG.to_payload() if jitlog_capacity is not None else None
        return result, None, None, None, jl_payload
    METRICS.reset()
    METRICS.enable()
    TRACER.enable(prefix=experiment_id)
    if ts_interval is not None:
        TIMESERIES.enable(interval=ts_interval)
    try:
        result = experiments.run(experiment_id, scale=scale)
        snapshot = METRICS.snapshot()
        spans = TRACER.drain()
        for span in spans:
            span.setdefault("attrs", {})["worker"] = experiment_id
        ts_payload = TIMESERIES.to_payload() if ts_interval is not None else None
        jl_payload = JITLOG.to_payload() if jitlog_capacity is not None else None
    finally:
        METRICS.disable()
        TRACER.disable()
        TIMESERIES.disable()
    return result, snapshot, spans, ts_payload, jl_payload


def run_experiments(
    ids: Sequence[str],
    scale: float = 1.0,
    jobs: Optional[int] = None,
    use_cache: bool = True,
):
    """Run ``ids`` across ``jobs`` worker processes, preserving order.

    Each worker computes and *renders* its experiment, so the returned
    :class:`~repro.analysis.experiments.ExperimentResult` list is
    identical to what the serial path produces — the parent process
    never re-renders anything.  With the persistent cache enabled,
    workers also warm the on-disk profile cache as a side effect.
    """
    ids = list(ids)
    if not ids:
        return []
    jobs = min(_default_jobs(jobs), len(ids))
    if jobs == 1:
        from repro.analysis import experiments

        return experiments.run_all(scale=scale, jobs=1, ids=ids, use_cache=use_cache)
    from repro.obs.flight import FLIGHT
    from repro.obs.jitlog import JITLOG
    from repro.obs.timeseries import TIMESERIES

    observe = METRICS.enabled or TRACER.enabled or TIMESERIES.enabled
    ts_interval = TIMESERIES.interval if TIMESERIES.enabled else None
    flight_capacity = FLIGHT.capacity if FLIGHT.enabled else None
    jitlog_capacity = JITLOG.capacity if JITLOG.enabled else None
    _LOG.info("dispatching %d experiment(s) over %d workers", len(ids), jobs)
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {
            experiment_id: pool.submit(
                _experiment_worker,
                (experiment_id, scale, use_cache, observe, ts_interval,
                 flight_capacity, jitlog_capacity),
            )
            for experiment_id in _dispatch_order(ids)
        }
        results = []
        for experiment_id in ids:
            result, snapshot, spans, ts_payload, jl_payload = (
                futures[experiment_id].result()
            )
            if snapshot is not None:
                METRICS.merge(snapshot)
            if spans is not None:
                TRACER.adopt(spans)
            if ts_payload is not None:
                TIMESERIES.merge(ts_payload)
            if jl_payload is not None:
                # Merged in ids order, so the combined journal is
                # deterministic regardless of completion order.
                JITLOG.merge(jl_payload)
            results.append(result)
        return results


# ----------------------------------------------------------------------
# profile fan-out
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ProfileJob:
    """One ``profile_workload`` invocation, described by primitives.

    ``targets`` holds :class:`~repro.isa.instrument.ProfileTarget`
    *values* (strings) so the job pickles cheaply under any start
    method.  Workers profile TNV-only (``exact=False``): results travel
    back as ``to_json`` snapshots, which — modelling what a real value
    profiler writes to disk — never carry exact histograms anyway.
    """

    workload: str
    variant: str = "train"
    scale: float = 1.0
    targets: Tuple[str, ...] = ("instructions", "loads")
    capacity: int = 10
    steady: int = 5
    clear_interval: Optional[int] = 2000

    def config(self) -> TNVConfig:
        return TNVConfig(
            capacity=self.capacity,
            steady=self.steady,
            clear_interval=self.clear_interval,
        )


def _profile_worker(job: ProfileJob) -> str:
    from repro.isa.instrument import ProfileTarget
    from repro.workloads.harness import profile_workload

    run = profile_workload(
        job.workload,
        job.variant,
        scale=job.scale,
        targets=tuple(ProfileTarget(t) for t in job.targets),
        config=job.config(),
        exact=False,
    )
    return run.database.to_json()


def profile_jobs(
    jobs_list: Iterable[ProfileJob],
    jobs: Optional[int] = None,
) -> List[ProfileDatabase]:
    """Profile every job across worker processes.

    Returns one rebuilt :class:`ProfileDatabase` per job, in job order.
    """
    jobs_list = list(jobs_list)
    if not jobs_list:
        return []
    workers = min(_default_jobs(jobs), len(jobs_list))
    if workers == 1:
        payloads = [_profile_worker(job) for job in jobs_list]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            payloads = list(pool.map(_profile_worker, jobs_list))
    return [ProfileDatabase.from_json(payload) for payload in payloads]


def profile_and_merge(
    jobs_list: Iterable[ProfileJob],
    jobs: Optional[int] = None,
    name: str = "",
) -> ProfileDatabase:
    """Profile every job in parallel and merge the results site-by-site.

    All jobs must share one TNV configuration — merging tables of
    different shapes would silently change clearing semantics.
    """
    jobs_list = list(jobs_list)
    if not jobs_list:
        raise ExperimentError("profile_and_merge needs at least one job")
    _require_one_shape(jobs_list, "profile_and_merge")
    databases = profile_jobs(jobs_list, jobs=jobs)
    merged = databases[0]
    for database in databases[1:]:
        merged.merge(database)
    if name:
        merged.name = name
    return merged


# ----------------------------------------------------------------------
# columnar fold fan-out
# ----------------------------------------------------------------------


def _require_one_shape(jobs_list: Sequence[ProfileJob], who: str) -> None:
    shapes = {(job.capacity, job.steady, job.clear_interval) for job in jobs_list}
    if len(shapes) > 1:
        raise ExperimentError(
            f"{who} needs one TNV configuration, got {sorted(shapes)}"
        )


def _fold_worker(job: ProfileJob) -> list:
    """Reduce one job's trace to shipped per-site folds.

    The worker simulates (or replays from the shared trace cache) and
    folds columnarly; what crosses the process boundary is the grouped
    ``(site, value, count)`` representation — a few pairs per distinct
    value — never the raw event stream.
    """
    from repro.analysis.experiments import load_events
    from repro.isa.instrument import ProfileTarget

    trace = load_events(job.workload, job.variant, scale=job.scale)
    targets = tuple(ProfileTarget(t) for t in job.targets)
    return [
        (site, fold_to_payload(fold))
        for site, fold in trace.site_folds(targets, job.clear_interval)
    ]


def fold_jobs(
    jobs_list: Iterable[ProfileJob],
    jobs: Optional[int] = None,
    exact: bool = True,
) -> List[ProfileDatabase]:
    """Profile every job via shipped columnar folds.

    Returns one rebuilt :class:`ProfileDatabase` per job, in job order,
    state-identical to profiling the workload live with the job's
    configuration — including exact reference statistics when ``exact``
    is set, which the snapshot-shipping :func:`profile_jobs` path
    cannot provide.
    """
    jobs_list = list(jobs_list)
    if not jobs_list:
        return []
    workers = min(_default_jobs(jobs), len(jobs_list))
    if workers == 1:
        payloads = [_fold_worker(job) for job in jobs_list]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            payloads = list(pool.map(_fold_worker, jobs_list))
    databases = []
    for job, shipped in zip(jobs_list, payloads):
        database = ProfileDatabase(
            config=job.config(), exact=exact, name=job.workload
        )
        for site, payload in shipped:
            database.record_fold(site, fold_from_payload(payload))
        databases.append(database)
    return databases


def fold_and_merge(
    jobs_list: Iterable[ProfileJob],
    jobs: Optional[int] = None,
    exact: bool = True,
    name: str = "",
) -> ProfileDatabase:
    """Fold every job in parallel and merge the results site-by-site."""
    jobs_list = list(jobs_list)
    if not jobs_list:
        raise ExperimentError("fold_and_merge needs at least one job")
    _require_one_shape(jobs_list, "fold_and_merge")
    databases = fold_jobs(jobs_list, jobs=jobs, exact=exact)
    merged = databases[0]
    for database in databases[1:]:
        merged.merge(database)
    if name:
        merged.name = name
    return merged
