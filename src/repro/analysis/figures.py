"""Plain-text figures: bar charts and line series.

The paper's figures are bar graphs (invariance distributions per
program) and line plots (convergence over time).  These render as
monospace art so benchmark output is self-contained.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple


def bar_chart(
    data: Mapping[str, float],
    title: str = "",
    width: int = 50,
    unit: str = "%",
    max_value: float | None = None,
) -> str:
    """Horizontal bar chart; values rendered to ``width`` characters."""
    if not data:
        return title
    peak = max_value if max_value is not None else max(data.values()) or 1.0
    label_width = max(len(label) for label in data)
    lines = [title] if title else []
    for label, value in data.items():
        filled = 0 if peak == 0 else int(round(width * min(value, peak) / peak))
        lines.append(f"{label.ljust(label_width)} |{'#' * filled}{' ' * (width - filled)}| {value:6.1f}{unit}")
    return "\n".join(lines)


def series_plot(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """ASCII scatter/line plot of one or more (x, y) series.

    Each series gets a distinct marker; axes are annotated with the
    data ranges.  Intended for convergence curves and sweep results.
    """
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return title
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1
    if y_max == y_min:
        y_max = y_min + 1

    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#@%&"
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in values:
            col = int(round((width - 1) * (x - x_min) / (x_max - x_min)))
            row = int(round((height - 1) * (y - y_min) / (y_max - y_min)))
            grid[height - 1 - row][col] = marker

    lines = [title] if title else []
    lines.append(f"{y_label}: {y_min:.3f} .. {y_max:.3f}")
    lines.append("+" + "-" * width + "+")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"{x_label}: {x_min:g} .. {x_max:g}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
