"""Invariance-bucket (quantile) analysis — thesis §III.D.

The thesis presents invariance results as *quantile graphs*: sites are
bucketed by their invariance (0-10%, 10-20%, ..., 90-100%) and each
bucket's share of total dynamic executions is plotted.  The
characteristic paper result is a bimodal shape — a large mass of
executions in the lowest bucket and another large mass in the highest —
showing that semi-invariant behaviour is common, not an average effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.core.metrics import SiteMetrics

DEFAULT_BUCKETS = 10


@dataclass(frozen=True)
class Bucket:
    """One invariance bucket's aggregate."""

    low: float
    high: float
    sites: int
    executions: int
    share: float

    @property
    def label(self) -> str:
        return f"{int(self.low * 100)}-{int(self.high * 100)}%"


def invariance_buckets(
    rows: Sequence[SiteMetrics],
    buckets: int = DEFAULT_BUCKETS,
    key: Callable[[SiteMetrics], float] = lambda m: m.inv_top1,
) -> List[Bucket]:
    """Bucket sites by invariance; share is execution-weighted.

    ``key`` selects the bucketed metric (Inv-Top1 by default; pass
    ``lambda m: m.lvp`` for an LVP distribution).
    """
    if buckets < 1:
        raise ValueError("need at least one bucket")
    counts = [0] * buckets
    weights = [0] * buckets
    total = 0
    for metrics in rows:
        value = min(max(key(metrics), 0.0), 1.0)
        index = min(buckets - 1, int(value * buckets))
        counts[index] += 1
        weights[index] += metrics.executions
        total += metrics.executions
    result = []
    for index in range(buckets):
        low = index / buckets
        high = (index + 1) / buckets
        share = weights[index] / total if total else 0.0
        result.append(Bucket(low, high, counts[index], weights[index], share))
    return result


def top_weighted(
    rows: Sequence[Tuple[str, SiteMetrics]],
    count: int = 10,
) -> List[Tuple[str, SiteMetrics, float]]:
    """The ``count`` heaviest entries with their execution share.

    Used for the "top procedures" table (Table V.4): a handful of
    procedures carry most of the dynamic loads.
    """
    total = sum(metrics.executions for _, metrics in rows)
    ranked = sorted(rows, key=lambda item: (-item[1].executions, item[0]))
    result = []
    for name, metrics in ranked[:count]:
        share = metrics.executions / total if total else 0.0
        result.append((name, metrics, share))
    return result


def cumulative_share(rows: Sequence[SiteMetrics]) -> List[float]:
    """Cumulative execution share of sites, hottest first.

    ``cumulative_share(rows)[k]`` is the fraction of dynamic executions
    covered by the k+1 hottest sites — the paper's skew argument for
    profiling only hot code.
    """
    weights = sorted((m.executions for m in rows), reverse=True)
    total = sum(weights)
    if total == 0:
        return []
    shares = []
    running = 0
    for weight in weights:
        running += weight
        shares.append(running / total)
    return shares
