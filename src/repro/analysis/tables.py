"""Plain-text table rendering for experiment output.

All experiments print their results as monospace tables shaped like
the paper's, so paper-vs-measured comparison is a side-by-side read.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 1) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


class Table:
    """A titled, aligned, plain-text table.

    Numeric columns are right-aligned automatically; floats are
    rendered with a fixed precision.
    """

    def __init__(self, columns: Sequence[str], title: str = "", precision: int = 1) -> None:
        self.title = title
        self.columns = list(columns)
        self.precision = precision
        self.rows: List[List[str]] = []
        self._numeric = [True] * len(self.columns)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        rendered = []
        for index, cell in enumerate(cells):
            if isinstance(cell, str):
                self._numeric[index] = False
            rendered.append(format_cell(cell, self.precision))
        self.rows.append(rendered)

    def add_separator(self) -> None:
        self.rows.append([])

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: Iterable[str], aligns: Sequence[bool]) -> str:
            parts = []
            for cell, width, right in zip(cells, widths, aligns):
                parts.append(cell.rjust(width) if right else cell.ljust(width))
            return "  ".join(parts).rstrip()

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        out = []
        if self.title:
            out.append(self.title)
        out.append(line(self.columns, [False] * len(self.columns)))
        out.append(rule)
        for row in self.rows:
            if not row:
                out.append(rule)
            else:
                out.append(line(row, self._numeric))
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


def percentage(ratio: float) -> float:
    """Ratio in [0,1] -> percentage for table cells."""
    return 100.0 * ratio


def metrics_row(name: str, metrics, precision_executions_in_millions: bool = True) -> tuple:
    """Standard (program, execs, LVP, Inv-Top1, Inv-All, Diff, %Zeros) row.

    ``metrics`` is a :class:`repro.core.metrics.SiteMetrics`.
    Executions are reported in millions when large, like Table III.A.1.
    """
    executions: Cell = metrics.executions
    if precision_executions_in_millions and metrics.executions >= 1_000_000:
        executions = f"{metrics.executions / 1e6:.1f}M"
    return (
        name,
        executions,
        percentage(metrics.lvp),
        percentage(metrics.inv_top1),
        percentage(metrics.inv_top_n),
        metrics.distinct,
        percentage(metrics.pct_zeros),
    )


METRICS_COLUMNS = ("program", "execs", "LVP%", "Inv-Top1%", "Inv-All%", "Diff", "%Zeros")


def profile_table(database, kind, top: int = 20, name: Optional[str] = None):
    """The canonical per-site metrics table of one profile database.

    Single construction site shared by ``repro profile`` and the serve
    daemon's ``/profile`` endpoint: live service output is
    byte-comparable to offline output because both render through this
    function, not because two formatters happen to agree.

    ``database`` is a :class:`repro.core.profile.ProfileDatabase`;
    ``name`` overrides the title label (defaults to ``database.name``).
    """
    rows = database.metrics_by_site(kind)
    title = f"{name or database.name}: per-site {kind.value} metrics"
    table = Table(METRICS_COLUMNS, title=title)
    for site, metrics in rows[:top]:
        table.add_row(*metrics_row(site.qualified_name(), metrics))
    table.add_separator()
    table.add_row(*metrics_row("TOTAL", database.summary(kind)))
    return table
