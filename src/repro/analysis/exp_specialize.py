"""Specialization and Python-front-end experiments.

* ``table-specialization`` — the Chapter X pipeline end to end:
  value-profile each demo function's parameters on a train call
  stream, select semi-invariant parameters, generate the guarded
  specialized variant, and measure speedup on a fresh call stream —
  both for the specialized code called directly (compiler-inlined
  guard) and through the run-time guard dispatcher.
* ``table-pyprof`` — the host-language front end applied to real
  Python code (the workload reference implementations), reporting the
  same metrics the ISA front end produces.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

from repro.analysis.experiments import experiment, make_result
from repro.analysis.tables import Table, percentage
from repro.core.sites import SiteKind
from repro.pyprof.ast_instrument import instrument_function
from repro.pyprof.tracer import profile_calls
from repro.specialize.analysis import find_candidates
from repro.specialize.demos import DEMOS, demo_calls
from repro.specialize.runtime import SpecializedFunction


def _best_time(func: Callable, calls: List[tuple], repeats: int = 9) -> float:
    """Minimum-of-N wall time for replaying ``calls`` through ``func``.

    Minimum over several repeats suppresses scheduler noise, which
    matters because the measured bodies run for only milliseconds.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for args in calls:
            func(*args)
        best = min(best, time.perf_counter() - start)
    return best


@experiment(
    "table-specialization",
    "Profile-guided code specialization",
    "Thesis Chapter X",
    "Specializing on profiled semi-invariant parameters speeds up the "
    "invariant path; the guard costs a small constant, so net benefit "
    "requires high invariance (the break-even argument).",
    deterministic=False,  # measures real wall-clock speedups
)
def table_specialization(scale: float = 1.0):
    calls_count = max(30, int(300 * scale))
    table = Table(
        (
            "function",
            "params bound",
            "invariance%",
            "guard hit%",
            "speedup(direct)",
            "speedup(guarded)",
        ),
        title="Specialization on profiled semi-invariant parameters",
        precision=2,
    )
    data: Dict[str, dict] = {}
    for demo in DEMOS:
        train_calls = demo_calls(demo, "train", count=calls_count)
        test_calls = demo_calls(demo, "test", count=calls_count)

        # 1. profile parameter values on the train stream
        database = profile_calls(demo.func, train_calls)
        candidates = find_candidates(
            database, kind=SiteKind.PYTHON, min_invariance=0.6, min_executions=10
        )
        # 2. keep candidates for the parameters the demo declares
        #    specializable (arguments, not the return site)
        bindings = {}
        invariances = []
        for candidate in candidates:
            label = candidate.site.label  # "argK:name"
            if ":" not in label:
                continue
            param = label.split(":", 1)[1]
            if param in demo.invariant_params and param not in bindings:
                bindings[param] = candidate.value
                invariances.append(candidate.invariance)
        if not bindings:
            table.add_row(demo.name, "(none)", 0.0, 0.0, 1.0, 1.0)
            data[demo.name] = {"bindings": {}, "speedup_direct": 1.0, "speedup_guarded": 1.0}
            continue
        mean_invariance = sum(invariances) / len(invariances)

        # 3. generate the guarded specialized function
        dispatcher = SpecializedFunction(demo.func)
        specialized = dispatcher.add_variant(bindings)

        # 4. verify equivalence on the test stream before timing
        param_names = dispatcher._param_names
        for args in test_calls:
            expected = demo.func(*args)
            assert dispatcher(*args) == expected, f"{demo.name}: specialized result diverged"
        dispatcher.guard_misses = 0
        for variant in dispatcher.variants:
            variant.hits = 0

        # 5. timing: general vs specialized-direct vs guarded dispatch
        general_time = _best_time(demo.func, test_calls)
        matching = [
            args
            for args in test_calls
            if all(dict(zip(param_names, args)).get(k) == v for k, v in bindings.items())
        ]
        stripped = [
            tuple(v for k, v in zip(param_names, args) if k not in bindings)
            for args in matching
        ]
        general_on_matching = _best_time(demo.func, matching)
        direct_time = _best_time(specialized, stripped)
        guarded_time = _best_time(dispatcher, test_calls)
        for args in test_calls:
            dispatcher(*args)
        guard_hit_rate = dispatcher.guard_hits / max(
            1, dispatcher.guard_hits + dispatcher.guard_misses
        )

        speedup_direct = general_on_matching / direct_time if direct_time > 0 else 1.0
        speedup_guarded = general_time / guarded_time if guarded_time > 0 else 1.0
        table.add_row(
            demo.name,
            ",".join(f"{k}={v}" for k, v in sorted(bindings.items())),
            percentage(mean_invariance),
            percentage(guard_hit_rate),
            speedup_direct,
            speedup_guarded,
        )
        data[demo.name] = {
            "bindings": {k: v for k, v in bindings.items()},
            "invariance": mean_invariance,
            "guard_hit_rate": guard_hit_rate,
            "speedup_direct": speedup_direct,
            "speedup_guarded": speedup_guarded,
            "folds": specialized.__vp_folds__,
            "pruned": specialized.__vp_pruned__,
        }
    return make_result("table-specialization", table.render(), data)


@experiment(
    "table-pyprof",
    "Value profiling of Python code (host-language front end)",
    "Reproduction extension (per the repro hint: bytecode/AST "
    "instrumentation in the host language)",
    "The same TNV machinery applied to Python functions finds the same "
    "phenomenon: arguments and assignments are heavily semi-invariant.",
)
def table_pyprof(scale: float = 1.0):
    from repro.workloads import perl as perl_module
    from repro.workloads.registry import get_workload

    table = Table(
        ("target", "frontend", "sites", "records", "Inv-Top1%", "Inv-All%", "LVP%"),
        title="Python-level value profiles of workload reference code",
    )
    data: Dict[str, dict] = {}

    # Function-call-level profiling of two reference implementations.
    for name in ("perl", "m88ksim"):
        workload = get_workload(name)
        dataset = workload.dataset("test", scale=scale * 0.5)
        database = profile_calls(workload.reference, [(dataset.values,)] * 3)
        summary = database.summary()
        table.add_row(
            f"{name}.reference",
            "call",
            len(database),
            summary.executions,
            percentage(summary.inv_top1),
            percentage(summary.inv_top_n),
            percentage(summary.lvp),
        )
        data[f"{name}.reference"] = {
            "sites": len(database),
            "records": summary.executions,
            "inv_top1": summary.inv_top1,
        }

    # Statement-level AST instrumentation of the perl reference.
    workload = get_workload("perl")
    dataset = workload.dataset("train", scale=scale * 0.5)
    instrumented = instrument_function(perl_module.reference)
    expected = workload.reference(dataset.values)
    got = instrumented(dataset.values)
    assert got == expected, "instrumented reference diverged"
    database = instrumented.__vp_database__
    summary = database.summary()
    table.add_row(
        "perl.reference",
        "ast",
        len(database),
        summary.executions,
        percentage(summary.inv_top1),
        percentage(summary.inv_top_n),
        percentage(summary.lvp),
    )
    rows = database.metrics_by_site()
    semi = [(site, m) for site, m in rows if m.inv_top1 >= 0.5 and m.executions >= 50]
    data["perl.reference.ast"] = {
        "sites": len(database),
        "records": summary.executions,
        "inv_top1": summary.inv_top1,
        "semi_invariant_sites": [site.label for site, _ in semi],
    }
    detail = Table(
        ("site", "execs", "Inv-Top1%", "LVP%", "Diff"),
        title="Hottest AST-instrumented sites in perl.reference",
    )
    for site, metrics in rows[:8]:
        detail.add_row(
            site.label,
            metrics.executions,
            percentage(metrics.inv_top1),
            percentage(metrics.lvp),
            metrics.distinct,
        )
    text = table.render() + "\n\n" + detail.render()
    return make_result("table-pyprof", text, data)
