"""Experiment registry: every table and figure of the paper.

Each experiment is a named, self-describing runner that regenerates
one artifact of the evaluation (see DESIGN.md's experiment index).
Runners return an :class:`ExperimentResult` whose ``text`` is the
rendered table/figure and whose ``data`` carries the raw numbers for
tests and for EXPERIMENTS.md.

Usage::

    from repro.analysis import experiments
    result = experiments.run("table-load-values", scale=0.5)
    print(result.text)

``scale`` shrinks workload inputs proportionally; 1.0 is the default
experiment size used in EXPERIMENTS.md.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.profile import TNVConfig
from repro.errors import ExperimentError
from repro.isa.instrument import ProfileTarget
from repro.obs import METRICS, TRACER, get_logger
from repro.workloads.harness import ProfiledRun, profile_workload, trace_workload
from repro.workloads.registry import get_workload, workload_names

_LOG = get_logger(__name__)


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one experiment run."""

    experiment: str
    title: str
    text: str
    data: dict


@dataclass(frozen=True)
class Experiment:
    """One registered experiment.

    ``deterministic`` marks experiments whose rendered text is a pure
    function of (code, scale).  Experiments that measure real wall
    clock (e.g. memoization/specialization speedups) are flagged
    ``False``; their numbers vary run to run even serially, so tests
    and the parallel-runner identity guarantee exclude them.
    """

    id: str
    title: str
    paper_artifact: str
    claim: str
    runner: Callable[[float], ExperimentResult] = field(compare=False)
    deterministic: bool = True


_REGISTRY: Dict[str, Experiment] = {}


def experiment(
    id: str,
    title: str,
    paper_artifact: str,
    claim: str,
    deterministic: bool = True,
):
    """Decorator registering ``runner(scale) -> ExperimentResult``."""

    def decorate(runner: Callable[[float], ExperimentResult]) -> Callable:
        if id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {id!r}")
        _REGISTRY[id] = Experiment(
            id, title, paper_artifact, claim, runner, deterministic
        )
        return runner

    return decorate


def make_result(id: str, text: str, data: dict) -> ExperimentResult:
    return ExperimentResult(id, _REGISTRY[id].title, text, data)


def run(id: str, scale: float = 1.0) -> ExperimentResult:
    """Run one experiment by id."""
    _ensure_loaded()
    exp = _REGISTRY.get(id)
    if exp is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(f"unknown experiment {id!r} (known: {known})")
    _LOG.info("running experiment %s (scale %s)", id, scale)
    with TRACER.span("experiment", experiment=id, scale=scale), METRICS.time(
        f"experiment.{id}"
    ):
        result = exp.runner(scale)
    _LOG.info("finished experiment %s", id)
    return result


def run_all(
    scale: float = 1.0,
    jobs: int = 1,
    ids: Optional[Iterable[str]] = None,
    use_cache: bool = True,
) -> List[ExperimentResult]:
    """Run every experiment (or ``ids``), optionally across processes.

    Args:
        scale: workload input-size multiplier, as for :func:`run`.
        jobs: number of worker processes; ``1`` runs serially in this
            process and ``0`` uses every CPU.  Parallel runs fan the
            experiments out over a
            ``ProcessPoolExecutor`` and return results in the same
            order as the serial path, with identical rendered text.
        ids: subset of experiment ids (defaults to all, sorted).
        use_cache: consult/write the persistent profile cache.

    Returns results in sorted-id order (the CLI's printing order).
    """
    _ensure_loaded()
    selected = sorted(_REGISTRY) if ids is None else list(ids)
    for eid in selected:
        if eid not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise ExperimentError(f"unknown experiment {eid!r} (known: {known})")
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    _LOG.info(
        "run_all: %d experiment(s), scale %s, jobs %d", len(selected), scale, jobs
    )
    with TRACER.span("run_all", experiments=len(selected), scale=scale, jobs=jobs):
        if jobs == 1 or len(selected) <= 1:
            if use_cache:
                return [run(eid, scale) for eid in selected]
            with caching_disabled():
                return [run(eid, scale) for eid in selected]
        from repro.analysis.parallel import run_experiments

        return run_experiments(selected, scale=scale, jobs=jobs, use_cache=use_cache)


def all_experiments() -> List[Experiment]:
    _ensure_loaded()
    return [_REGISTRY[eid] for eid in sorted(_REGISTRY)]


def experiment_ids() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def _ensure_loaded() -> None:
    if _REGISTRY:
        return
    from repro.analysis import (  # noqa: F401  (registration side effect)
        exp_extensions,
        exp_predictors,
        exp_profiles,
        exp_sampling,
        exp_specialize,
    )


# ----------------------------------------------------------------------
# profiled-run caches
# ----------------------------------------------------------------------
#
# Two levels.  L1 is the original same-process memo (experiments in one
# process share runs).  L2 is a persistent on-disk cache keyed by
# (workload, variant, scale, targets, TNV config) *plus a hash of the
# package source tree*, so any code change invalidates every entry
# automatically.  The disk cache stores full-fidelity pickles —
# including exact reference histograms — so a cache hit is
# indistinguishable from re-profiling.

_RUN_CACHE: Dict[Tuple, ProfiledRun] = {}
_TRACE_CACHE: Dict[Tuple, dict] = {}

#: bumped when the cached payload layout changes.
CACHE_VERSION = 1

_CACHE_ENABLED = os.environ.get("REPRO_NO_CACHE", "") == ""
_SOURCE_HASH: Optional[str] = None


def cache_dir() -> Path:
    """Where persistent profile pickles live.

    ``REPRO_CACHE_DIR`` overrides the default of
    ``~/.cache/repro-value-profiling``.
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-value-profiling"


def cache_enabled() -> bool:
    """Whether the persistent disk cache is consulted and written."""
    return _CACHE_ENABLED


def set_cache_enabled(enabled: bool) -> None:
    """Globally enable/disable the persistent disk cache."""
    global _CACHE_ENABLED
    _CACHE_ENABLED = enabled


@contextmanager
def caching_disabled():
    """Context manager: run with the disk cache off (benchmarks use
    this so every measured run pays its real profiling cost)."""
    previous = _CACHE_ENABLED
    set_cache_enabled(False)
    try:
        yield
    finally:
        set_cache_enabled(previous)


def source_tree_hash() -> str:
    """Hash of every ``repro`` source file, computed once per process.

    Part of every disk-cache key: editing any module under the package
    silently invalidates all cached profiles, which is the only safe
    default for a cache of derived results.
    """
    global _SOURCE_HASH
    if _SOURCE_HASH is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _SOURCE_HASH = digest.hexdigest()
    return _SOURCE_HASH


def _cache_path(kind: str, key: Tuple) -> Path:
    raw = repr((CACHE_VERSION, source_tree_hash(), kind, key)).encode()
    return cache_dir() / f"{kind}-{hashlib.sha256(raw).hexdigest()[:32]}.pkl"


def _cache_load(path: Path):
    """Best-effort read of one cache entry; corrupt entries read as misses."""
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except (OSError, pickle.PickleError, EOFError, AttributeError):
        return None


def _cache_store(path: Path, payload) -> None:
    """Best-effort atomic write; a full disk never fails the profile run."""
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except (OSError, pickle.PickleError):
        pass


def profiled(
    name: str,
    variant: str = "train",
    scale: float = 1.0,
    targets: Iterable[ProfileTarget] = (ProfileTarget.INSTRUCTIONS, ProfileTarget.LOADS),
    config: Optional[TNVConfig] = None,
) -> ProfiledRun:
    """Cached :func:`profile_workload` (L1 memo + persistent L2)."""
    target_key = tuple(sorted(t.value for t in targets))
    config_key = (
        (config.capacity, config.steady, config.clear_interval) if config else None
    )
    key = (name, variant, scale, target_key, config_key)
    cached = _RUN_CACHE.get(key)
    if cached is not None:
        METRICS.inc("cache.memory_hits")
        return cached
    disk_path = _cache_path("profile", key) if _CACHE_ENABLED else None
    if disk_path is not None:
        payload = _cache_load(disk_path)
        if payload is not None:
            METRICS.inc("cache.disk_hits")
            _LOG.debug("disk cache hit: profile %s/%s scale %s", name, variant, scale)
            run = ProfiledRun(
                workload=get_workload(name),
                dataset=payload["dataset"],
                result=payload["result"],
                database=payload["database"],
            )
            _RUN_CACHE[key] = run
            return run
    METRICS.inc("cache.misses")
    _LOG.debug("cache miss: profiling %s/%s scale %s", name, variant, scale)
    with TRACER.span(
        "profile-workload", workload=name, variant=variant, scale=scale
    ), METRICS.time("profile_workload"):
        run = profile_workload(
            name, variant, scale=scale, targets=targets, config=config
        )
    _RUN_CACHE[key] = run
    if disk_path is not None:
        # The workload object holds unpicklable builder callables; it is
        # reattached from the registry on load.
        METRICS.inc("cache.writes")
        _cache_store(
            disk_path,
            {"dataset": run.dataset, "result": run.result, "database": run.database},
        )
    return run


def traced(
    name: str,
    variant: str = "train",
    scale: float = 1.0,
    targets: Iterable[ProfileTarget] = (ProfileTarget.INSTRUCTIONS,),
) -> dict:
    """Cached :func:`trace_workload` (L1 memo + persistent L2)."""
    target_key = tuple(sorted(t.value for t in targets))
    key = (name, variant, scale, target_key)
    cached = _TRACE_CACHE.get(key)
    if cached is not None:
        METRICS.inc("cache.memory_hits")
        return cached
    disk_path = _cache_path("trace", key) if _CACHE_ENABLED else None
    if disk_path is not None:
        payload = _cache_load(disk_path)
        if payload is not None:
            METRICS.inc("cache.disk_hits")
            _LOG.debug("disk cache hit: trace %s/%s scale %s", name, variant, scale)
            _TRACE_CACHE[key] = payload
            return payload
    METRICS.inc("cache.misses")
    _LOG.debug("cache miss: tracing %s/%s scale %s", name, variant, scale)
    with TRACER.span(
        "trace-workload", workload=name, variant=variant, scale=scale
    ), METRICS.time("trace_workload"):
        cached = trace_workload(name, variant, scale=scale, targets=targets)
    _TRACE_CACHE[key] = cached
    if disk_path is not None:
        METRICS.inc("cache.writes")
        _cache_store(disk_path, cached)
    return cached


def clear_caches() -> None:
    """Drop in-process memoized runs (tests use this to control memory).

    Leaves the disk cache alone; use :func:`clear_disk_cache` for that.
    """
    _RUN_CACHE.clear()
    _TRACE_CACHE.clear()


def clear_disk_cache() -> int:
    """Delete every persistent cache entry; returns the number removed."""
    removed = 0
    directory = cache_dir()
    if directory.is_dir():
        for path in directory.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed


def programs() -> List[str]:
    """The benchmark programs, in report order."""
    return workload_names()
