"""Experiment registry: every table and figure of the paper.

Each experiment is a named, self-describing runner that regenerates
one artifact of the evaluation (see DESIGN.md's experiment index).
Runners return an :class:`ExperimentResult` whose ``text`` is the
rendered table/figure and whose ``data`` carries the raw numbers for
tests and for EXPERIMENTS.md.

Usage::

    from repro.analysis import experiments
    result = experiments.run("table-load-values", scale=0.5)
    print(result.text)

``scale`` shrinks workload inputs proportionally; 1.0 is the default
experiment size used in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core import diskcache, tracestore
from repro.core.diskcache import (  # noqa: F401  (re-exported compat surface)
    CACHE_VERSION,
    cache_dir,
    cache_enabled,
    caching_disabled,
    clear_disk_cache,
    set_cache_enabled,
    source_tree_hash,
)
from repro.core.profile import TNVConfig
from repro.core.tracestore import EventTrace
from repro.errors import ExperimentError
from repro.isa.instrument import ProfileTarget
from repro.obs import METRICS, TRACER, get_logger
from repro.workloads.harness import (
    ProfiledRun,
    capture_workload_events,
    profile_workload,
    trace_workload,
)
from repro.workloads.registry import get_workload, workload_names

_LOG = get_logger(__name__)


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one experiment run."""

    experiment: str
    title: str
    text: str
    data: dict


@dataclass(frozen=True)
class Experiment:
    """One registered experiment.

    ``deterministic`` marks experiments whose rendered text is a pure
    function of (code, scale).  Experiments that measure real wall
    clock (e.g. memoization/specialization speedups) are flagged
    ``False``; their numbers vary run to run even serially, so tests
    and the parallel-runner identity guarantee exclude them.
    """

    id: str
    title: str
    paper_artifact: str
    claim: str
    runner: Callable[[float], ExperimentResult] = field(compare=False)
    deterministic: bool = True


_REGISTRY: Dict[str, Experiment] = {}


def experiment(
    id: str,
    title: str,
    paper_artifact: str,
    claim: str,
    deterministic: bool = True,
):
    """Decorator registering ``runner(scale) -> ExperimentResult``."""

    def decorate(runner: Callable[[float], ExperimentResult]) -> Callable:
        if id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {id!r}")
        _REGISTRY[id] = Experiment(
            id, title, paper_artifact, claim, runner, deterministic
        )
        return runner

    return decorate


def make_result(id: str, text: str, data: dict) -> ExperimentResult:
    return ExperimentResult(id, _REGISTRY[id].title, text, data)


def run(id: str, scale: float = 1.0) -> ExperimentResult:
    """Run one experiment by id."""
    _ensure_loaded()
    exp = _REGISTRY.get(id)
    if exp is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(f"unknown experiment {id!r} (known: {known})")
    _LOG.info("running experiment %s (scale %s)", id, scale)
    try:
        with TRACER.span("experiment", experiment=id, scale=scale), METRICS.time(
            f"experiment.{id}"
        ):
            result = exp.runner(scale)
    except Exception:
        # Crash forensics: dump the flight ring (a no-op unless the
        # recorder is enabled) before the failure propagates, so the
        # last events before the raise survive without a re-run.
        from repro.obs.flight import FLIGHT

        dumped = FLIGHT.dump_on_crash(id)
        if dumped is not None:
            _LOG.error("experiment %s raised; flight ring dumped to %s", id, dumped)
        raise
    _LOG.info("finished experiment %s", id)
    return result


def run_all(
    scale: float = 1.0,
    jobs: int = 1,
    ids: Optional[Iterable[str]] = None,
    use_cache: bool = True,
) -> List[ExperimentResult]:
    """Run every experiment (or ``ids``), optionally across processes.

    Args:
        scale: workload input-size multiplier, as for :func:`run`.
        jobs: number of worker processes; ``1`` runs serially in this
            process and ``0`` uses every CPU.  Parallel runs fan the
            experiments out over a
            ``ProcessPoolExecutor`` and return results in the same
            order as the serial path, with identical rendered text.
        ids: subset of experiment ids (defaults to all, sorted).
        use_cache: consult/write the persistent profile cache.

    Returns results in sorted-id order (the CLI's printing order).
    """
    _ensure_loaded()
    selected = sorted(_REGISTRY) if ids is None else list(ids)
    for eid in selected:
        if eid not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise ExperimentError(f"unknown experiment {eid!r} (known: {known})")
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    _LOG.info(
        "run_all: %d experiment(s), scale %s, jobs %d", len(selected), scale, jobs
    )
    with TRACER.span("run_all", experiments=len(selected), scale=scale, jobs=jobs):
        if jobs == 1 or len(selected) <= 1:
            if use_cache:
                return [run(eid, scale) for eid in selected]
            with caching_disabled():
                return [run(eid, scale) for eid in selected]
        from repro.analysis.parallel import run_experiments

        return run_experiments(selected, scale=scale, jobs=jobs, use_cache=use_cache)


def all_experiments() -> List[Experiment]:
    _ensure_loaded()
    return [_REGISTRY[eid] for eid in sorted(_REGISTRY)]


def experiment_ids() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def _ensure_loaded() -> None:
    if _REGISTRY:
        return
    from repro.analysis import (  # noqa: F401  (registration side effect)
        exp_extensions,
        exp_predictors,
        exp_profiles,
        exp_sampling,
        exp_specialize,
    )


# ----------------------------------------------------------------------
# simulate-once event store + profiled-run caches
# ----------------------------------------------------------------------
#
# The expensive resource is the interpreter.  Everything an experiment
# consumes — TNV profiles, per-site value traces, global-order event
# lists — is a pure function of one captured event stream per
# (workload, variant, scale), so :func:`load_events` simulates each
# input at most once per process (L1 memo) and at most once per source
# tree (L2 pickle via :mod:`repro.core.diskcache`); :func:`profiled`
# and :func:`traced` replay from it.  ``REPRO_NO_REPLAY=1`` (or
# :func:`set_replay_enabled`) falls back to the original
# simulate-per-consumer paths, which the CI equivalence job uses to
# prove replays are byte-identical.
#
# On top of the event store sit the original L1 memos (experiments in
# one process share already-replayed runs); with replay disabled, the
# original L2 profile/trace pickles are consulted as before.

_RUN_CACHE: Dict[Tuple, ProfiledRun] = {}
_TRACE_CACHE: Dict[Tuple, dict] = {}
_TRACE_INFO: Dict[Tuple, dict] = {}
_EVENT_CACHE: Dict[Tuple, EventTrace] = {}

_REPLAY_ENABLED = os.environ.get("REPRO_NO_REPLAY", "") == ""


def replay_enabled() -> bool:
    """Whether profiled/traced replay from the event-trace store."""
    return _REPLAY_ENABLED


def set_replay_enabled(enabled: bool) -> None:
    """Globally enable/disable trace-store replay (fresh simulation)."""
    global _REPLAY_ENABLED
    _REPLAY_ENABLED = enabled


def load_events(name: str, variant: str = "train", scale: float = 1.0) -> EventTrace:
    """The full event trace for one (workload, variant, scale) input.

    Simulates once on first use; afterwards every consumer replays the
    same captured stream (L1 in-process, L2 on disk unless caching is
    off).
    """
    key = (name, variant, scale)
    trace = _EVENT_CACHE.get(key)
    if trace is not None:
        METRICS.inc("tracestore.memory_hits")
        return trace
    disk_path = (
        diskcache.cache_path("events", key) if diskcache.cache_enabled() else None
    )
    if disk_path is not None:
        payload = diskcache.cache_load(disk_path)
        if payload is not None:
            try:
                trace = EventTrace.from_payload(payload)
            except tracestore.TraceStoreError:
                trace = None
            if trace is not None:
                METRICS.inc("tracestore.disk_hits")
                _LOG.debug("event store disk hit: %s/%s scale %s", name, variant, scale)
                _EVENT_CACHE[key] = trace
                return trace
    METRICS.inc("tracestore.captures")
    _LOG.debug("event store miss: simulating %s/%s scale %s", name, variant, scale)
    with METRICS.time("tracestore.capture"):
        trace = capture_workload_events(name, variant, scale=scale)
    _EVENT_CACHE[key] = trace
    if disk_path is not None:
        METRICS.inc("tracestore.writes")
        diskcache.cache_store(disk_path, trace.to_payload())
    return trace


def clear_event_cache() -> None:
    """Drop in-process event traces (tests use this to control memory)."""
    _EVENT_CACHE.clear()


def profiled(
    name: str,
    variant: str = "train",
    scale: float = 1.0,
    targets: Iterable[ProfileTarget] = (ProfileTarget.INSTRUCTIONS, ProfileTarget.LOADS),
    config: Optional[TNVConfig] = None,
) -> ProfiledRun:
    """Cached profiled run: replay from the event store (or simulate).

    With replay on (the default), the run's database is rebuilt from
    the shared event trace — byte-identical to a live
    :func:`profile_workload` (all database queries sort, and per-site
    batch replay is state-identical per site).  With replay off, falls
    back to the original simulate-per-call path with its own L2 pickle.
    """
    target_key = tuple(sorted(t.value for t in targets))
    config_key = (
        (config.capacity, config.steady, config.clear_interval) if config else None
    )
    key = (name, variant, scale, target_key, config_key)
    cached = _RUN_CACHE.get(key)
    if cached is not None:
        METRICS.inc("cache.memory_hits")
        return cached
    if _REPLAY_ENABLED:
        trace = load_events(name, variant, scale)
        with TRACER.span(
            "replay-profile", workload=name, variant=variant, scale=scale
        ), METRICS.time("tracestore.replay"):
            database = tracestore.replay_profile(
                trace, targets, config=config, name=trace.dataset.name
            )
        run = ProfiledRun(
            workload=get_workload(name),
            dataset=trace.dataset,
            result=trace.result,
            database=database,
        )
        _RUN_CACHE[key] = run
        return run
    disk_path = (
        diskcache.cache_path("profile", key) if diskcache.cache_enabled() else None
    )
    if disk_path is not None:
        payload = diskcache.cache_load(disk_path)
        if payload is not None:
            METRICS.inc("cache.disk_hits")
            _LOG.debug("disk cache hit: profile %s/%s scale %s", name, variant, scale)
            run = ProfiledRun(
                workload=get_workload(name),
                dataset=payload["dataset"],
                result=payload["result"],
                database=payload["database"],
            )
            _RUN_CACHE[key] = run
            return run
    METRICS.inc("cache.misses")
    _LOG.debug("cache miss: profiling %s/%s scale %s", name, variant, scale)
    with TRACER.span(
        "profile-workload", workload=name, variant=variant, scale=scale
    ), METRICS.time("profile_workload"):
        run = profile_workload(
            name, variant, scale=scale, targets=targets, config=config
        )
    _RUN_CACHE[key] = run
    if disk_path is not None:
        # The workload object holds unpicklable builder callables; it is
        # reattached from the registry on load.
        METRICS.inc("cache.writes")
        diskcache.cache_store(
            disk_path,
            {"dataset": run.dataset, "result": run.result, "database": run.database},
        )
    return run


def traced(
    name: str,
    variant: str = "train",
    scale: float = 1.0,
    targets: Iterable[ProfileTarget] = (ProfileTarget.INSTRUCTIONS,),
) -> dict:
    """Cached per-site value traces: replay from the event store.

    Same contract as :func:`trace_workload` — a dict of ordered
    per-site value lists, sites in first-event order.  Provenance for
    the most recent collection of each key (event count, dropped
    count, replay vs. simulation) is available via :func:`trace_info`.
    """
    target_key = tuple(sorted(t.value for t in targets))
    key = (name, variant, scale, target_key)
    cached = _TRACE_CACHE.get(key)
    if cached is not None:
        METRICS.inc("cache.memory_hits")
        return cached
    if _REPLAY_ENABLED:
        trace = load_events(name, variant, scale)
        with TRACER.span(
            "replay-traces", workload=name, variant=variant, scale=scale
        ), METRICS.time("tracestore.replay"):
            traces, dropped = tracestore.replay_site_traces(trace, targets)
        _TRACE_CACHE[key] = traces
        _TRACE_INFO[key] = {
            "source": "replay",
            "events": sum(len(v) for v in traces.values()),
            "dropped": dropped,
        }
        return traces
    disk_path = (
        diskcache.cache_path("trace", key) if diskcache.cache_enabled() else None
    )
    if disk_path is not None:
        payload = diskcache.cache_load(disk_path)
        if payload is not None:
            METRICS.inc("cache.disk_hits")
            _LOG.debug("disk cache hit: trace %s/%s scale %s", name, variant, scale)
            _TRACE_CACHE[key] = payload["traces"]
            _TRACE_INFO[key] = payload["info"]
            return payload["traces"]
    METRICS.inc("cache.misses")
    _LOG.debug("cache miss: tracing %s/%s scale %s", name, variant, scale)
    with TRACER.span(
        "trace-workload", workload=name, variant=variant, scale=scale
    ), METRICS.time("trace_workload"):
        traces = trace_workload(name, variant, scale=scale, targets=targets)
    info = {
        "source": "simulation",
        "events": sum(len(v) for v in traces.values()),
        "dropped": 0,
    }
    _TRACE_CACHE[key] = traces
    _TRACE_INFO[key] = info
    if disk_path is not None:
        METRICS.inc("cache.writes")
        diskcache.cache_store(disk_path, {"traces": traces, "info": info})
    return traces


def trace_info(
    name: str,
    variant: str = "train",
    scale: float = 1.0,
    targets: Iterable[ProfileTarget] = (ProfileTarget.INSTRUCTIONS,),
) -> dict:
    """Provenance of the matching :func:`traced` collection.

    Returns ``{"source", "events", "dropped"}``; collects the trace
    first if it has not been requested yet.
    """
    target_key = tuple(sorted(t.value for t in targets))
    key = (name, variant, scale, target_key)
    if key not in _TRACE_INFO:
        traced(name, variant, scale, targets)
    return dict(
        _TRACE_INFO.get(
            key, {"source": "memory", "events": None, "dropped": None}
        )
    )


def clear_caches() -> None:
    """Drop in-process memoized runs (tests use this to control memory).

    Leaves the disk cache alone; use
    :func:`repro.core.diskcache.clear_disk_cache` for that.
    """
    _RUN_CACHE.clear()
    _TRACE_CACHE.clear()
    _TRACE_INFO.clear()
    _EVENT_CACHE.clear()


def programs() -> List[str]:
    """The benchmark programs, in report order."""
    return workload_names()
