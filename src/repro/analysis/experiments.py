"""Experiment registry: every table and figure of the paper.

Each experiment is a named, self-describing runner that regenerates
one artifact of the evaluation (see DESIGN.md's experiment index).
Runners return an :class:`ExperimentResult` whose ``text`` is the
rendered table/figure and whose ``data`` carries the raw numbers for
tests and for EXPERIMENTS.md.

Usage::

    from repro.analysis import experiments
    result = experiments.run("table-load-values", scale=0.5)
    print(result.text)

``scale`` shrinks workload inputs proportionally; 1.0 is the default
experiment size used in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.profile import TNVConfig
from repro.errors import ExperimentError
from repro.isa.instrument import ProfileTarget
from repro.workloads.harness import ProfiledRun, profile_workload, trace_workload
from repro.workloads.registry import workload_names


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one experiment run."""

    experiment: str
    title: str
    text: str
    data: dict


@dataclass(frozen=True)
class Experiment:
    """One registered experiment."""

    id: str
    title: str
    paper_artifact: str
    claim: str
    runner: Callable[[float], ExperimentResult] = field(compare=False)


_REGISTRY: Dict[str, Experiment] = {}


def experiment(id: str, title: str, paper_artifact: str, claim: str):
    """Decorator registering ``runner(scale) -> ExperimentResult``."""

    def decorate(runner: Callable[[float], ExperimentResult]) -> Callable:
        if id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {id!r}")
        _REGISTRY[id] = Experiment(id, title, paper_artifact, claim, runner)
        return runner

    return decorate


def make_result(id: str, text: str, data: dict) -> ExperimentResult:
    return ExperimentResult(id, _REGISTRY[id].title, text, data)


def run(id: str, scale: float = 1.0) -> ExperimentResult:
    """Run one experiment by id."""
    _ensure_loaded()
    exp = _REGISTRY.get(id)
    if exp is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(f"unknown experiment {id!r} (known: {known})")
    return exp.runner(scale)


def all_experiments() -> List[Experiment]:
    _ensure_loaded()
    return [_REGISTRY[eid] for eid in sorted(_REGISTRY)]


def experiment_ids() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def _ensure_loaded() -> None:
    if _REGISTRY:
        return
    from repro.analysis import (  # noqa: F401  (registration side effect)
        exp_extensions,
        exp_predictors,
        exp_profiles,
        exp_sampling,
        exp_specialize,
    )


# ----------------------------------------------------------------------
# shared profiled-run cache (experiments in one process share runs)
# ----------------------------------------------------------------------

_RUN_CACHE: Dict[Tuple, ProfiledRun] = {}
_TRACE_CACHE: Dict[Tuple, dict] = {}


def profiled(
    name: str,
    variant: str = "train",
    scale: float = 1.0,
    targets: Iterable[ProfileTarget] = (ProfileTarget.INSTRUCTIONS, ProfileTarget.LOADS),
    config: Optional[TNVConfig] = None,
) -> ProfiledRun:
    """Cached :func:`profile_workload` (same-process memoization)."""
    target_key = tuple(sorted(t.value for t in targets))
    config_key = (
        (config.capacity, config.steady, config.clear_interval) if config else None
    )
    key = (name, variant, scale, target_key, config_key)
    cached = _RUN_CACHE.get(key)
    if cached is None:
        cached = profile_workload(name, variant, scale=scale, targets=targets, config=config)
        _RUN_CACHE[key] = cached
    return cached


def traced(
    name: str,
    variant: str = "train",
    scale: float = 1.0,
    targets: Iterable[ProfileTarget] = (ProfileTarget.INSTRUCTIONS,),
) -> dict:
    """Cached :func:`trace_workload`."""
    target_key = tuple(sorted(t.value for t in targets))
    key = (name, variant, scale, target_key)
    cached = _TRACE_CACHE.get(key)
    if cached is None:
        cached = trace_workload(name, variant, scale=scale, targets=targets)
        _TRACE_CACHE[key] = cached
    return cached


def clear_caches() -> None:
    """Drop memoized runs (tests use this to control memory)."""
    _RUN_CACHE.clear()
    _TRACE_CACHE.clear()


def programs() -> List[str]:
    """The benchmark programs, in report order."""
    return workload_names()
