"""Profile experiments: the paper's core tables and distribution figures.

Covers the benchmark-characteristics table (III.A.1), per-program
load-value and all-instruction metrics (V.1/V.2), the instruction-class
breakdown (V.3), the top-procedures table (V.4), the train-vs-test
comparison (V.5 — named explicitly in the supplied text), the
invariance-distribution quantile figures (§III.D), and the
memory-location and parameter profiles (thesis chapters VI-IX).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.analysis.experiments import experiment, make_result, profiled, programs
from repro.analysis.figures import bar_chart
from repro.analysis.quantile import invariance_buckets
from repro.analysis.tables import METRICS_COLUMNS, Table, metrics_row, percentage
from repro.core.metrics import SiteMetrics, aggregate_metrics
from repro.core.sites import SiteKind
from repro.isa.instructions import OPCODES
from repro.isa.instrument import ProfileTarget
from repro.workloads.harness import run_workload
from repro.workloads.registry import get_workload


@experiment(
    "table-benchmarks",
    "Benchmark programs and data sets",
    "Thesis Table III.A.1",
    "Each program runs two input sets (train/test) of different sizes.",
)
def table_benchmarks(scale: float = 1.0):
    table = Table(
        ("program", "SPEC analogue", "input", "input words", "instructions"),
        title="Benchmark characteristics (VPA instruction counts)",
    )
    data: Dict[str, dict] = {}
    for name in programs():
        workload = get_workload(name)
        entry = {}
        for variant in ("train", "test"):
            dataset = workload.dataset(variant, scale=scale)
            result = run_workload(name, variant, scale=scale)
            table.add_row(
                name,
                workload.spec_analogue,
                variant,
                len(dataset.values),
                result.instructions_executed,
            )
            entry[variant] = {
                "input_words": len(dataset.values),
                "instructions": result.instructions_executed,
                "loads": result.dynamic_loads,
                "stores": result.dynamic_stores,
                "calls": result.dynamic_calls,
            }
        data[name] = entry
    return make_result("table-benchmarks", table.render(), data)


def _metrics_table(title: str, kind: SiteKind, targets, scale: float, experiment_id: str):
    table = Table(METRICS_COLUMNS, title=title)
    rows: List[SiteMetrics] = []
    data: Dict[str, dict] = {}
    for name in programs():
        run = profiled(name, "train", scale=scale, targets=targets)
        summary = run.database.summary(kind)
        table.add_row(*metrics_row(name, summary))
        rows.append(summary)
        data[name] = summary.as_percentages()
        data[name]["sites"] = len(run.database.sites(kind))
    table.add_separator()
    average = aggregate_metrics(rows)
    table.add_row(*metrics_row("average", average))
    data["average"] = average.as_percentages()
    return make_result(experiment_id, table.render(), data)


@experiment(
    "table-load-values",
    "Load-value profile per program",
    "Thesis Table V.1 / MICRO'97 load-value table",
    "Load values are substantially invariant: a large fraction of loads "
    "fetch the value the top-1/top-10 entries of their TNV table predict.",
)
def table_load_values(scale: float = 1.0):
    return _metrics_table(
        "Load-value metrics (train input, execution-weighted)",
        SiteKind.LOAD,
        (ProfileTarget.LOADS,),
        scale,
        "table-load-values",
    )


@experiment(
    "table-all-instructions",
    "All-instruction value profile per program",
    "Thesis Table V.2 / MICRO'97 all-instruction table",
    "Register-defining instructions as a whole are less invariant than "
    "loads but still show strong value locality, with a visible %Zeros mass.",
)
def table_all_instructions(scale: float = 1.0):
    return _metrics_table(
        "All register-defining instruction metrics (train input)",
        SiteKind.INSTRUCTION,
        (ProfileTarget.INSTRUCTIONS,),
        scale,
        "table-all-instructions",
    )


@experiment(
    "table-insn-classes",
    "Invariance by instruction class",
    "Thesis Table V.3",
    "Invariance differs sharply by instruction class: compares/moves are "
    "most invariant, loads intermediate, multiplies/adds least.",
)
def table_insn_classes(scale: float = 1.0):
    grouped: Dict[str, List[SiteMetrics]] = {}
    for name in programs():
        run = profiled(name, "train", scale=scale, targets=(ProfileTarget.INSTRUCTIONS,))
        for profile in run.database.profiles(SiteKind.INSTRUCTION):
            insn_class = OPCODES[profile.site.opcode].insn_class.value
            grouped.setdefault(insn_class, []).append(profile.metrics())
    table = Table(
        ("class", "execs", "LVP%", "Inv-Top1%", "Inv-All%", "%Zeros"),
        title="Invariance by instruction class (all programs, train)",
    )
    data = {}
    for insn_class in sorted(grouped):
        summary = aggregate_metrics(grouped[insn_class])
        table.add_row(
            insn_class,
            summary.executions,
            percentage(summary.lvp),
            percentage(summary.inv_top1),
            percentage(summary.inv_top_n),
            percentage(summary.pct_zeros),
        )
        data[insn_class] = summary.as_percentages()
    return make_result("table-insn-classes", table.render(), data)


@experiment(
    "table-top-procedures",
    "Top procedures by dynamic loads",
    "Thesis Table V.4",
    "A handful of procedures carry most dynamic loads, so profiling "
    "effort can focus on them.",
)
def table_top_procedures(scale: float = 1.0):
    table = Table(
        ("program", "procedure", "load share%", "Inv-Top1%", "LVP%"),
        title="Hottest procedures by dynamic load count (train)",
    )
    data: Dict[str, list] = {}
    for name in programs():
        run = profiled(name, "train", scale=scale, targets=(ProfileTarget.LOADS,))
        by_proc = run.database.summary_by_procedure(SiteKind.LOAD)
        total = sum(m.executions for m in by_proc.values()) or 1
        ranked = sorted(by_proc.items(), key=lambda item: -item[1].executions)
        rows = []
        for proc, summary in ranked[:3]:
            share = summary.executions / total
            table.add_row(
                name,
                proc or "(toplevel)",
                percentage(share),
                percentage(summary.inv_top1),
                percentage(summary.lvp),
            )
            rows.append(
                {
                    "procedure": proc,
                    "share": share,
                    "inv_top1": summary.inv_top1,
                    "lvp": summary.lvp,
                }
            )
        data[name] = rows
    return make_result("table-top-procedures", table.render(), data)


def _pearson(xs: List[float], ys: List[float]) -> float:
    n = len(xs)
    if n < 2:
        return 1.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 1.0 if var_x == var_y else 0.0
    return cov / math.sqrt(var_x * var_y)


@experiment(
    "table-train-vs-test",
    "Load-value metrics on train vs test inputs",
    "Thesis Table V.5 (named in the supplied text)",
    "Value profiles transfer across inputs: per-site invariance on the "
    "train input correlates strongly with the test input (Wall [38]).",
)
def table_train_vs_test(scale: float = 1.0):
    table = Table(
        (
            "program",
            "LVP%(tr)",
            "LVP%(te)",
            "Inv1%(tr)",
            "Inv1%(te)",
            "InvAll%(tr)",
            "InvAll%(te)",
            "corr(site)",
        ),
        title="Load metrics: train vs test data set",
    )
    data: Dict[str, dict] = {}
    corrs: List[float] = []
    for name in programs():
        train = profiled(name, "train", scale=scale, targets=(ProfileTarget.LOADS,))
        test = profiled(name, "test", scale=scale, targets=(ProfileTarget.LOADS,))
        sum_train = train.database.summary(SiteKind.LOAD)
        sum_test = test.database.summary(SiteKind.LOAD)
        # Per-site invariance correlation over sites hot in both runs.
        xs, ys = [], []
        test_metrics = dict(test.database.metrics_by_site(SiteKind.LOAD))
        for site, metrics in train.database.metrics_by_site(SiteKind.LOAD):
            other = test_metrics.get(site)
            if other is not None and metrics.executions >= 10 and other.executions >= 10:
                xs.append(metrics.inv_top1)
                ys.append(other.inv_top1)
        corr = _pearson(xs, ys)
        corrs.append(corr)
        table.add_row(
            name,
            percentage(sum_train.lvp),
            percentage(sum_test.lvp),
            percentage(sum_train.inv_top1),
            percentage(sum_test.inv_top1),
            percentage(sum_train.inv_top_n),
            percentage(sum_test.inv_top_n),
            corr,
        )
        data[name] = {
            "train": sum_train.as_percentages(),
            "test": sum_test.as_percentages(),
            "site_correlation": corr,
            "common_sites": len(xs),
        }
    data["mean_correlation"] = sum(corrs) / len(corrs) if corrs else 0.0
    return make_result("table-train-vs-test", table.render(), data)


@experiment(
    "fig-invariance-distribution",
    "Distribution of load invariance (quantile graph)",
    "Thesis §III.D quantile graphs / MICRO'97 Figure 1",
    "The execution-weighted invariance distribution is bimodal: most "
    "dynamic loads come from sites that are either nearly variant or "
    "nearly invariant.",
)
def fig_invariance_distribution(scale: float = 1.0):
    charts: List[str] = []
    data: Dict[str, list] = {}
    combined: List[SiteMetrics] = []
    for name in programs():
        run = profiled(name, "train", scale=scale, targets=(ProfileTarget.LOADS,))
        rows = [m for _, m in run.database.metrics_by_site(SiteKind.LOAD)]
        combined.extend(rows)
        buckets = invariance_buckets(rows)
        charts.append(
            bar_chart(
                {b.label: 100.0 * b.share for b in buckets},
                title=f"{name}: execution share by Inv-Top1 bucket",
                max_value=100.0,
            )
        )
        data[name] = [
            {"bucket": b.label, "share": b.share, "sites": b.sites} for b in buckets
        ]
    all_buckets = invariance_buckets(combined)
    charts.append(
        bar_chart(
            {b.label: 100.0 * b.share for b in all_buckets},
            title="ALL programs: execution share by Inv-Top1 bucket",
            max_value=100.0,
        )
    )
    data["all"] = [
        {"bucket": b.label, "share": b.share, "sites": b.sites} for b in all_buckets
    ]
    return make_result("fig-invariance-distribution", "\n\n".join(charts), data)


@experiment(
    "table-memory-locations",
    "Value profile of memory locations",
    "Thesis memory-location chapters (title of the thesis)",
    "Stored-to memory words are even more invariant than load sites: "
    "many locations are written a single value repeatedly.",
)
def table_memory_locations(scale: float = 1.0):
    table = Table(
        ("program", "locations", "stores", "LVP%", "Inv-Top1%", "Inv-All%", "%Zeros"),
        title="Per-memory-word store-value metrics (train)",
    )
    data: Dict[str, dict] = {}
    rows: List[SiteMetrics] = []
    for name in programs():
        run = profiled(name, "train", scale=scale, targets=(ProfileTarget.MEMORY,))
        summary = run.database.summary(SiteKind.MEMORY)
        locations = len(run.database.sites(SiteKind.MEMORY))
        table.add_row(
            name,
            locations,
            summary.executions,
            percentage(summary.lvp),
            percentage(summary.inv_top1),
            percentage(summary.inv_top_n),
            percentage(summary.pct_zeros),
        )
        rows.append(summary)
        entry = summary.as_percentages()
        entry["locations"] = locations
        data[name] = entry
    table.add_separator()
    average = aggregate_metrics(rows)
    table.add_row(
        "average",
        "",
        average.executions,
        percentage(average.lvp),
        percentage(average.inv_top1),
        percentage(average.inv_top_n),
        percentage(average.pct_zeros),
    )
    data["average"] = average.as_percentages()
    return make_result("table-memory-locations", table.render(), data)


@experiment(
    "table-parameters",
    "Value profile of procedure parameters and return values",
    "Thesis parameter-profiling chapter",
    "Procedure parameters are heavily semi-invariant — the hook for "
    "code specialization (Chapter X) — and return values show the "
    "locality return-value prediction exploits.",
)
def table_parameters(scale: float = 1.0):
    table = Table(
        ("program", "param sites", "calls", "LVP%", "Inv-Top1%", "Inv-All%", "semi-inv%"),
        title="Parameter-value metrics at procedure entry (train)",
    )
    returns_table = Table(
        ("program", "return sites", "returns", "LVP%", "Inv-Top1%", "Inv-All%"),
        title="Return-value metrics at procedure exit (train)",
    )
    data: Dict[str, dict] = {}
    for name in programs():
        run = profiled(
            name,
            "train",
            scale=scale,
            targets=(ProfileTarget.PARAMETERS, ProfileTarget.RETURNS),
        )
        summary = run.database.summary(SiteKind.PARAMETER)
        rows = run.database.metrics_by_site(SiteKind.PARAMETER)
        semi = [m for _, m in rows if m.inv_top1 >= 0.5]
        semi_share = (
            sum(m.executions for m in semi) / summary.executions if summary.executions else 0.0
        )
        table.add_row(
            name,
            len(rows),
            summary.executions,
            percentage(summary.lvp),
            percentage(summary.inv_top1),
            percentage(summary.inv_top_n),
            percentage(semi_share),
        )
        entry = summary.as_percentages()
        entry["sites"] = len(rows)
        entry["semi_invariant_share"] = semi_share
        returns = run.database.summary(SiteKind.RETURN)
        return_rows = run.database.metrics_by_site(SiteKind.RETURN)
        returns_table.add_row(
            name,
            len(return_rows),
            returns.executions,
            percentage(returns.lvp),
            percentage(returns.inv_top1),
            percentage(returns.inv_top_n),
        )
        entry["returns"] = returns.as_percentages()
        entry["return_sites"] = len(return_rows)
        data[name] = entry
    text = table.render() + "\n\n" + returns_table.render()
    return make_result("table-parameters", text, data)


@experiment(
    "table-basic-blocks",
    "Basic block quantile table",
    "Thesis Table IV.1 (profiling-background chapter)",
    "Execution is heavily skewed toward few basic blocks: the hottest "
    "10% of blocks cover the bulk of dynamic instructions — the classic "
    "argument for focusing any profile (including value profiles) on "
    "hot code.",
)
def table_basic_blocks(scale: float = 1.0):
    from repro.isa.machine import Machine, block_counts

    quantiles = (0.01, 0.05, 0.10, 0.25, 0.50)
    table = Table(
        ("program", "blocks") + tuple(f"top {int(100 * q)}%" for q in quantiles),
        title="Cumulative share of dynamic instructions covered by the "
        "hottest basic blocks",
    )
    data: Dict[str, dict] = {}
    for name in programs():
        workload = get_workload(name)
        dataset = workload.dataset("train", scale=scale)
        machine = Machine(workload.program(), count_pcs=True)
        machine.set_input(dataset.values)
        machine.run()
        counts = block_counts(machine)
        blocks = workload.program().basic_blocks()
        # Weight per block: sum the exact per-pc counts inside it
        # (the dynamic instructions the block contributed).
        weights = []
        for block in blocks:
            weight = sum(machine.pc_counts[pc] for pc in range(block.start, block.end))
            weights.append(weight)
        weights.sort(reverse=True)
        total = sum(weights) or 1
        row = [name, len(blocks)]
        entry = {"blocks": len(blocks)}
        for q in quantiles:
            top_n = max(1, int(round(q * len(blocks))))
            share = sum(weights[:top_n]) / total
            row.append(percentage(share))
            entry[f"top_{int(100 * q)}pct"] = share
        table.add_row(*row)
        data[name] = entry
    shares = [entry["top_10pct"] for entry in data.values()]
    data["mean_top_10pct"] = sum(shares) / len(shares)
    return make_result("table-basic-blocks", table.render(), data)
