"""Extension experiments: the thesis' future-work directions.

Three directions the thesis names but does not evaluate, built on the
same machinery:

* ``table-calling-context`` — path-sensitive value profiling ("one
  could use an approach similar to Young and Smith [40] by using the
  path history… especially beneficial for procedures called from
  several locations in the program"): parameter sites keyed by calling
  site versus merged.
* ``table-load-speculation`` — profile-filtered software load
  speculation (Moudgill & Moreno [29]: "value profiling could support
  [their] approach to only reschedule loads with a high invariance.
  This could potentially decrease the number of mis-speculated
  loads."): value-checked speculation with and without a train-profile
  filter.
* ``table-memoization`` — Richardson [32]'s memoization cache, driven
  by a value profile of argument *tuples*.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.analysis.experiments import experiment, make_result, profiled, programs
from repro.analysis.tables import Table, percentage
from repro.core.metrics import aggregate_metrics
from repro.core.profile import ProfileDatabase
from repro.core.sites import SiteKind
from repro.isa.instrument import FanoutObserver, ProfileTarget, ValueProfiler
from repro.isa.machine import Machine
from repro.specialize.memoize import AdaptiveMemoizer, memoizability
from repro.workloads.registry import get_workload


@experiment(
    "table-calling-context",
    "Calling-context-sensitive parameter profiling",
    "Thesis future work (path history, after Young & Smith [40])",
    "Splitting a procedure's parameter profile per calling site never "
    "lowers invariance and raises it where distinct callers pass "
    "distinct value distributions.",
)
def table_calling_context(scale: float = 1.0):
    table = Table(
        ("program", "merged sites", "ctx sites", "Inv-Top1% merged", "Inv-Top1% ctx", "gain"),
        title="Parameter invariance: merged vs per-calling-site",
        precision=2,
    )
    data: Dict[str, dict] = {}
    gains: List[float] = []
    for name in programs():
        workload = get_workload(name)
        dataset = workload.dataset("train", scale=scale)
        program = workload.program()
        merged_db = ProfileDatabase(name=f"{name}.merged")
        context_db = ProfileDatabase(name=f"{name}.context")
        fan = FanoutObserver(
            [
                ValueProfiler(program, merged_db, targets=(ProfileTarget.PARAMETERS,)),
                ValueProfiler(
                    program,
                    context_db,
                    targets=(ProfileTarget.PARAMETERS,),
                    parameter_context=True,
                ),
            ]
        )
        machine = Machine(program, observer=fan)
        machine.set_input(dataset.values)
        machine.run()

        merged = merged_db.summary(SiteKind.PARAMETER)
        contextual = context_db.summary(SiteKind.PARAMETER)
        if merged.executions == 0:
            continue
        gain = contextual.inv_top1 - merged.inv_top1
        gains.append(gain)
        table.add_row(
            name,
            len(merged_db.sites(SiteKind.PARAMETER)),
            len(context_db.sites(SiteKind.PARAMETER)),
            percentage(merged.inv_top1),
            percentage(contextual.inv_top1),
            percentage(gain),
        )
        data[name] = {
            "merged_sites": len(merged_db.sites(SiteKind.PARAMETER)),
            "context_sites": len(context_db.sites(SiteKind.PARAMETER)),
            "merged_inv": merged.inv_top1,
            "context_inv": contextual.inv_top1,
            "gain": gain,
        }
    data["mean_gain"] = sum(gains) / len(gains) if gains else 0.0
    data["min_gain"] = min(gains) if gains else 0.0
    return make_result("table-calling-context", table.render(), data)


#: Cost model for value-checked load speculation: each correct
#: speculation saves one unit; each misspeculation pays a recovery.
_SPEC_BENEFIT = 1.0
_SPEC_RECOVERY = 8.0


@experiment(
    "table-load-speculation",
    "Profile-filtered software load speculation",
    "Moudgill & Moreno [29] + thesis §II.A.1 suggestion",
    "Speculating only loads whose train-profile LVP is high cuts the "
    "misspeculation rate enough to flip the net benefit positive under "
    "a recovery-cost model.",
)
def table_load_speculation(scale: float = 1.0):
    table = Table(
        (
            "program",
            "policy",
            "speculated%",
            "misspec%",
            "net benefit/1k loads",
        ),
        title="Value-checked load speculation on the test input "
        f"(benefit {_SPEC_BENEFIT}, recovery {_SPEC_RECOVERY})",
        precision=2,
    )
    data: Dict[str, dict] = {}
    totals = {"all": [0, 0, 0], "filtered": [0, 0, 0]}  # spec, hits, loads
    for name in programs():
        train = profiled(name, "train", scale=scale, targets=(ProfileTarget.LOADS,))
        test = profiled(name, "test", scale=scale, targets=(ProfileTarget.LOADS,))
        train_metrics = dict(train.database.metrics_by_site(SiteKind.LOAD))

        rows = {}
        for policy in ("all", "filtered"):
            speculated = 0
            hits = 0
            total_loads = 0
            for site, metrics in test.database.metrics_by_site(SiteKind.LOAD):
                executions = metrics.executions
                total_loads += executions
                if policy == "filtered":
                    trained = train_metrics.get(site)
                    if trained is None or trained.lvp < 0.90:
                        continue
                # Value-checked speculation: predicted value = previous
                # value; a hit is exactly an LVP hit.
                site_hits = round(metrics.lvp * max(0, executions - 1))
                speculated += executions
                hits += site_hits
            misses = speculated - hits
            net = (hits * _SPEC_BENEFIT - misses * _SPEC_RECOVERY) / max(1, total_loads) * 1000
            rows[policy] = {
                "speculated": speculated / max(1, total_loads),
                "misspec": misses / max(1, speculated),
                "net_per_1k": net,
            }
            totals[policy][0] += speculated
            totals[policy][1] += hits
            totals[policy][2] += total_loads
            table.add_row(
                name,
                policy,
                percentage(rows[policy]["speculated"]),
                percentage(rows[policy]["misspec"]),
                net,
            )
        data[name] = rows
    table.add_separator()
    summary = {}
    for policy, (speculated, hits, loads) in totals.items():
        misses = speculated - hits
        net = (hits * _SPEC_BENEFIT - misses * _SPEC_RECOVERY) / max(1, loads) * 1000
        summary[policy] = {
            "speculated": speculated / max(1, loads),
            "misspec": misses / max(1, speculated),
            "net_per_1k": net,
        }
        table.add_row(
            "average",
            policy,
            percentage(summary[policy]["speculated"]),
            percentage(summary[policy]["misspec"]),
            net,
        )
    data["average"] = summary
    return make_result("table-load-speculation", table.render(), data)


def _memo_workloads(scale: float):
    """Three call streams with different argument-tuple locality."""
    rng = random.Random("memoization")
    count = max(60, int(600 * scale))

    def lookup_cost(route: int, day: int) -> int:
        total = 0
        for step in range(200):
            total = (total * 31 + route * step + day) % 1_000_003
        return total

    hot_routes = [rng.randrange(10_000) for _ in range(6)]
    zipf_calls = [
        (rng.choice(hot_routes) if rng.random() < 0.9 else rng.randrange(10_000), rng.randrange(3))
        for _ in range(count)
    ]
    unique_calls = [(i, i % 7) for i in range(count)]
    unhashable_calls = [([i % 4], i % 3) for i in range(count)]

    def list_cost(route, day):
        return lookup_cost(route[0], day)

    return [
        ("zipf-args", lookup_cost, zipf_calls),
        ("unique-args", lookup_cost, unique_calls),
        ("unhashable-args", list_cost, unhashable_calls),
    ]


@experiment(
    "table-memoization",
    "Profile-guided memoization",
    "Richardson [32] via thesis §X",
    "The argument-tuple profile predicts cache effectiveness: the "
    "advisor enables memoization for repeating-argument streams and "
    "declines for unique or uncacheable streams.",
    deterministic=False,  # measures real wall-clock speedups
)
def table_memoization(scale: float = 1.0):
    import time

    table = Table(
        ("stream", "predicted hit%", "enabled", "cache hit%", "speedup"),
        title="Memoization advisor on three argument streams",
        precision=2,
    )
    data: Dict[str, dict] = {}
    for label, func, calls in _memo_workloads(scale):
        estimate = memoizability(func, calls)
        wrapped = AdaptiveMemoizer(warmup_calls=max(40, len(calls) // 4), threshold=0.4)(func)

        def timed(target):
            best = float("inf")
            for _ in range(5):
                start = time.perf_counter()
                for args in calls:
                    target(*args)
                best = min(best, time.perf_counter() - start)
            return best

        baseline = timed(func)
        # Warmup + steady state; verify correctness against the pure function.
        for args in calls:
            assert wrapped(*args) == func(*args)
        memo_time = timed(wrapped)
        hit_rate = wrapped.cache.hit_rate if wrapped.cache is not None else 0.0
        speedup = baseline / memo_time if memo_time > 0 else 1.0
        table.add_row(
            label,
            percentage(estimate.predicted_hit_rate),
            "yes" if wrapped.memoizing else "no",
            percentage(hit_rate),
            speedup,
        )
        data[label] = {
            "predicted_coverage": estimate.predicted_hit_rate,
            "enabled": wrapped.memoizing,
            "hit_rate": hit_rate,
            "speedup": speedup,
        }
    return make_result("table-memoization", table.render(), data)


@experiment(
    "table-isa-specialization",
    "Profile-driven binary specialization (VPA level)",
    "Thesis Chapter X at the machine-code level",
    "A calling-context value profile alone is enough to specialize "
    "machine code: per-call-site invariant argument registers are bound, "
    "the clone is constant-folded and strength-reduced behind a guard, "
    "and the patched program produces bit-identical output in fewer "
    "cycles.",
)
def table_isa_specialization(scale: float = 1.0):
    from repro.isa.instructions import REG_ARGS
    from repro.isa.machine import run_program
    from repro.isa.optimize import (
        patch_call_site,
        specialize_procedure,
        written_registers,
    )

    from repro.isa.machine import resolve_engine

    table = Table(
        (
            "program",
            "variants",
            "rewrites",
            "cycles before",
            "cycles after",
            "reduction%",
        ),
        title="Automated per-call-site binary specialization (train input)",
        precision=2,
    )
    data: Dict[str, dict] = {}
    # The profiling runs go through whatever interpreter tier the
    # environment selects (``REPRO_ENGINE``/``REPRO_TIER2``), so under
    # the tier-2 engine this experiment's own profiling is itself
    # profile-guided-specialized.  The engine and its quicken/deopt
    # stats land in ``data`` only; the rendered table must stay
    # byte-identical across engines (CI diffs it).
    engine = resolve_engine(None)
    data["engine"] = {"name": engine, "tier2": {}}
    for name in programs():
        workload = get_workload(name)
        dataset = workload.dataset("train", scale=scale)
        program = workload.program()
        baseline = run_program(program, input_values=dataset.values)

        # 1. calling-context parameter profile
        context_db = ProfileDatabase(name=f"{name}.context")
        observer = ValueProfiler(
            program,
            context_db,
            targets=(ProfileTarget.PARAMETERS,),
            parameter_context=True,
        )
        machine = Machine(program, observer=observer, engine=engine)
        machine.set_input(dataset.values)
        machine.run()
        tier2_stats = machine.tier2_stats()
        if tier2_stats is not None:
            data["engine"]["tier2"][name] = tier2_stats

        # 2. per call site: collect argument registers that were fully
        #    invariant at that site
        site_bindings: Dict[int, Dict[str, Dict[int, int]]] = {}
        for site, metrics in context_db.metrics_by_site(SiteKind.PARAMETER):
            if metrics.inv_top1 < 1.0 or metrics.executions < 8:
                continue
            arg_label, _, call_pc_text = site.label.partition("@")
            arg_index = int(arg_label.replace("arg", ""))
            call_pc = int(call_pc_text)
            value = context_db.profile_for(site).tnv.top_value()
            per_site = site_bindings.setdefault(call_pc, {"proc": site.procedure, "regs": {}})
            per_site["regs"][REG_ARGS[arg_index]] = value

        # 3. specialize + patch, one variant per qualifying call site
        specialized = program
        variants = 0
        rewrites = 0
        for call_pc, entry in sorted(site_bindings.items()):
            proc_name = entry["proc"]
            bindings = entry["regs"]
            if not bindings or proc_name not in specialized.procedures:
                continue
            procedure = specialized.procedures[proc_name]
            if set(bindings) & written_registers(specialized, procedure):
                continue  # unsound to bind
            variant_name = f"{proc_name}__site{call_pc}"
            try:
                specialized, report = specialize_procedure(
                    specialized, proc_name, bindings, variant_name
                )
            except Exception:  # unsupported shape: stay general
                continue
            if report.cycle_gain <= 0:
                # Nothing got statically cheaper: the guard would be
                # pure overhead (e.g. folds that only change operand
                # forms).  Keep the general version.
                continue
            patch_call_site(specialized, call_pc, variant_name)
            report.patched_call_sites.append(call_pc)
            variants += 1
            rewrites += report.rewrites

        result = run_program(specialized, input_values=dataset.values)
        assert list(result.output) == list(dataset.expected_output), (
            f"{name}: specialized binary diverged"
        )
        reduction = (baseline.cycles - result.cycles) / baseline.cycles
        table.add_row(
            name,
            variants,
            rewrites,
            baseline.cycles,
            result.cycles,
            percentage(reduction),
        )
        data[name] = {
            "variants": variants,
            "rewrites": rewrites,
            "cycles_before": baseline.cycles,
            "cycles_after": result.cycles,
            "reduction": reduction,
        }
    reductions = [
        entry["reduction"] for entry in data.values() if "reduction" in entry
    ]
    data["best_reduction"] = max(reductions) if reductions else 0.0
    data["all_outputs_identical"] = True
    return make_result("table-isa-specialization", table.render(), data)
