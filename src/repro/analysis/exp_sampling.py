"""Sampling, convergence and TNV-accuracy experiments (thesis Ch. VIII
and the TNV design discussion of MICRO'97 §3).

Three artifacts:

* ``fig-convergence`` — invariance estimate vs executions profiled;
  the thesis' argument that estimates settle long before the program
  ends, which is what makes sampling safe.
* ``table-sampling-accuracy`` — full profiling vs periodic sampling vs
  the convergent ("intelligent") sampler: profiling overhead against
  estimate error.
* ``fig-tnv-accuracy`` — the TNV replacement-policy ablation: estimate
  error as a function of the clearing interval and the steady-set
  size, including the no-clearing LFU strawman.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.experiments import experiment, make_result, profiled, programs, traced
from repro.analysis.figures import series_plot
from repro.analysis.tables import Table, percentage
from repro.core.convergence import ConvergenceConfig, convergence_curve
from repro.core.metrics import ValueStreamStats, weighted_mean
from repro.core.profile import ProfileDatabase, TNVConfig
from repro.core.sampling import (
    ConvergentSampling,
    PeriodicSampling,
    RandomSampling,
    SamplingProfiler,
)
from repro.core.sites import SiteKind
from repro.core.tnv import TNVTable
from repro.isa.instrument import FanoutObserver, ProfileTarget, ValueProfiler
from repro.isa.machine import Machine
from repro.obs import get_logger
from repro.workloads.registry import get_workload

_LOG = get_logger(__name__)


@experiment(
    "fig-convergence",
    "Convergence of the invariance estimate",
    "Thesis Ch. VIII convergence figures",
    "A site's invariance estimate converges to within a few percent of "
    "its final value after a small fraction of its executions.",
)
def fig_convergence(scale: float = 1.0):
    series: Dict[str, List[Tuple[float, float]]] = {}
    data: Dict[str, dict] = {}
    for name in programs():
        _LOG.debug("fig-convergence: tracing %s", name)
        traces = traced(name, "train", scale=scale, targets=(ProfileTarget.LOADS,))
        if not traces:
            continue
        site, trace = max(traces.items(), key=lambda item: len(item[1]))
        if len(trace) < 50:
            continue
        checkpoint = max(1, len(trace) // 40)
        points = convergence_curve(trace, checkpoint=checkpoint)
        final = points[-1].estimate
        series[name] = [
            (p.executions / len(trace), p.estimate) for p in points
        ]
        converged_at = len(trace)
        for p in points:
            if abs(p.estimate - final) <= 0.02:
                converged_at = p.executions
                break
        data[name] = {
            "site": site.qualified_name(),
            "executions": len(trace),
            "final_invariance": final,
            "converged_at": converged_at,
            "converged_fraction": converged_at / len(trace),
        }
    figure = series_plot(
        series,
        title="Inv-Top1 estimate vs fraction of executions profiled (hottest load per program)",
        x_label="fraction of executions",
        y_label="Inv-Top1 estimate",
    )
    fractions = [entry["converged_fraction"] for entry in data.values()]
    data["mean_converged_fraction"] = sum(fractions) / len(fractions) if fractions else 0.0
    return make_result("fig-convergence", figure, data)


def _sampling_policies():
    """The policies compared in the sampling-accuracy table.

    Burst sizes are scaled to this suite's dynamic execution counts
    (1e4-1e6 per program, versus SPEC's 1e9): duty cycles stay honest
    for sites with a few thousand executions.
    """
    return [
        ("periodic 10%", PeriodicSampling(burst=100, interval=1_000)),
        ("periodic 1%", PeriodicSampling(burst=20, interval=2_000)),
        ("random 10% (CPI)", RandomSampling(rate=0.10)),
        (
            "convergent",
            ConvergentSampling(
                burst=100,
                base_skip=900,
                max_skip=200_000,
                convergence=ConvergenceConfig(delta=0.02, patience=2),
            ),
        ),
    ]


def _replay_load_stream(name, scale, full_db, samplers) -> None:
    """Feed the train-input load-event stream to every recorder.

    One full profiler and each sampling profiler see the same global
    event order — sampling policies with cross-site state (random
    sampling's shared RNG, convergent skipping) are order-sensitive, so
    accuracy comparisons must share one trace.  Replayed from the event
    store when replay is on; one live fan-out simulation otherwise —
    byte-identical either way.
    """
    from repro.analysis import experiments

    if experiments.replay_enabled():
        trace = experiments.load_events(name, "train", scale)
        recorders = [full_db.record]
        recorders.extend(sampler.record for _, sampler in samplers)
        for site, value in trace.events((ProfileTarget.LOADS,)):
            for record in recorders:
                record(site, value)
        return

    workload = get_workload(name)
    dataset = workload.dataset("train", scale=scale)
    program = workload.program()
    observers = [ValueProfiler(program, full_db, targets=(ProfileTarget.LOADS,))]
    for label, sampler in samplers:
        observers.append(ValueProfiler(program, sampler, targets=(ProfileTarget.LOADS,)))
    machine = Machine(program, observer=FanoutObserver(observers))
    machine.set_input(dataset.values)
    machine.run()


def _invariance_error(full: ProfileDatabase, sampled: ProfileDatabase) -> float:
    """Execution-weighted |Inv-Top1(sampled) - Inv-Top1(full)|.

    Sites the sampler never saw (possible only for sites whose first
    execution was skipped — cannot happen with burst-first policies,
    but handled defensively) count as estimate 0.
    """
    pairs = []
    for site, metrics in full.metrics_by_site(SiteKind.LOAD):
        if site in sampled:
            estimate = sampled.profile_for(site).metrics().inv_top1
        else:
            estimate = 0.0
        pairs.append((abs(estimate - metrics.inv_top1), metrics.executions))
    return weighted_mean(pairs)


@experiment(
    "table-sampling-accuracy",
    "Sampling overhead vs profile accuracy",
    "Thesis Ch. VIII sampling tables",
    "Convergent sampling keeps invariance error small at a few percent "
    "profiling overhead; fixed periodic sampling needs a higher duty "
    "cycle for the same accuracy.  CPI-style random sampling (the "
    "thesis' open question) estimates histogram metrics well but is "
    "~3x worse on LVP at equal cost: independent samples almost never "
    "include both executions of a consecutive pair.",
)
def table_sampling_accuracy(scale: float = 1.0):
    table = Table(
        ("program", "policy", "overhead%", "inv error", "LVP error"),
        title="Load-value profiling: sampled vs full (train)",
        precision=3,
    )
    data: Dict[str, list] = {}
    overall: Dict[str, List[Tuple[float, float]]] = {}
    for name in programs():
        _LOG.debug("table-sampling-accuracy: simulating %s under every policy", name)

        full_db = ProfileDatabase(name=f"{name}.full")
        samplers = []
        for label, policy in _sampling_policies():
            sampler = SamplingProfiler(policy, name=f"{name}.{label}")
            samplers.append((label, sampler))

        _replay_load_stream(name, scale, full_db, samplers)

        rows = []
        for label, sampler in samplers:
            inv_error = _invariance_error(full_db, sampler.database)
            lvp_pairs = []
            for site, metrics in full_db.metrics_by_site(SiteKind.LOAD):
                sampled_lvp = (
                    sampler.database.profile_for(site).lvp() if site in sampler.database else 0.0
                )
                lvp_pairs.append((abs(sampled_lvp - metrics.lvp), metrics.executions))
            lvp_error = weighted_mean(lvp_pairs)
            overhead = sampler.overhead()
            table.add_row(name, label, percentage(overhead), inv_error, lvp_error)
            rows.append(
                {
                    "policy": label,
                    "overhead": overhead,
                    "inv_error": inv_error,
                    "lvp_error": lvp_error,
                }
            )
            overall.setdefault(label, []).append((overhead, inv_error, lvp_error))
        data[name] = rows
    table.add_separator()
    summary = {}
    for label, triples in overall.items():
        mean_overhead = sum(p[0] for p in triples) / len(triples)
        mean_error = sum(p[1] for p in triples) / len(triples)
        mean_lvp_error = sum(p[2] for p in triples) / len(triples)
        table.add_row("average", label, percentage(mean_overhead), mean_error, mean_lvp_error)
        summary[label] = {
            "overhead": mean_overhead,
            "inv_error": mean_error,
            "lvp_error": mean_lvp_error,
        }
    data["average"] = summary
    return make_result("table-sampling-accuracy", table.render(), data)


_TNV_SWEEP: List[Tuple[str, Optional[int], int]] = [
    # (label, clear_interval, steady)
    ("LFU (no clearing)", None, 5),
    ("clear=100", 100, 5),
    ("clear=500", 500, 5),
    ("clear=2000 (paper)", 2000, 5),
    ("clear=10000", 10_000, 5),
    ("clear=2000 steady=2", 2000, 2),
    ("clear=2000 steady=8", 2000, 8),
]


def _phased_traces(scale: float) -> Dict[str, List[int]]:
    """Synthetic traces with *phased* hot values.

    Real programs change hot values across phases (the thesis'
    motivation for clearing): each phase here has its own dominant
    value buried in enough one-off noise values to keep the TNV table
    full, so a pure-LFU table locks onto phase-1 values and never
    admits the later — globally hottest — value.
    """
    import random as _random

    traces: Dict[str, List[int]] = {}
    length = max(2_000, int(20_000 * scale))
    for seed, phases, dominance in (("A", 4, 0.6), ("B", 3, 0.5), ("C", 6, 0.7)):
        rng = _random.Random(f"tnv-phase-{seed}")
        trace: List[int] = []
        per_phase = length // phases
        for phase in range(phases):
            hot = 10_000 + phase  # later phases are longer-lived via weight below
            weight = dominance * (0.5 + phase / phases)
            for _ in range(per_phase):
                if rng.random() < weight:
                    trace.append(hot)
                else:
                    trace.append(rng.randrange(1_000_000))  # one-off noise
        traces[f"phased-{seed}"] = trace
    return traces


def _tnv_sweep_rows(trace: List[int]) -> Dict[str, Tuple[float, float, float]]:
    exact = ValueStreamStats()
    exact.record_many(trace)
    true_inv = exact.invariance(1)
    true_top = exact.top(1)[0][0]
    rows = {}
    for label, clear_interval, steady in _TNV_SWEEP:
        tnv = TNVTable(capacity=10, steady=steady, clear_interval=clear_interval)
        tnv.record_many(trace)
        est = tnv.estimated_invariance(1)
        hit = 1.0 if tnv.top_value() == true_top else 0.0
        rows[label] = (abs(est - true_inv), hit, float(len(trace)))
    return rows


@experiment(
    "fig-tnv-accuracy",
    "TNV table accuracy vs clearing policy",
    "MICRO'97 §3 TNV design discussion",
    "On steady workload traces every configuration is accurate (the "
    "design is robust); on phased traces pure LFU misses the true top "
    "value, which is exactly why the paper clears the table's bottom "
    "half periodically.",
)
def fig_tnv_accuracy(scale: float = 1.0):
    per_config: Dict[str, List[Tuple[float, float, float]]] = {
        label: [] for label, _, _ in _TNV_SWEEP
    }
    # Part 1: real load traces (robustness on steady-hot-value sites).
    for name in ("compress", "li", "gcc"):
        traces = traced(name, "train", scale=scale, targets=(ProfileTarget.LOADS,))
        for site, trace in traces.items():
            if len(trace) < 100:
                continue
            for label, row in _tnv_sweep_rows(trace).items():
                per_config[label].append(row)

    table = Table(
        ("configuration", "inv error", "top-value hit%", "sites"),
        title="TNV estimate vs exact histogram — real load traces (weighted)",
        precision=3,
    )
    data: Dict[str, dict] = {"real": {}, "phased": {}}
    for label, rows in per_config.items():
        if not rows:
            continue
        error = weighted_mean((r[0], r[2]) for r in rows)
        hits = weighted_mean((r[1], r[2]) for r in rows)
        table.add_row(label, error, percentage(hits), len(rows))
        data["real"][label] = {"inv_error": error, "top_hit_rate": hits, "sites": len(rows)}

    # Part 2: phased synthetic traces (the clearing design point).
    phased_config: Dict[str, List[Tuple[float, float, float]]] = {
        label: [] for label, _, _ in _TNV_SWEEP
    }
    for name, trace in _phased_traces(scale).items():
        for label, row in _tnv_sweep_rows(trace).items():
            phased_config[label].append(row)
    phased_table = Table(
        ("configuration", "inv error", "top-value hit%", "traces"),
        title="TNV estimate vs exact histogram — phased synthetic traces",
        precision=3,
    )
    for label, rows in phased_config.items():
        error = weighted_mean((r[0], r[2]) for r in rows)
        hits = weighted_mean((r[1], r[2]) for r in rows)
        phased_table.add_row(label, error, percentage(hits), len(rows))
        data["phased"][label] = {"inv_error": error, "top_hit_rate": hits, "traces": len(rows)}

    text = table.render() + "\n\n" + phased_table.render()
    return make_result("fig-tnv-accuracy", text, data)
