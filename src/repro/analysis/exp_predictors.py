"""Value-prediction experiments (thesis §II.A context).

* ``table-predictors`` — hit rates of the predictor bank over the same
  instruction value traces; reproduces the reference ordering quoted in
  the thesis (LVP < stride ≈ 2-level < hybrids).
* ``table-predictor-filtering`` — Gabbay [18]-style use of a *training*
  value profile to decide which sites a predictor should handle on the
  *test* input: accuracy among predicted executions rises and table
  pressure falls.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.experiments import (
    experiment,
    make_result,
    profiled,
    programs,
    trace_info,
    traced,
)
from repro.analysis.tables import Table, percentage
from repro.core.sites import SiteKind
from repro.isa.instrument import ProfileTarget
from repro.obs import get_logger
from repro.predictors.classify import lvp_filter
from repro.predictors.harness import evaluate_bank, evaluate_filtered
from repro.predictors.last_value import LastValuePredictor

_LOG = get_logger(__name__)

#: Default input shrink for trace-heavy experiments: pure-Python
#: predictors over full traces are the slowest part of the suite.
_TRACE_SCALE = 0.4


def _instruction_events(name: str, variant: str, scale: float, max_events: int):
    """Global-order instruction events, ``(events, dropped)``.

    Replayed from the simulate-once event store when replay is on;
    collected live with a :class:`GlobalTraceCollector` otherwise — the
    two are byte-identical (the differential CI job relies on it).
    """
    from repro.analysis import experiments
    from repro.core import tracestore

    if experiments.replay_enabled():
        trace = experiments.load_events(name, variant, scale)
        return tracestore.replay_global_events(
            trace, (ProfileTarget.INSTRUCTIONS,), max_events=max_events
        )

    from repro.isa.instrument import GlobalTraceCollector
    from repro.isa.machine import Machine
    from repro.workloads.registry import get_workload

    workload = get_workload(name)
    dataset = workload.dataset(variant, scale=scale)
    collector = GlobalTraceCollector(
        workload.program(), targets=(ProfileTarget.INSTRUCTIONS,), max_events=max_events
    )
    machine = Machine(workload.program(), observer=collector)
    machine.set_input(dataset.values)
    machine.run()
    return collector.events, collector.dropped


@experiment(
    "table-predictors",
    "Value-predictor hit rates",
    "Thesis §II.A reference numbers (LVP 42%, stride 52%, 2-level 52%, "
    "hybrids 60%/69% on SPEC92)",
    "Hit-rate ordering: hybrid(stride+2level) > hybrid(lvp+stride) >= "
    "stride >= lvp, with 2-level competitive with stride.",
)
def table_predictors(scale: float = 1.0):
    trace_scale = scale * _TRACE_SCALE
    per_predictor: Dict[str, List[float]] = {}
    table = Table(
        ("program", "lvp%", "stride%", "2level%", "fcm%", "hyb(l+s)%", "hyb(s+2l)%"),
        title="Predictor accuracy over instruction value traces (train)",
    )
    data: Dict[str, dict] = {}
    provenance: Dict[str, dict] = {}
    for name in programs():
        _LOG.debug("table-predictors: evaluating predictor bank on %s", name)
        traces = traced(name, "train", scale=trace_scale, targets=(ProfileTarget.INSTRUCTIONS,))
        # Trace provenance: how the values were collected and whether
        # any were dropped by a per-site cap (a capped collection must
        # never silently pass for a complete one).
        provenance[name] = trace_info(
            name, "train", scale=trace_scale, targets=(ProfileTarget.INSTRUCTIONS,)
        )
        results = evaluate_bank(traces)
        by_name = {r.predictor: r.accuracy for r in results}
        table.add_row(
            name,
            percentage(by_name["lvp"]),
            percentage(by_name["stride"]),
            percentage(by_name["2level"]),
            percentage(by_name["fcm"]),
            percentage(by_name["hybrid(lvp+stride)"]),
            percentage(by_name["hybrid(stride+2level)"]),
        )
        data[name] = by_name
        for predictor, accuracy in by_name.items():
            per_predictor.setdefault(predictor, []).append(accuracy)
    table.add_separator()
    averages = {
        predictor: sum(values) / len(values) for predictor, values in per_predictor.items()
    }
    table.add_row(
        "average",
        percentage(averages["lvp"]),
        percentage(averages["stride"]),
        percentage(averages["2level"]),
        percentage(averages["fcm"]),
        percentage(averages["hybrid(lvp+stride)"]),
        percentage(averages["hybrid(stride+2level)"]),
    )
    data["average"] = averages
    data["trace_provenance"] = provenance
    return make_result("table-predictors", table.render(), data)


@experiment(
    "table-predictor-filtering",
    "Profile-guided prediction filtering",
    "Gabbay & Mendelson [18] / thesis §II.A application",
    "Filtering prediction to sites a train-input profile marks "
    "predictable raises accuracy among predicted executions and cuts "
    "prediction-table pressure, at a coverage cost.",
)
def table_predictor_filtering(scale: float = 1.0):
    trace_scale = scale * _TRACE_SCALE
    table = Table(
        (
            "program",
            "unfiltered acc%",
            "filtered acc%",
            "coverage%",
            "table pressure%",
        ),
        title="LVP with and without train-profile filtering (test input)",
    )
    data: Dict[str, dict] = {}
    accs = {"unfiltered": [], "filtered": [], "coverage": [], "pressure": []}
    for name in programs():
        # Profile on TRAIN, predict on TEST: the cross-input transfer claim.
        train_run = profiled(
            name, "train", scale=trace_scale, targets=(ProfileTarget.INSTRUCTIONS,)
        )
        metrics = dict(train_run.database.metrics_by_site(SiteKind.INSTRUCTION))
        test_traces = traced(
            name, "test", scale=trace_scale, targets=(ProfileTarget.INSTRUCTIONS,)
        )
        unfiltered = evaluate_filtered(
            test_traces,
            metrics,
            site_filter=lambda site, m: True,
            factory=LastValuePredictor,
            filter_name="none",
        )
        filtered = evaluate_filtered(
            test_traces,
            metrics,
            site_filter=lvp_filter(0.60),
            factory=LastValuePredictor,
            filter_name="LVP>=0.60 on train",
        )
        table.add_row(
            name,
            percentage(unfiltered.accuracy_on_predicted),
            percentage(filtered.accuracy_on_predicted),
            percentage(filtered.coverage),
            percentage(filtered.table_pressure),
        )
        data[name] = {
            "unfiltered_accuracy": unfiltered.accuracy_on_predicted,
            "filtered_accuracy": filtered.accuracy_on_predicted,
            "coverage": filtered.coverage,
            "table_pressure": filtered.table_pressure,
        }
        accs["unfiltered"].append(unfiltered.accuracy_on_predicted)
        accs["filtered"].append(filtered.accuracy_on_predicted)
        accs["coverage"].append(filtered.coverage)
        accs["pressure"].append(filtered.table_pressure)
    table.add_separator()
    table.add_row(
        "average",
        percentage(sum(accs["unfiltered"]) / len(accs["unfiltered"])),
        percentage(sum(accs["filtered"]) / len(accs["filtered"])),
        percentage(sum(accs["coverage"]) / len(accs["coverage"])),
        percentage(sum(accs["pressure"]) / len(accs["pressure"])),
    )
    data["average"] = {key: sum(values) / len(values) for key, values in accs.items()}
    return make_result("table-predictor-filtering", table.render(), data)


@experiment(
    "table-vht-aliasing",
    "Finite prediction table: aliasing vs profile filtering",
    "Gabbay & Mendelson [18] table-utilization claim",
    "In a finite, tagged value-history table, unpredictable sites evict "
    "predictable ones; excluding them via a train-input value profile "
    "raises the overall hit rate most at small table sizes, and the "
    "advantage shrinks as the table grows.",
)
def table_vht_aliasing(scale: float = 1.0):
    from repro.predictors.vht import ValueHistoryTable

    trace_scale = scale * _TRACE_SCALE
    sizes = (64, 256, 1024)
    table = Table(
        ("program", "entries", "unfiltered hit%", "filtered hit%", "conflicts/1k (unf)", "conflicts/1k (filt)"),
        title="Direct-mapped LVP table on the test input (filter: train LVP >= 0.60)",
        precision=2,
    )
    data: Dict[str, dict] = {}
    gains_small: List[float] = []
    gains_large: List[float] = []
    for name in programs():
        train = profiled(name, "train", scale=trace_scale, targets=(ProfileTarget.INSTRUCTIONS,))
        metrics = dict(train.database.metrics_by_site(SiteKind.INSTRUCTION))
        predictable = {site for site, m in metrics.items() if m.lvp >= 0.60}

        events, _ = _instruction_events(name, "test", trace_scale, max_events=300_000)

        entry: Dict[str, dict] = {}
        for size in sizes:
            unfiltered = ValueHistoryTable(entries=size).replay(events)
            filtered = ValueHistoryTable(
                entries=size, site_filter=lambda s: s in predictable
            ).replay(events)
            table.add_row(
                name,
                size,
                percentage(unfiltered.hit_rate_overall),
                percentage(filtered.hit_rate_overall),
                1000 * unfiltered.conflict_rate,
                1000 * filtered.conflict_rate,
            )
            entry[str(size)] = {
                "unfiltered_hit": unfiltered.hit_rate_overall,
                "filtered_hit": filtered.hit_rate_overall,
                "unfiltered_conflicts": unfiltered.conflict_rate,
                "filtered_conflicts": filtered.conflict_rate,
            }
            gain = filtered.hit_rate_overall - unfiltered.hit_rate_overall
            if size == sizes[0]:
                gains_small.append(gain)
            if size == sizes[-1]:
                gains_large.append(gain)
        data[name] = entry
    data["mean_gain_small_table"] = sum(gains_small) / len(gains_small)
    data["mean_gain_large_table"] = sum(gains_large) / len(gains_large)
    return make_result("table-vht-aliasing", table.render(), data)
