"""Profile diffing: compare two value-profile databases.

The thesis' cross-input argument (Table V.5) is an instance of a more
general operation any deployed value profiler needs: *diff two
profiles* — train vs test, yesterday's build vs today's — and report
which sites kept their behaviour, which drifted, and how strongly the
profiles agree overall.  The specializer uses the same question to
decide whether stale profiles are still safe to act on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.metrics import SiteMetrics, weighted_mean
from repro.core.profile import ProfileDatabase
from repro.core.sites import Site, SiteKind


@dataclass(frozen=True)
class SiteDelta:
    """One site's change between two profiles."""

    site: Site
    executions_a: int
    executions_b: int
    inv_top1_a: float
    inv_top1_b: float
    lvp_a: float
    lvp_b: float
    top_value_a: object
    top_value_b: object

    @property
    def inv_delta(self) -> float:
        return self.inv_top1_b - self.inv_top1_a

    @property
    def top_value_changed(self) -> bool:
        return self.top_value_a != self.top_value_b


@dataclass
class ProfileDiff:
    """Result of :func:`diff_profiles`."""

    name_a: str
    name_b: str
    common: List[SiteDelta] = field(default_factory=list)
    only_in_a: List[Site] = field(default_factory=list)
    only_in_b: List[Site] = field(default_factory=list)
    drift_threshold: float = 0.1

    # ------------------------------------------------------------------

    @property
    def drifted(self) -> List[SiteDelta]:
        """Common sites whose invariance moved beyond the threshold or
        whose dominant value changed."""
        return [
            delta
            for delta in self.common
            if abs(delta.inv_delta) > self.drift_threshold or delta.top_value_changed
        ]

    @property
    def stable_fraction(self) -> float:
        """Execution-weighted share of common sites that did not drift."""
        if not self.common:
            return 1.0
        drifted = {id(d) for d in self.drifted}
        pairs = [
            (0.0 if id(d) in drifted else 1.0, d.executions_a) for d in self.common
        ]
        return weighted_mean(pairs)

    def invariance_correlation(self) -> float:
        """Pearson correlation of per-site Inv-Top1 across the profiles."""
        xs = [d.inv_top1_a for d in self.common]
        ys = [d.inv_top1_b for d in self.common]
        n = len(xs)
        if n < 2:
            return 1.0
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        var_x = sum((x - mean_x) ** 2 for x in xs)
        var_y = sum((y - mean_y) ** 2 for y in ys)
        if var_x == 0 or var_y == 0:
            return 1.0 if var_x == var_y else 0.0
        return cov / math.sqrt(var_x * var_y)

    def mean_abs_inv_delta(self) -> float:
        """Execution-weighted mean |ΔInv-Top1| over common sites."""
        return weighted_mean(
            (abs(d.inv_delta), d.executions_a) for d in self.common
        )

    def render(self, top: int = 10) -> str:
        """Readable summary, drifted sites first."""
        lines = [
            f"profile diff: {self.name_a or 'A'}  vs  {self.name_b or 'B'}",
            f"  common sites:   {len(self.common)}",
            f"  only in A:      {len(self.only_in_a)}",
            f"  only in B:      {len(self.only_in_b)}",
            f"  correlation:    {self.invariance_correlation():.3f}",
            f"  mean |dInv|:    {self.mean_abs_inv_delta():.4f}",
            f"  stable share:   {100 * self.stable_fraction:.1f}% "
            f"(drift threshold {self.drift_threshold})",
        ]
        drifted = sorted(self.drifted, key=lambda d: -abs(d.inv_delta))
        if drifted:
            lines.append(f"  drifted sites ({len(drifted)}), worst first:")
            for delta in drifted[:top]:
                marker = " top-value changed" if delta.top_value_changed else ""
                lines.append(
                    f"    {delta.site.qualified_name():40s} "
                    f"Inv {delta.inv_top1_a:.2f} -> {delta.inv_top1_b:.2f}{marker}"
                )
        else:
            lines.append("  no drifted sites")
        return "\n".join(lines)


def diff_profiles(
    a: ProfileDatabase,
    b: ProfileDatabase,
    kind: Optional[SiteKind] = None,
    min_executions: int = 1,
    drift_threshold: float = 0.1,
) -> ProfileDiff:
    """Compare two profile databases site by site.

    Args:
        a, b: the profiles to compare (e.g. train and test runs).
        kind: restrict to one site kind.
        min_executions: ignore sites colder than this in *both* runs.
        drift_threshold: |ΔInv-Top1| beyond which a site counts as
            drifted (dominant-value changes always count).
    """
    metrics_a = dict(a.metrics_by_site(kind))
    metrics_b = dict(b.metrics_by_site(kind))
    diff = ProfileDiff(name_a=a.name, name_b=b.name, drift_threshold=drift_threshold)
    for site, ma in metrics_a.items():
        mb = metrics_b.get(site)
        if mb is None:
            if ma.executions >= min_executions:
                diff.only_in_a.append(site)
            continue
        if ma.executions < min_executions and mb.executions < min_executions:
            continue
        diff.common.append(
            SiteDelta(
                site=site,
                executions_a=ma.executions,
                executions_b=mb.executions,
                inv_top1_a=ma.inv_top1,
                inv_top1_b=mb.inv_top1,
                lvp_a=ma.lvp,
                lvp_b=mb.lvp,
                top_value_a=a.profile_for(site).tnv.top_value(),
                top_value_b=b.profile_for(site).tnv.top_value(),
            )
        )
    for site, mb in metrics_b.items():
        if site not in metrics_a and mb.executions >= min_executions:
            diff.only_in_b.append(site)
    diff.common.sort(key=lambda d: -d.executions_a)
    diff.only_in_a.sort()
    diff.only_in_b.sort()
    return diff
