"""Finite Value History Table simulation (Gabbay & Mendelson [17, 18]).

Hardware value predictors are not one predictor per static instruction:
they are a *table* of N entries indexed by a hash of the PC.  Two hot
instructions that alias to the same entry evict each other's state, so
unpredictable instructions don't just fail to predict — they destroy
the state of predictable ones.  That is exactly why Gabbay's
profile-guided annotation ("only instructions marked predictable were
considered for value prediction") reports "better usage of the
prediction table, and decreased number of mispredictions".

:class:`ValueHistoryTable` replays a *program-ordered* (site, value)
event stream (from :class:`repro.isa.instrument.GlobalTraceCollector`)
through a direct-mapped table with optional profile filtering, and
reports hit rate, conflict evictions and occupancy.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.core.sites import Site
from repro.predictors.base import Predictor
from repro.predictors.last_value import LastValuePredictor

PredictorFactory = Callable[[], Predictor]
SitePredicate = Callable[[Site], bool]


@dataclass
class VHTStats:
    """Outcome of one trace replay through the table."""

    entries: int
    events: int = 0
    filtered: int = 0  # events whose site the profile filter excluded
    predictions: int = 0
    hits: int = 0
    conflict_evictions: int = 0  # a different site displaced the entry
    occupied: int = 0

    @property
    def hit_rate_overall(self) -> float:
        """Correct predictions over *all* dynamic events (the number a
        processor cares about)."""
        if self.events == 0:
            return 0.0
        return self.hits / self.events

    @property
    def hit_rate_predicted(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.hits / self.predictions

    @property
    def conflict_rate(self) -> float:
        if self.events == 0:
            return 0.0
        return self.conflict_evictions / self.events


class ValueHistoryTable:
    """Direct-mapped, tagged prediction table.

    Args:
        entries: number of table entries.
        factory: per-entry predictor model (default: last-value, the
            classic VHT of [17]).
        site_filter: optional predicate; sites it rejects never touch
            the table — Gabbay's profile annotation.
    """

    def __init__(
        self,
        entries: int = 1024,
        factory: PredictorFactory = LastValuePredictor,
        site_filter: Optional[SitePredicate] = None,
    ) -> None:
        if entries < 1:
            raise ValueError("entries must be >= 1")
        self.entries = entries
        self.factory = factory
        self.site_filter = site_filter
        self._sites: list = [None] * entries
        self._predictors: list = [None] * entries
        self._index_cache: Dict[Site, int] = {}
        self.stats = VHTStats(entries=entries)

    def _index(self, site: Site) -> int:
        # CRC32 of the site's identity, not hash(): Python string
        # hashing is randomized per process (PYTHONHASHSEED), which
        # would make the alias pattern — and every number this
        # simulation reports — differ from run to run.
        index = self._index_cache.get(site)
        if index is None:
            key = f"{site.kind.value}|{site.program}|{site.procedure}|{site.label}"
            index = zlib.crc32(key.encode()) % self.entries
            self._index_cache[site] = index
        return index

    def process(self, site: Site, value) -> bool:
        """Replay one dynamic event; returns True on a correct prediction."""
        stats = self.stats
        stats.events += 1
        if self.site_filter is not None and not self.site_filter(site):
            stats.filtered += 1
            return False
        index = self._index(site)
        owner = self._sites[index]
        if owner != site:
            if owner is not None:
                stats.conflict_evictions += 1
            else:
                stats.occupied += 1
            self._sites[index] = site
            self._predictors[index] = self.factory()
        predictor = self._predictors[index]
        guess = predictor.predict()
        hit = False
        if guess is not None:
            stats.predictions += 1
            if guess == value:
                stats.hits += 1
                hit = True
        predictor.update(value)
        return hit

    def replay(self, events: Iterable[Tuple[Site, object]]) -> VHTStats:
        """Replay a whole event stream; returns the statistics."""
        for site, value in events:
            self.process(site, value)
        return self.stats
