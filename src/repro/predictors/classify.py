"""Profile-guided predictability classification — Gabbay & Mendelson [18].

Gabbay showed that a profile pass can classify instructions by their
tendency to be value-predictable, and that predicting *only* the
instructions marked predictable improves prediction-table utilization
and cuts mispredictions.  Value profiling supplies exactly the needed
classification: a site's LVP and invariance metrics.

This module turns :class:`~repro.core.metrics.SiteMetrics` into the
thesis' three-way classification (invariant / semi-invariant /
variant) and builds filters for the prediction harness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Tuple

from repro.core.metrics import SiteMetrics
from repro.core.sites import Site


class InvarianceClass(enum.Enum):
    """The thesis' classification of profiled sites."""

    INVARIANT = "invariant"
    SEMI_INVARIANT = "semi-invariant"
    VARIANT = "variant"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ClassifierConfig:
    """Thresholds on Inv-Top(1) separating the three classes.

    Defaults follow the thesis' working definitions: a semi-invariant
    variable spends at least half its executions on its top value; an
    invariant one essentially always produces it.
    """

    invariant_threshold: float = 0.95
    semi_invariant_threshold: float = 0.50


def classify(metrics: SiteMetrics, config: ClassifierConfig = ClassifierConfig()) -> InvarianceClass:
    """Classify one site from its profile metrics."""
    if metrics.inv_top1 >= config.invariant_threshold:
        return InvarianceClass.INVARIANT
    if metrics.inv_top1 >= config.semi_invariant_threshold:
        return InvarianceClass.SEMI_INVARIANT
    return InvarianceClass.VARIANT


def classify_all(
    rows: Iterable[Tuple[Site, SiteMetrics]],
    config: ClassifierConfig = ClassifierConfig(),
) -> Dict[Site, InvarianceClass]:
    """Classification map over (site, metrics) rows."""
    return {site: classify(metrics, config) for site, metrics in rows}


def class_histogram(
    classes: Dict[Site, InvarianceClass],
    weights: Dict[Site, int],
) -> Dict[InvarianceClass, float]:
    """Execution-weighted share of each class (rows of the thesis'
    classification tables)."""
    totals = {cls: 0 for cls in InvarianceClass}
    for site, cls in classes.items():
        totals[cls] += weights.get(site, 0)
    grand = sum(totals.values())
    if grand == 0:
        return {cls: 0.0 for cls in InvarianceClass}
    return {cls: count / grand for cls, count in totals.items()}


SiteFilter = Callable[[Site, SiteMetrics], bool]


def lvp_filter(min_lvp: float) -> SiteFilter:
    """Keep sites whose profiled LVP is at least ``min_lvp`` — the
    filter Gabbay's opcode annotations approximate."""

    def accept(site: Site, metrics: SiteMetrics) -> bool:
        return metrics.lvp >= min_lvp

    return accept


def invariance_filter(min_inv: float) -> SiteFilter:
    """Keep sites whose Inv-Top(1) is at least ``min_inv``."""

    def accept(site: Site, metrics: SiteMetrics) -> bool:
        return metrics.inv_top1 >= min_inv

    return accept


def predictable_classes(
    allowed: Iterable[InvarianceClass],
    config: ClassifierConfig = ClassifierConfig(),
) -> SiteFilter:
    """Keep sites whose classification is in ``allowed``."""
    allowed_set = set(allowed)

    def accept(site: Site, metrics: SiteMetrics) -> bool:
        return classify(metrics, config) in allowed_set

    return accept
