"""Value-predictor interface.

The thesis motivates value profiling with hardware value prediction
(§II.A): a predictor guesses an instruction's next output value from
its history.  Each predictor here models the per-instruction state one
entry of a hardware Value History Table would hold; the harness in
:mod:`repro.predictors.harness` instantiates one per site and replays
recorded value traces through it.

Protocol: for each dynamic execution, the harness first calls
:meth:`Predictor.predict` (``None`` means "no prediction", a miss),
then :meth:`Predictor.update` with the actual value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional

Value = Hashable


class Predictor:
    """One site's prediction state."""

    #: short name used in result tables
    name: str = "base"

    def predict(self) -> Optional[Value]:
        """The predicted next value, or ``None`` for no prediction."""
        raise NotImplementedError

    def update(self, value: Value) -> None:
        """Observe the actual value produced by this execution."""
        raise NotImplementedError


@dataclass(frozen=True)
class PredictionStats:
    """Outcome of replaying one trace through one predictor."""

    predictor: str
    executions: int
    hits: int
    no_prediction: int

    @property
    def accuracy(self) -> float:
        """Correct predictions over all executions (misses include
        executions where the predictor offered no prediction)."""
        if self.executions == 0:
            return 0.0
        return self.hits / self.executions


def run_trace(predictor: Predictor, trace: Iterable[Value]) -> PredictionStats:
    """Replay ``trace`` through ``predictor`` and score it."""
    executions = 0
    hits = 0
    no_prediction = 0
    for value in trace:
        guess = predictor.predict()
        if guess is None:
            no_prediction += 1
        elif guess == value:
            hits += 1
        predictor.update(value)
        executions += 1
    return PredictionStats(predictor.name, executions, hits, no_prediction)
