"""Context-based (two-level) value predictor — Sazeides & Smith [34],
Wang & Franklin [39].

A *context-based* predictor predicts values that follow a finite
pattern: the first level records the recent value history, the second
level maps that history (the context) to a prediction.

Two models are provided:

* :class:`FiniteContextPredictor` — order-``k`` finite context method:
  the last ``k`` values hash to a table entry holding frequency counts
  of successor values; predict the most frequent successor.
* :class:`TwoLevelPredictor` — the Wang & Franklin organisation: a
  per-site Value History Table holding the last 4 distinct values plus
  an outcome-history pattern indexing a pattern history table of
  saturating counters, predicting which of the 4 values comes next.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.predictors.base import Predictor, Value


class FiniteContextPredictor(Predictor):
    """Order-``k`` finite context method (FCM).

    Args:
        order: context length (number of preceding values).
        max_contexts: capacity of the context table; beyond it, new
            contexts are not learned (models a finite hardware table).
        max_successors: distinct successor values tracked per context.
    """

    name = "fcm"

    def __init__(self, order: int = 2, max_contexts: int = 4096, max_successors: int = 4) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        self.order = order
        self.max_contexts = max_contexts
        self.max_successors = max_successors
        self._history: Deque[Value] = deque(maxlen=order)
        self._table: Dict[Tuple[Value, ...], Dict[Value, int]] = {}

    def _context(self) -> Optional[Tuple[Value, ...]]:
        if len(self._history) < self.order:
            return None
        return tuple(self._history)

    def predict(self) -> Optional[Value]:
        context = self._context()
        if context is None:
            return None
        successors = self._table.get(context)
        if not successors:
            return None
        return max(successors.items(), key=lambda item: (item[1], repr(item[0])))[0]

    def update(self, value: Value) -> None:
        context = self._context()
        if context is not None:
            successors = self._table.get(context)
            if successors is None:
                if len(self._table) < self.max_contexts:
                    self._table[context] = {value: 1}
            elif value in successors:
                successors[value] += 1
            elif len(successors) < self.max_successors:
                successors[value] = 1
            else:
                # Decay: steal from the weakest successor (hardware-ish
                # replacement instead of unbounded growth).
                weakest = min(successors.items(), key=lambda item: item[1])[0]
                successors[weakest] -= 1
                if successors[weakest] <= 0:
                    del successors[weakest]
                    successors[value] = 1
        self._history.append(value)


class TwoLevelPredictor(Predictor):
    """Two-level predictor with a 4-entry value history (Wang & Franklin).

    Level 1: the last ``vht_size`` distinct values in *fixed* slots
    (round-robin replacement — slots must stay stable or the learned
    pattern-to-slot mapping would be scrambled), plus a pattern of the
    last ``history`` outcomes (which slot matched, or ``vht_size`` for
    "new value").
    Level 2: a pattern history table of per-slot saturating counters;
    the predicted value is the slot with the highest counter for the
    current pattern.
    """

    name = "2level"

    def __init__(self, vht_size: int = 4, history: int = 4, counter_max: int = 12) -> None:
        self.vht_size = vht_size
        self.history = history
        self.counter_max = counter_max
        self._values: List[Value] = []  # fixed slots, grown up to vht_size
        self._next_replace = 0
        self._pattern: Deque[int] = deque(maxlen=history)
        self._pht: Dict[Tuple[int, ...], List[int]] = {}

    def _pattern_key(self) -> Optional[Tuple[int, ...]]:
        if len(self._pattern) < self.history:
            return None
        return tuple(self._pattern)

    def predict(self) -> Optional[Value]:
        key = self._pattern_key()
        if key is None or not self._values:
            return None
        counters = self._pht.get(key)
        if counters is None:
            return None
        slot = max(range(len(counters)), key=lambda i: counters[i])
        if counters[slot] == 0 or slot >= len(self._values):
            return None
        return self._values[slot]

    def update(self, value: Value) -> None:
        key = self._pattern_key()
        try:
            slot = self._values.index(value)
        except ValueError:
            slot = -1
        if key is not None:
            counters = self._pht.setdefault(key, [0] * self.vht_size)
            for index in range(len(counters)):
                if index == slot:
                    counters[index] = min(self.counter_max, counters[index] + 3)
                elif counters[index] > 0:
                    counters[index] -= 1
        if slot >= 0:
            self._pattern.append(slot)
        else:
            # Install the new value without disturbing other slots.
            if len(self._values) < self.vht_size:
                self._values.append(value)
            else:
                self._values[self._next_replace] = value
                self._next_replace = (self._next_replace + 1) % self.vht_size
            self._pattern.append(self.vht_size)
