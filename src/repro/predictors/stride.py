"""Stride predictor — Gabbay & Mendelson [17, 18].

Predicts ``last + stride``.  With stride 0 it degenerates to last-value
prediction, which is why the thesis notes stride subsumes LVP.  The
default is the *two-delta* variant used in the literature: the
committed stride only changes after the same delta is observed twice in
a row, which stops loop-exit glitches from corrupting a stable stride.
"""

from __future__ import annotations

from typing import Optional

from repro.predictors.base import Predictor, Value


class StridePredictor(Predictor):
    """Two-delta (or plain) stride prediction over integer traces.

    Non-integer values flow through gracefully: the predictor falls
    back to last-value behaviour for them (stride stays 0).
    """

    name = "stride"

    def __init__(self, two_delta: bool = True) -> None:
        self.two_delta = two_delta
        self._last: Optional[Value] = None
        self._has_last = False
        self._stride = 0
        self._pending_stride = 0

    def predict(self) -> Optional[Value]:
        if not self._has_last:
            return None
        if isinstance(self._last, int):
            return self._last + self._stride
        return self._last

    def update(self, value: Value) -> None:
        if self._has_last and isinstance(value, int) and isinstance(self._last, int):
            delta = value - self._last
            if self.two_delta:
                if delta == self._pending_stride:
                    self._stride = delta
                self._pending_stride = delta
            else:
                self._stride = delta
        self._last = value
        self._has_last = True
