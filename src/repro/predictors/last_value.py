"""Last-value predictor (LVP) — Lipasti et al. [27, 28].

Predicts that an instruction produces the same value it produced on its
previous execution.  This is the hardware counterpart of the thesis'
LVP metric: a site's LVP metric *is* this predictor's accuracy on the
site's trace, which the test suite asserts.

The optional saturating confidence counter models the classification
bits real LVP tables carry: predictions are only made above the
confidence threshold, trading coverage for misprediction rate.
"""

from __future__ import annotations

from typing import Optional

from repro.predictors.base import Predictor, Value


class LastValuePredictor(Predictor):
    """Predict the previously seen value.

    Args:
        confidence_bits: width of the saturating confidence counter.
            0 (default) predicts whenever a previous value exists.
        threshold: counter value required to make a prediction.
    """

    name = "lvp"

    def __init__(self, confidence_bits: int = 0, threshold: int = 1) -> None:
        if confidence_bits < 0:
            raise ValueError("confidence_bits must be >= 0")
        self._last: Optional[Value] = None
        self._has_last = False
        self._max_count = (1 << confidence_bits) - 1 if confidence_bits else 0
        self._threshold = threshold if confidence_bits else 0
        self._confidence = 0

    def predict(self) -> Optional[Value]:
        if not self._has_last:
            return None
        if self._max_count and self._confidence < self._threshold:
            return None
        return self._last

    def update(self, value: Value) -> None:
        if self._max_count:
            if self._has_last and value == self._last:
                self._confidence = min(self._max_count, self._confidence + 1)
            else:
                self._confidence = max(0, self._confidence - 1)
        self._last = value
        self._has_last = True
