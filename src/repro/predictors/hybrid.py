"""Hybrid value predictors — Wang & Franklin [39].

A hybrid couples component predictors with a per-site selector of
saturating counters: every execution, each component makes its private
prediction; the hybrid's prediction is the most-confident component's;
afterwards every component's counter is bumped on a private hit and
decayed on a private miss.  The thesis quotes the reference hit-rate
ordering hybrid(stride, 2-level) > hybrid(LVP, stride) > stride ≈
2-level > LVP, which the ``table-predictors`` experiment reproduces.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.predictors.base import Predictor, Value
from repro.predictors.context import TwoLevelPredictor
from repro.predictors.last_value import LastValuePredictor
from repro.predictors.stride import StridePredictor


class HybridPredictor(Predictor):
    """Selector-based combination of component predictors.

    Args:
        components: component predictor instances (per-site).
        counter_max: saturation limit of each selection counter.
        name: table label; defaults to ``hybrid(a+b)``.
    """

    name = "hybrid"

    def __init__(
        self,
        components: Sequence[Predictor],
        counter_max: int = 15,
        name: Optional[str] = None,
    ) -> None:
        if not components:
            raise ValueError("hybrid needs at least one component")
        self.components = list(components)
        self.counter_max = counter_max
        self._counters: List[int] = [counter_max // 2] * len(self.components)
        self._last_predictions: List[Optional[Value]] = [None] * len(self.components)
        if name is not None:
            self.name = name
        else:
            inner = "+".join(component.name for component in self.components)
            self.name = f"hybrid({inner})"

    def predict(self) -> Optional[Value]:
        best_value: Optional[Value] = None
        best_confidence = -1
        for index, component in enumerate(self.components):
            guess = component.predict()
            self._last_predictions[index] = guess
            # >= so ties go to the later (typically stronger) component.
            if guess is not None and self._counters[index] >= best_confidence:
                best_confidence = self._counters[index]
                best_value = guess
        return best_value

    def update(self, value: Value) -> None:
        for index, component in enumerate(self.components):
            guess = self._last_predictions[index]
            if guess is not None:
                if guess == value:
                    self._counters[index] = min(self.counter_max, self._counters[index] + 1)
                else:
                    self._counters[index] = max(0, self._counters[index] - 1)
            component.update(value)


PredictorFactory = Callable[[], Predictor]


def lvp_stride_hybrid() -> HybridPredictor:
    """The paper's first hybrid: LVP + stride."""
    return HybridPredictor([LastValuePredictor(), StridePredictor()], name="hybrid(lvp+stride)")


def stride_2level_hybrid() -> HybridPredictor:
    """The paper's second (best) hybrid: stride + 2-level."""
    return HybridPredictor([StridePredictor(), TwoLevelPredictor()], name="hybrid(stride+2level)")
