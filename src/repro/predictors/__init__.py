"""Value predictors and profile-guided prediction filtering (§II.A)."""

from repro.predictors.base import PredictionStats, Predictor, run_trace
from repro.predictors.classify import (
    ClassifierConfig,
    InvarianceClass,
    class_histogram,
    classify,
    classify_all,
    invariance_filter,
    lvp_filter,
    predictable_classes,
)
from repro.predictors.context import FiniteContextPredictor, TwoLevelPredictor
from repro.predictors.harness import (
    STANDARD_BANK,
    BankResult,
    FilteredResult,
    evaluate_bank,
    evaluate_filtered,
)
from repro.predictors.hybrid import HybridPredictor, lvp_stride_hybrid, stride_2level_hybrid
from repro.predictors.last_value import LastValuePredictor
from repro.predictors.vht import ValueHistoryTable, VHTStats
from repro.predictors.stride import StridePredictor

__all__ = [
    "BankResult",
    "ClassifierConfig",
    "FilteredResult",
    "FiniteContextPredictor",
    "HybridPredictor",
    "InvarianceClass",
    "LastValuePredictor",
    "PredictionStats",
    "Predictor",
    "STANDARD_BANK",
    "StridePredictor",
    "TwoLevelPredictor",
    "VHTStats",
    "ValueHistoryTable",
    "class_histogram",
    "classify",
    "classify_all",
    "evaluate_bank",
    "evaluate_filtered",
    "invariance_filter",
    "lvp_filter",
    "lvp_stride_hybrid",
    "predictable_classes",
    "run_trace",
    "stride_2level_hybrid",
]
