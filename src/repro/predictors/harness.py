"""Predictor evaluation harness.

Replays per-site value traces (collected by
:func:`repro.workloads.trace_workload`) through a bank of predictors —
one fresh predictor instance per site, as in hardware where each table
entry serves one static instruction — and aggregates hit rates.

Also implements the Gabbay-style *filtered* evaluation: only sites a
value profile classifies as predictable occupy prediction-table
entries; everything else is never predicted.  The experiment reports
both the accuracy among predicted executions and the table pressure
(fraction of static sites occupying entries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.metrics import SiteMetrics
from repro.core.sites import Site
from repro.predictors.base import PredictionStats, Predictor, run_trace
from repro.predictors.classify import SiteFilter
from repro.predictors.context import FiniteContextPredictor, TwoLevelPredictor
from repro.predictors.hybrid import lvp_stride_hybrid, stride_2level_hybrid
from repro.predictors.last_value import LastValuePredictor
from repro.predictors.stride import StridePredictor

PredictorFactory = Callable[[], Predictor]

#: The predictor bank from the thesis' related-work comparison (§II.A).
STANDARD_BANK: Dict[str, PredictorFactory] = {
    "lvp": LastValuePredictor,
    "stride": StridePredictor,
    "2level": TwoLevelPredictor,
    "fcm": FiniteContextPredictor,
    "hybrid(lvp+stride)": lvp_stride_hybrid,
    "hybrid(stride+2level)": stride_2level_hybrid,
}


@dataclass(frozen=True)
class BankResult:
    """Aggregate accuracy of one predictor across all sites."""

    predictor: str
    executions: int
    hits: int
    sites: int

    @property
    def accuracy(self) -> float:
        if self.executions == 0:
            return 0.0
        return self.hits / self.executions


def evaluate_bank(
    traces: Mapping[Site, Sequence],
    bank: Optional[Mapping[str, PredictorFactory]] = None,
) -> List[BankResult]:
    """Run every predictor in ``bank`` over every trace.

    Returns one :class:`BankResult` per predictor, ordered as in the
    bank.  Aggregation weights sites by execution count (sum of hits
    over sum of executions), the paper's convention.
    """
    bank = dict(bank or STANDARD_BANK)
    results = []
    for name, factory in bank.items():
        executions = 0
        hits = 0
        for trace in traces.values():
            stats = run_trace(factory(), trace)
            executions += stats.executions
            hits += stats.hits
        results.append(BankResult(name, executions, hits, len(traces)))
    return results


@dataclass(frozen=True)
class FilteredResult:
    """Outcome of profile-guided filtered prediction."""

    predictor: str
    filter_name: str
    total_executions: int
    predicted_executions: int
    hits: int
    total_sites: int
    predicted_sites: int

    @property
    def accuracy_on_predicted(self) -> float:
        """Hit rate among executions the predictor handled."""
        if self.predicted_executions == 0:
            return 0.0
        return self.hits / self.predicted_executions

    @property
    def coverage(self) -> float:
        """Fraction of all executions that received a prediction."""
        if self.total_executions == 0:
            return 0.0
        return self.predicted_executions / self.total_executions

    @property
    def table_pressure(self) -> float:
        """Fraction of static sites occupying prediction-table entries."""
        if self.total_sites == 0:
            return 0.0
        return self.predicted_sites / self.total_sites


def evaluate_filtered(
    traces: Mapping[Site, Sequence],
    metrics: Mapping[Site, SiteMetrics],
    site_filter: SiteFilter,
    factory: PredictorFactory = LastValuePredictor,
    predictor_name: str = "lvp",
    filter_name: str = "profile",
) -> FilteredResult:
    """Predict only sites the profile marks predictable.

    ``metrics`` would come from a *training* profile; applying it to a
    test-input trace demonstrates the cross-input transfer the thesis
    argues for (Table V.5).
    """
    total_executions = sum(len(trace) for trace in traces.values())
    predicted_executions = 0
    hits = 0
    predicted_sites = 0
    for site, trace in traces.items():
        site_metrics = metrics.get(site)
        if site_metrics is None or not site_filter(site, site_metrics):
            continue
        predicted_sites += 1
        stats = run_trace(factory(), trace)
        predicted_executions += stats.executions
        hits += stats.hits
    return FilteredResult(
        predictor=predictor_name,
        filter_name=filter_name,
        total_executions=total_executions,
        predicted_executions=predicted_executions,
        hits=hits,
        total_sites=len(traces),
        predicted_sites=predicted_sites,
    )
