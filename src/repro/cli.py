"""Command-line interface: ``value-profiling`` / ``python -m repro``.

Subcommands:

* ``list`` — show all experiments with their paper artifacts.
* ``run <experiment-id> [--scale S]`` — run one experiment and print
  its table/figure.
* ``all [--scale S]`` — run every experiment in order.
* ``profile <workload> [--variant V] [--scale S]`` — ad-hoc profile of
  one workload, printing per-site metrics.
* ``workloads`` — list the benchmark suite.
* ``stats`` — summarize a ``--trace``/``--metrics`` capture: top time
  sinks, cache hit rate, measured sampling overhead vs the thesis
  (``--json FILE`` writes the machine-readable form ``dash`` consumes).
* ``inspect <workload> [--site N] [--top K]`` — per-site TNV health:
  occupancy, churn, promotions, saturation flags; with ``--site``,
  the table's contents and the site's Inv-Top/LVP trajectory across
  clearing intervals.
* ``dash`` — render a self-contained HTML dashboard from captured
  ``--metrics``/``--trace``/``--timeseries`` artifacts plus the bench
  result history; ``--live URL`` scrapes a running ``serve`` daemon
  (``/metrics``, ``/stats``, ``/timeseries``) instead.
* ``serve [--shards N]`` — the sharded live-profiling service: ingests
  batched event streams from concurrent producers and answers
  ``/profile``, ``/inspect``, ``/stats``, ``/timeseries``, ``/metrics``
  over HTTP from merged snapshots (see ``docs/serving.md``).  Accepts
  ``--trace``/``--metrics`` capture flags plus ``--slow-op-threshold``
  for the structured slow-operation log.
* ``push <workload>`` — replay a stored workload trace into a running
  ``serve`` daemon as one producer.
* ``tier2-report <workload>`` — the specialization flight deck: run a
  workload on the tier-2 engine with the jitlog journal recording and
  render per-block lifecycle timelines, the deopt-reason taxonomy,
  top guard-failing registers, and the predicted-vs-observed
  invariance table joining the journal against the TNV profiles
  (see ``docs/observability.md``).

``run``, ``all`` and ``profile`` accept the observability flags
``--trace FILE`` (JSONL span trace), ``--metrics FILE`` (counter
snapshot), ``--timeseries FILE`` (periodic counter/gauge samples on an
event clock; ``.prom`` selects Prometheus text, anything else JSONL),
``--flight`` / ``--flight-dump FILE`` (crash ring of the last profile
events), ``--jitlog FILE`` / ``--jitlog-map FILE`` (tier-2
specialization journal as JSONL / perf-map-style pc-range dump) and
``--log-level LEVEL`` (progress logging to stderr).
With none of them given the observability layer stays disabled and
experiment output is byte-identical to an uninstrumented build.

They also accept ``--engine {threaded,simple,tier2,auto}`` to pick
the interpreter engine (``threaded`` is the pre-decoded
direct-threaded engine, ``simple`` the reference loop, ``tier2`` the
profile-guided superinstruction specializer; all are bit-identical),
and
``run``/``all`` accept ``--no-replay`` to bypass the simulate-once
event-trace store and re-simulate for every consumer.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from typing import List, Optional

from repro.analysis import experiments
from repro.analysis.tables import Table, profile_table
from repro.core.sites import SiteKind
from repro.errors import ReproError
from repro.obs import METRICS, TRACER, configure_logging


def _cmd_list(args: argparse.Namespace) -> int:
    table = Table(("id", "paper artifact", "title"))
    for exp in experiments.all_experiments():
        table.add_row(exp.id, exp.paper_artifact, exp.title)
    print(table.render())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    cache_ctx = experiments.caching_disabled() if args.no_cache else nullcontext()
    with cache_ctx:
        result = experiments.run(args.experiment, scale=args.scale)
    print(f"== {result.title} ({result.experiment}) ==")
    print(result.text)
    if args.json:
        import json

        payload = {
            "experiment": result.experiment,
            "title": result.title,
            "scale": args.scale,
            "data": result.data,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, default=str)
        print(f"(data written to {args.json})")
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    results = experiments.run_all(
        scale=args.scale, jobs=args.jobs, use_cache=not args.no_cache
    )
    for result in results:
        print(f"\n== {result.title} ({result.experiment}) ==")
        print(result.text)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.workloads import profile_workload

    run = profile_workload(args.workload, args.variant, scale=args.scale)
    kind = SiteKind(args.kind) if args.kind else SiteKind.LOAD
    print(profile_table(run.database, kind, top=args.top, name=run.name).render())
    if args.json:
        import dataclasses
        import json

        rows = run.database.metrics_by_site(kind)
        payload = {
            "workload": args.workload,
            "variant": args.variant,
            "scale": args.scale,
            "kind": kind.value,
            "sites": [
                {"site": site.qualified_name(), **dataclasses.asdict(metrics)}
                for site, metrics in rows
            ],
            "total": dataclasses.asdict(run.database.summary(kind)),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, default=str)
        print(f"(data written to {args.json})")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import stats as obs_stats
    from repro.obs.metrics import load_snapshot
    from repro.obs.trace import load_trace

    if not args.trace and not args.metrics:
        print("error: stats needs --trace and/or --metrics", file=sys.stderr)
        return 2
    spans = load_trace(args.trace) if args.trace else None
    snapshot = load_snapshot(args.metrics) if args.metrics else None
    if args.metrics and snapshot is None:
        print(f"error: could not read metrics file {args.metrics}", file=sys.stderr)
        return 1
    print(obs_stats.render_stats(spans=spans, snapshot=snapshot))
    if args.json:
        import json

        payload = obs_stats.stats_payload(spans=spans, snapshot=snapshot)
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.obs.inspect import inspect_workload

    kind = SiteKind(args.kind) if args.kind else None
    try:
        report = inspect_workload(
            args.workload,
            args.variant,
            scale=args.scale,
            kind=kind,
            site=args.site,
            top=args.top,
        )
    except IndexError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report)
    return 0


def _cmd_dash(args: argparse.Namespace) -> int:
    if args.live:
        from repro.obs.dash import render_live_dashboard

        try:
            html = render_live_dashboard(args.live)
        except OSError as error:
            print(f"error: could not scrape {args.live}: {error}", file=sys.stderr)
            return 2
    else:
        from repro.obs.dash import render_dashboard

        html = render_dashboard(
            metrics_path=args.metrics,
            trace_path=args.trace,
            timeseries_path=args.timeseries,
            bench_dir=args.bench_dir,
            jitlog_path=args.jitlog,
        )
    with open(args.output, "w") as handle:
        handle.write(html)
    print(f"(dashboard written to {args.output})")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.analysis.diff import diff_profiles
    from repro.workloads import profile_workload

    kind = SiteKind(args.kind)
    a = profile_workload(args.workload, "train", scale=args.scale)
    b = profile_workload(args.workload, "test", scale=args.scale)
    diff = diff_profiles(
        a.database,
        b.database,
        kind=kind,
        min_executions=args.min_executions,
        drift_threshold=args.threshold,
    )
    print(diff.render(top=args.top))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import build_report
    from repro.workloads import profile_workload

    kind = SiteKind(args.kind)
    run = profile_workload(args.workload, args.variant, scale=args.scale)
    report = build_report(run.database, kind=kind)
    print(report.render())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.serve.server import ServeServer

    server = ServeServer(
        shards=args.shards,
        host=args.host,
        ingest_port=args.port,
        http_port=args.http_port,
        queue_size=args.queue_size,
        checkpoint_interval=args.checkpoint_interval or None,
        snapshot_dir=args.snapshot_dir,
        restore=args.restore,
        runtime=args.runtime,
        timeseries_interval=getattr(args, "timeseries_interval", None),
        **(
            {"slow_op_threshold": args.slow_op_threshold}
            if args.slow_op_threshold is not None
            else {}
        ),
    )

    async def _run() -> None:
        await server.start()
        print(
            f"serving {args.shards} shard(s) [{args.runtime}]: "
            f"ingest {server.host}:{server.ingest_port}, "
            f"http {server.host}:{server.http_port}",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            await stop.wait()
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler platforms
        pass
    return 0


def _cmd_push(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import load_events
    from repro.serve.client import ServeClient

    stream = f"{args.workload}.{args.variant}"
    trace = load_events(args.workload, args.variant, scale=args.scale)
    client = ServeClient(
        args.host,
        args.port,
        client_id=args.client or stream,
        stream=stream,
        window=args.window,
        timeout=args.timeout,
    )
    with client:
        events = client.push_trace(trace, batch_size=args.batch_size)
    print(
        f"pushed {events} events in {client.counters['batches']} batches "
        f"({client.counters['retries']} retries, "
        f"{client.counters['reconnects']} reconnects)"
    )
    return 0


def _cmd_tier2_report(args: argparse.Namespace) -> int:
    from repro.obs import jitreport

    report = jitreport.collect(args.workload, args.variant, scale=args.scale)
    print(jitreport.render_report(report, top=args.top))
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(jitreport.report_payload(report), handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
        print(f"(data written to {args.json})")
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads import all_workloads

    table = Table(("name", "SPEC analogue", "description"))
    for workload in all_workloads():
        table.add_row(workload.name, workload.spec_analogue, workload.description)
    print(table.render())
    return 0


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    """The observability surface shared by run/all/profile."""
    parser.add_argument(
        "--trace", help="write a JSONL span trace of this invocation to FILE"
    )
    parser.add_argument(
        "--metrics", help="write the internal metrics snapshot to FILE as JSON"
    )
    parser.add_argument(
        "--timeseries",
        help="sample counters/gauges periodically and write the series to "
        "FILE (.prom = Prometheus text, otherwise JSONL)",
    )
    parser.add_argument(
        "--timeseries-interval",
        type=int,
        default=None,
        metavar="N",
        help="events between time-series samples (default 100000)",
    )
    parser.add_argument(
        "--flight",
        action="store_true",
        help="keep a crash ring of the last profile events; dumped to "
        "flight-crash-<experiment>.jsonl if an experiment raises",
    )
    parser.add_argument(
        "--flight-dump",
        metavar="FILE",
        help="with --flight: also dump the ring to FILE at exit",
    )
    parser.add_argument(
        "--jitlog",
        metavar="FILE",
        help="record the tier-2 specialization journal and write it to "
        "FILE as JSONL at exit (no-op off the tier2 engine)",
    )
    parser.add_argument(
        "--jitlog-map",
        metavar="FILE",
        help="also write a perf-map-style dump of the quickened pc "
        "ranges (START SIZE NAME) to FILE at exit",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        help="enable progress logging to stderr at this level",
    )


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    """Interpreter/replay selection shared by the simulating commands."""
    parser.add_argument(
        "--engine",
        choices=("threaded", "simple", "tier2", "auto"),
        help="interpreter engine (default: auto = threaded unless "
        "REPRO_ENGINE names one or REPRO_TIER2 opts into tier2)",
    )
    parser.add_argument(
        "--no-replay",
        action="store_true",
        help="re-simulate for every consumer instead of replaying from "
        "the simulate-once event-trace store",
    )
    parser.add_argument(
        "--fold",
        choices=("grouped", "numpy", "python", "event"),
        help="replay fold path (default: grouped = columnar folds, numpy "
        "kernel when available; event = legacy per-site event batches; "
        "REPRO_FOLD says otherwise)",
    )


def _apply_engine_args(args: argparse.Namespace):
    """Propagate --engine/--no-replay process-wide; returns a finalizer.

    Both travel as environment variables so parallel-runner worker
    processes inherit them; the finalizer restores the previous state
    so repeated ``main`` calls in one process stay independent.
    """
    import os

    from repro.core import fold as foldmod
    from repro.isa import machine as machine_module

    engine = getattr(args, "engine", None)
    no_replay = getattr(args, "no_replay", False)
    fold = getattr(args, "fold", None)
    saved = {
        key: os.environ.get(key)
        for key in ("REPRO_ENGINE", "REPRO_NO_REPLAY", "REPRO_FOLD")
    }
    replay_before = experiments.replay_enabled()
    fold_before = foldmod.fold_mode()
    # Fail a bad selector (e.g. a typo'd REPRO_ENGINE inherited from
    # the environment) here at startup, with the same clear error for
    # every command, instead of deep inside Machine construction.
    machine_module.resolve_engine(engine)
    if engine:
        os.environ["REPRO_ENGINE"] = engine
    if no_replay:
        os.environ["REPRO_NO_REPLAY"] = "1"
        experiments.set_replay_enabled(False)
    if fold:
        os.environ["REPRO_FOLD"] = fold
        foldmod.set_fold_mode(fold)

    def restore() -> None:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        experiments.set_replay_enabled(replay_before)
        foldmod.set_fold_mode(fold_before)

    return restore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="value-profiling",
        description="Value Profiling (MICRO'97) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(func=_cmd_list)

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment")
    run_parser.add_argument("--scale", type=float, default=1.0)
    run_parser.add_argument("--json", help="also write the raw data to this JSON file")
    run_parser.add_argument(
        "--no-cache", action="store_true", help="ignore the persistent profile cache"
    )
    _add_obs_args(run_parser)
    _add_engine_args(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument("--scale", type=float, default=1.0)
    all_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (0 = all CPUs)"
    )
    all_parser.add_argument(
        "--no-cache", action="store_true", help="ignore the persistent profile cache"
    )
    _add_obs_args(all_parser)
    _add_engine_args(all_parser)
    all_parser.set_defaults(func=_cmd_all)

    profile_parser = sub.add_parser("profile", help="profile one workload")
    profile_parser.add_argument("workload")
    profile_parser.add_argument("--variant", default="train", choices=("train", "test"))
    profile_parser.add_argument("--scale", type=float, default=1.0)
    profile_parser.add_argument("--kind", default="load", help="site kind (load, instruction, ...)")
    profile_parser.add_argument("--top", type=int, default=20)
    profile_parser.add_argument(
        "--json", help="also write the per-site metrics to this JSON file"
    )
    _add_obs_args(profile_parser)
    profile_parser.add_argument(
        "--engine",
        choices=("threaded", "simple", "tier2", "auto"),
        help="interpreter engine (default: auto = threaded unless "
        "REPRO_ENGINE names one or REPRO_TIER2 opts into tier2)",
    )
    profile_parser.set_defaults(func=_cmd_profile)

    stats_parser = sub.add_parser(
        "stats", help="summarize a --trace/--metrics capture"
    )
    stats_parser.add_argument("--trace", help="JSONL trace written by --trace")
    stats_parser.add_argument("--metrics", help="metrics JSON written by --metrics")
    stats_parser.add_argument(
        "--json", help="also write the machine-readable stats to this JSON file"
    )
    stats_parser.set_defaults(func=_cmd_stats)

    inspect_parser = sub.add_parser(
        "inspect", help="per-site TNV health for one workload"
    )
    inspect_parser.add_argument("workload")
    inspect_parser.add_argument("--variant", default="train", choices=("train", "test"))
    inspect_parser.add_argument("--scale", type=float, default=1.0)
    inspect_parser.add_argument(
        "--kind", default=None, help="restrict to one site kind (load, instruction, ...)"
    )
    inspect_parser.add_argument(
        "--site",
        type=int,
        default=None,
        metavar="N",
        help="drill into overview row N: TNV contents + Inv-Top/LVP trajectory",
    )
    inspect_parser.add_argument("--top", type=int, default=10)
    _add_obs_args(inspect_parser)
    _add_engine_args(inspect_parser)
    inspect_parser.set_defaults(func=_cmd_inspect)

    dash_parser = sub.add_parser(
        "dash", help="render an HTML dashboard from captured artifacts"
    )
    dash_parser.add_argument("--metrics", help="metrics JSON written by --metrics")
    dash_parser.add_argument("--trace", help="JSONL trace written by --trace")
    dash_parser.add_argument(
        "--timeseries", help="JSONL series written by --timeseries"
    )
    dash_parser.add_argument(
        "--bench-dir",
        default="benchmarks/results",
        help="directory holding BENCH_*.json baselines and BENCH_history.jsonl",
    )
    dash_parser.add_argument(
        "--jitlog",
        help="tier-2 specialization journal (JSONL written by --jitlog) "
        "to render as the Tier-2 panel's event feed",
    )
    dash_parser.add_argument(
        "--live",
        metavar="URL",
        help="scrape a running serve daemon's HTTP endpoint (e.g. "
        "http://127.0.0.1:7572) instead of reading capture files",
    )
    dash_parser.add_argument(
        "-o", "--output", default="repro-dash.html", help="output HTML file"
    )
    dash_parser.set_defaults(func=_cmd_dash)

    diff_parser = sub.add_parser(
        "diff", help="diff a workload's train profile against its test profile"
    )
    diff_parser.add_argument("workload")
    diff_parser.add_argument("--kind", default="load")
    diff_parser.add_argument("--scale", type=float, default=1.0)
    diff_parser.add_argument("--min-executions", type=int, default=10)
    diff_parser.add_argument("--threshold", type=float, default=0.1)
    diff_parser.add_argument("--top", type=int, default=10)
    diff_parser.set_defaults(func=_cmd_diff)

    report_parser = sub.add_parser(
        "report", help="actionable value-profile report for one workload"
    )
    report_parser.add_argument("workload")
    report_parser.add_argument("--variant", default="train", choices=("train", "test"))
    report_parser.add_argument("--scale", type=float, default=1.0)
    report_parser.add_argument("--kind", default="load")
    report_parser.set_defaults(func=_cmd_report)

    t2_parser = sub.add_parser(
        "tier2-report",
        help="specialization flight deck: jitlog lifecycle timelines, "
        "deopt taxonomy, predicted-vs-observed invariance",
    )
    t2_parser.add_argument("workload")
    t2_parser.add_argument("--variant", default="train", choices=("train", "test"))
    t2_parser.add_argument("--scale", type=float, default=1.0)
    t2_parser.add_argument("--top", type=int, default=10)
    t2_parser.add_argument(
        "--json", help="also write the machine-readable report to this JSON file"
    )
    _add_obs_args(t2_parser)
    t2_parser.set_defaults(func=_cmd_tier2_report)

    serve_parser = sub.add_parser(
        "serve", help="run the sharded live-profiling service"
    )
    serve_parser.add_argument("--shards", type=int, default=2)
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=7571, help="ingest listener port (0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--http-port", type=int, default=7572, help="query listener port (0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--runtime",
        choices=("inline", "process"),
        default="process",
        help="shard execution model: worker processes (default) or "
        "asyncio tasks in the server process",
    )
    serve_parser.add_argument(
        "--queue-size",
        type=int,
        default=64,
        metavar="N",
        help="per-shard bounded queue; the backpressure knob",
    )
    serve_parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=200,
        metavar="N",
        help="batches between automatic shard checkpoints (0 = only on "
        "/checkpoint and graceful stop)",
    )
    serve_parser.add_argument(
        "--snapshot-dir",
        help="where snapshots + journals live (default: a temporary "
        "directory, discarded on exit)",
    )
    serve_parser.add_argument(
        "--restore",
        action="store_true",
        help="load shard snapshots/journals from --snapshot-dir on "
        "startup (rolling restart)",
    )
    serve_parser.add_argument(
        "--timeseries-interval",
        type=int,
        default=None,
        metavar="N",
        help="enable the /timeseries collector, sampling every N events",
    )
    serve_parser.add_argument(
        "--slow-op-threshold",
        type=float,
        default=None,
        metavar="SECONDS",
        help="log a structured WARN (and count serve.slow_ops) for any "
        "shard fold or HTTP request slower than this (default 1.0)",
    )
    serve_parser.add_argument(
        "--trace",
        help="record spans (client batches, shard journal/fold, acks) and "
        "write the JSONL span trace to FILE on shutdown",
    )
    serve_parser.add_argument(
        "--metrics",
        help="write the internal metrics snapshot to FILE as JSON on "
        "shutdown (the live view is always at GET /metrics)",
    )
    serve_parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        help="enable progress logging to stderr at this level",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    push_parser = sub.add_parser(
        "push", help="replay a workload trace into a running serve daemon"
    )
    push_parser.add_argument("workload")
    push_parser.add_argument("--variant", default="train", choices=("train", "test"))
    push_parser.add_argument("--scale", type=float, default=1.0)
    push_parser.add_argument("--host", default="127.0.0.1")
    push_parser.add_argument("--port", type=int, default=7571)
    push_parser.add_argument(
        "--client", help="producer identity (default: <workload>.<variant>)"
    )
    push_parser.add_argument("--batch-size", type=int, default=1024)
    push_parser.add_argument("--window", type=int, default=32)
    push_parser.add_argument("--timeout", type=float, default=10.0)
    push_parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        help="enable progress logging to stderr at this level",
    )
    push_parser.set_defaults(func=_cmd_push)

    sub.add_parser("workloads", help="list the benchmark suite").set_defaults(
        func=_cmd_workloads
    )
    return parser


def _setup_observability(args: argparse.Namespace):
    """Enable the obs layer per the parsed flags; returns a finalizer.

    The finalizer writes whatever was collected (best-effort even when
    the command failed — a partial trace is exactly what you want when
    debugging a crash) and restores the disabled default so repeated
    ``main`` calls in one process (tests, notebooks) stay independent.
    """
    trace_file = getattr(args, "trace", None)
    metrics_file = getattr(args, "metrics", None)
    timeseries_file = getattr(args, "timeseries", None)
    timeseries_interval = getattr(args, "timeseries_interval", None)
    flight = getattr(args, "flight", False)
    flight_dump = getattr(args, "flight_dump", None)
    jitlog_file = getattr(args, "jitlog", None)
    jitlog_map_file = getattr(args, "jitlog_map", None)
    log_level = getattr(args, "log_level", None)
    if args.func in (_cmd_stats, _cmd_dash):
        # These read capture files, never record (dash's --jitlog is
        # an *input* journal, rendered, not recorded).
        trace_file = metrics_file = timeseries_file = None
        flight = False
        flight_dump = None
        jitlog_file = jitlog_map_file = None
    if log_level:
        configure_logging(log_level)
    if trace_file or metrics_file or timeseries_file:
        METRICS.reset()
        METRICS.enable()
        if trace_file:
            TRACER.enable()
    if timeseries_file:
        from repro.obs.timeseries import DEFAULT_INTERVAL, TIMESERIES

        TIMESERIES.enable(interval=timeseries_interval or DEFAULT_INTERVAL)
    if flight:
        from repro.obs.flight import FLIGHT

        FLIGHT.enable()
    if jitlog_file or jitlog_map_file:
        from repro.obs.jitlog import JITLOG

        JITLOG.enable()

    def finalize() -> None:
        if trace_file:
            TRACER.write_jsonl(trace_file)
            TRACER.disable()
        if timeseries_file:
            from repro.obs.timeseries import TIMESERIES

            # One final sample so short runs that never crossed the
            # interval still export their end state.
            TIMESERIES.sample()
            if timeseries_file.endswith(".prom"):
                TIMESERIES.write_prometheus(timeseries_file)
            else:
                TIMESERIES.write_jsonl(timeseries_file)
            TIMESERIES.disable()
        if metrics_file:
            METRICS.write(metrics_file)
        if trace_file or metrics_file or timeseries_file:
            METRICS.disable()
        if flight:
            from repro.obs.flight import FLIGHT

            if flight_dump:
                FLIGHT.dump(flight_dump, reason="cli-exit")
            FLIGHT.disable()
        if jitlog_file or jitlog_map_file:
            from repro.obs.jitlog import JITLOG

            if jitlog_file:
                JITLOG.write_jsonl(jitlog_file)
            if jitlog_map_file:
                JITLOG.write_map(jitlog_map_file)
            JITLOG.disable()

    return finalize


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    finalize = _setup_observability(args)
    restore_engine = None
    try:
        restore_engine = _apply_engine_args(args)
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if restore_engine is not None:
            restore_engine()
        finalize()


if __name__ == "__main__":
    sys.exit(main())
