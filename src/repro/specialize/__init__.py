"""Profile-guided code specialization (thesis Chapter X).

Pipeline: profile parameters (:mod:`repro.pyprof` or any
:class:`~repro.core.profile.ProfileDatabase`) → select candidates
(:func:`find_candidates`) → generate a guarded specialized variant
(:func:`specialize_function` / :class:`SpecializedFunction`) — or let
:class:`AdaptiveSpecializer` do the whole loop at run time.
"""

from repro.specialize.analysis import BenefitModel, SpecializationCandidate, find_candidates
from repro.specialize.codegen import specialize_function
from repro.specialize.runtime import (
    AdaptiveConfig,
    AdaptiveFunction,
    AdaptiveSpecializer,
    SpecializedFunction,
)

__all__ = [
    "AdaptiveConfig",
    "AdaptiveFunction",
    "AdaptiveSpecializer",
    "BenefitModel",
    "SpecializationCandidate",
    "SpecializedFunction",
    "find_candidates",
    "specialize_function",
]
