"""Run-time dispatch and adaptive specialization.

Implements the execution side of the thesis' Chapter X design: a
*general* version of the code, one or more *specialized* versions
conditioned on invariant parameter values, and a selection guard that
routes each call.  :class:`AdaptiveSpecializer` closes the whole loop
the thesis proposes — profile the parameters with TNV tables, detect a
semi-invariant one, generate the specialized variant, and install the
guard — with no user annotations, which is exactly the automation the
paper argues value profiling enables over [2, 12, 15, 25, 26].
"""

from __future__ import annotations

import functools
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.profile import ProfileDatabase, TNVConfig
from repro.core.sites import python_site
from repro.errors import SpecializationError
from repro.specialize.codegen import specialize_function


@dataclass
class _Variant:
    """One specialized variant plus its guard bindings.

    ``arg_checks`` and ``keep_positions`` are precomputed positional
    forms of the guard so the hot dispatch path is a few tuple
    compares, like the single compare-and-branch guard the thesis'
    specialized Alpha code uses.
    """

    bindings: Dict[str, object]
    func: Callable
    arg_checks: Tuple[Tuple[int, object], ...] = ()
    keep_positions: Tuple[int, ...] = ()
    hits: int = 0


class SpecializedFunction:
    """Guarded dispatcher over a general function and its variants.

    Calls whose named arguments match a variant's bindings run the
    specialized code (with the bound arguments dropped); everything
    else runs the general version.  Guard hit/miss counts are exposed
    for the specialization experiments.
    """

    def __init__(self, func: Callable) -> None:
        self.general = func
        self.variants: List[_Variant] = []
        self.guard_misses = 0
        signature = inspect.signature(func)
        self._param_names = [
            p.name
            for p in signature.parameters.values()
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
        functools.update_wrapper(self, func)

    def add_variant(self, bindings: Mapping[str, object]) -> Callable:
        """Generate and install a specialized variant; returns it."""
        specialized = specialize_function(self.general, bindings)
        positions = {name: index for index, name in enumerate(self._param_names)}
        arg_checks = tuple(
            (positions[name], value) for name, value in bindings.items() if name in positions
        )
        keep = tuple(
            index for index, name in enumerate(self._param_names) if name not in bindings
        )
        self.variants.append(_Variant(dict(bindings), specialized, arg_checks, keep))
        return specialized

    def _bind(self, args: Tuple, kwargs: Dict[str, Any]) -> Dict[str, Any]:
        bound = dict(zip(self._param_names, args))
        bound.update(kwargs)
        return bound

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        if not kwargs:
            # Hot path: purely positional call, guard by position.
            count = len(args)
            for variant in self.variants:
                for position, value in variant.arg_checks:
                    if position >= count or args[position] != value:
                        break
                else:
                    variant.hits += 1
                    return variant.func(*[args[i] for i in variant.keep_positions if i < count])
            self.guard_misses += 1
            return self.general(*args)
        bound = self._bind(args, kwargs)
        for variant in self.variants:
            for name, value in variant.bindings.items():
                if bound.get(name) != value:
                    break
            else:
                variant.hits += 1
                remaining = {k: v for k, v in bound.items() if k not in variant.bindings}
                ordered = [remaining.pop(name) for name in self._param_names if name in remaining]
                return variant.func(*ordered, **remaining)
        self.guard_misses += 1
        return self.general(*args, **kwargs)

    @property
    def guard_hits(self) -> int:
        return sum(variant.hits for variant in self.variants)


@dataclass
class AdaptiveConfig:
    """Knobs of the adaptive profile-then-specialize loop.

    Attributes:
        warmup_calls: calls profiled before the specialization decision.
        min_invariance: TNV-estimated Inv-Top(1) required to specialize
            a parameter.
        max_variants: cap on generated variants (one binding each).
        tnv: TNV table configuration used during warmup.
    """

    warmup_calls: int = 200
    min_invariance: float = 0.80
    max_variants: int = 1
    tnv: TNVConfig = field(default_factory=lambda: TNVConfig(capacity=8, steady=4, clear_interval=64))


class AdaptiveSpecializer:
    """Self-specializing function wrapper (decorator).

    Phase 1 (warmup): every call records each positional argument into
    a TNV table.  Phase 2 (decision): parameters whose estimated
    invariance clears ``min_invariance`` are bound to their top value
    and a specialized variant is generated.  Phase 3 (steady state):
    calls dispatch through the guard.

    Example::

        @AdaptiveSpecializer()
        def render(width, mode):
            ...

        # after `warmup_calls` calls with mode=3 dominating, calls with
        # mode == 3 run a constant-folded variant.
    """

    def __init__(self, config: Optional[AdaptiveConfig] = None) -> None:
        self.config = config or AdaptiveConfig()

    def __call__(self, func: Callable) -> "AdaptiveFunction":
        return AdaptiveFunction(func, self.config)


class AdaptiveFunction:
    """The wrapper installed by :class:`AdaptiveSpecializer`."""

    def __init__(self, func: Callable, config: AdaptiveConfig) -> None:
        self.config = config
        self.database = ProfileDatabase(config=config.tnv, exact=False, name=f"adaptive:{func.__name__}")
        self.dispatcher = SpecializedFunction(func)
        self.calls = 0
        self.specialized = False
        self._param_names = self.dispatcher._param_names
        module = getattr(func, "__module__", "?") or "?"
        self._sites = [
            python_site(module, func.__name__, f"arg{i}:{name}")
            for i, name in enumerate(self._param_names)
        ]
        functools.update_wrapper(self, func)

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        if not self.specialized:
            bound = dict(zip(self._param_names, args))
            bound.update(kwargs)
            for site, name in zip(self._sites, self._param_names):
                if name in bound:
                    try:
                        self.database.record(site, bound[name])
                    except TypeError:
                        pass  # unhashable argument: not a candidate
            self.calls += 1
            if self.calls >= self.config.warmup_calls:
                self._decide()
        return self.dispatcher(*args, **kwargs)

    def _decide(self) -> None:
        """Pick the most invariant qualifying parameters and specialize."""
        self.specialized = True  # one decision only, even if nothing qualifies
        scored = []
        for site, name in zip(self._sites, self._param_names):
            if site not in self.database:
                continue
            profile = self.database.profile_for(site)
            invariance = profile.tnv.estimated_invariance(1)
            if invariance >= self.config.min_invariance:
                scored.append((invariance, name, profile.tnv.top_value()))
        scored.sort(reverse=True)
        for invariance, name, value in scored[: self.config.max_variants]:
            try:
                self.dispatcher.add_variant({name: value})
            except SpecializationError:
                continue  # e.g. source unavailable: stay general

    @property
    def guard_hits(self) -> int:
        return self.dispatcher.guard_hits

    @property
    def guard_misses(self) -> int:
        return self.dispatcher.guard_misses
