"""Profile-guided memoization (Richardson [32], thesis §X).

Richardson "suggests keeping a memoization cache of recently executed
function results with their inputs".  Whether that pays depends on
exactly what value profiling measures: the invariance of the
function's *argument tuple*.  This module provides:

* :class:`MemoCache` — a bounded memo cache with hit/miss statistics.
* :func:`memoizability` — estimate a function's cache hit rate from a
  value profile of its argument tuples (a TNV table over tuples).
* :class:`AdaptiveMemoizer` — a decorator that profiles argument
  tuples during a warmup phase and enables the cache only if the
  profile predicts enough hits, mirroring
  :class:`~repro.specialize.runtime.AdaptiveSpecializer`.

Memoization is only sound for pure functions; purity is the caller's
contract (as it was in Richardson's proposal).
"""

from __future__ import annotations

import functools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional, Tuple

from repro.core.tnv import TNVTable


class MemoCache:
    """Bounded LRU memo cache with statistics."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def lookup(self, key: Hashable) -> Tuple[bool, Any]:
        """(found, value); found updates recency."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True, self._entries[key]
        self.misses += 1
        return False, None

    def insert(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class MemoizabilityEstimate:
    """Profile-based prediction of memo-cache effectiveness."""

    calls: int
    #: fraction of calls covered by the top-N argument tuples
    top_n_coverage: float
    #: fraction covered by the single hottest tuple
    top_1_coverage: float
    #: predicted cache hit rate: top-N coverage minus each covered
    #: tuple's first occurrence (which is always a compulsory miss).
    #: Without this correction a warmup shorter than the table capacity
    #: predicts 100% for streams that never repeat at all.
    predicted_hit_rate: float = 0.0

    def worth_memoizing(self, threshold: float = 0.5) -> bool:
        return self.predicted_hit_rate >= threshold


def memoizability(
    func: Callable,
    calls,
    table_capacity: int = 32,
) -> MemoizabilityEstimate:
    """Profile ``func``'s argument tuples over ``calls``.

    Uses a TNV table over whole argument tuples — the same machinery
    the paper applies to single values, lifted to tuples.  Calls with
    unhashable arguments can never be served from a cache, so they
    count as guaranteed misses in the coverage estimate.
    """
    table = TNVTable(capacity=table_capacity, steady=table_capacity // 2, clear_interval=512)
    count = 0
    cacheable = 0
    for args in calls:
        count += 1
        key = _tuple_key(args)
        if key is None:
            continue
        cacheable += 1
        table.record(key)
    if count == 0:
        return MemoizabilityEstimate(0, 0.0, 0.0, 0.0)
    scale = cacheable / count
    covered = sum(entry.count for entry in table.snapshot())
    predicted = max(0, covered - len(table)) / count
    return MemoizabilityEstimate(
        calls=count,
        top_n_coverage=table.estimated_invariance(table_capacity) * scale,
        top_1_coverage=table.estimated_invariance(1) * scale,
        predicted_hit_rate=predicted,
    )


def _tuple_key(args: tuple) -> Optional[Hashable]:
    """Cache key for an argument tuple, or ``None`` if uncacheable.

    An unhashable argument (list, dict, ...) makes the whole call
    uncacheable: caching by type or identity could return a stale
    result for a different value.
    """
    try:
        hash(args)
    except TypeError:
        return None
    return args


class AdaptiveMemoizer:
    """Self-deciding memoization wrapper.

    Phase 1 (warmup): record argument tuples in a TNV table; the
    function always executes.  Phase 2 (decision): if the table
    predicts a hit rate of at least ``threshold``, install a
    :class:`MemoCache`; otherwise stay pass-through forever.

    Example::

        @AdaptiveMemoizer(threshold=0.5)
        def price(route, day):
            ...
    """

    def __init__(
        self,
        warmup_calls: int = 200,
        threshold: float = 0.5,
        cache_capacity: int = 256,
        table_capacity: int = 32,
    ) -> None:
        self.warmup_calls = warmup_calls
        self.threshold = threshold
        self.cache_capacity = cache_capacity
        self.table_capacity = table_capacity

    def __call__(self, func: Callable) -> "MemoizedFunction":
        return MemoizedFunction(func, self)


class MemoizedFunction:
    """The wrapper installed by :class:`AdaptiveMemoizer`."""

    def __init__(self, func: Callable, config: AdaptiveMemoizer) -> None:
        self.func = func
        self.config = config
        self.table = TNVTable(
            capacity=config.table_capacity,
            steady=config.table_capacity // 2,
            clear_interval=512,
        )
        self.calls = 0
        self.decided = False
        self.cache: Optional[MemoCache] = None
        functools.update_wrapper(self, func)

    def __call__(self, *args: Any) -> Any:
        if self.cache is not None:
            key = _tuple_key(args)
            if key is None:  # unhashable arguments: never cached
                return self.func(*args)
            found, value = self.cache.lookup(key)
            if found:
                return value
            value = self.func(*args)
            self.cache.insert(key, value)
            return value
        if not self.decided:
            self.calls += 1
            key = _tuple_key(args)
            if key is not None:
                self.table.record(key)
            if self.calls >= self.config.warmup_calls:
                self.decided = True
                covered = sum(entry.count for entry in self.table.snapshot())
                # First occurrences are compulsory misses; uncacheable
                # calls (not in the table) are guaranteed misses.
                predicted = max(0, covered - len(self.table)) / self.calls
                if predicted >= self.config.threshold:
                    self.cache = MemoCache(self.config.cache_capacity)
        return self.func(*args)

    @property
    def memoizing(self) -> bool:
        return self.cache is not None
