"""Candidate selection for code specialization (thesis Chapter X).

The thesis' pipeline: value-profile a program, find the semi-invariant
variables, and specialize the code that consumes them, guarded by an
equality test on the invariant value.  This module implements the
*selection* step over a :class:`~repro.core.profile.ProfileDatabase`:
rank sites by expected benefit and expose the top value to bind.

The benefit model is the paper's break-even argument: specialization
pays when

    executions * (invariance * saving_per_call) > executions * guard_cost
                                                   + specialization_cost

i.e. the invariant path must be hot enough and invariant enough to
amortize both the per-call guard and the one-time code generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.profile import ProfileDatabase
from repro.core.sites import Site, SiteKind


@dataclass(frozen=True)
class SpecializationCandidate:
    """One profitable-looking (site, value) binding."""

    site: Site
    value: object
    invariance: float
    executions: int

    @property
    def expected_hits(self) -> float:
        """Executions expected to take the specialized path."""
        return self.invariance * self.executions


@dataclass(frozen=True)
class BenefitModel:
    """Break-even estimate for one candidate.

    Attributes:
        saving_per_call: time saved per specialized-path call (general
            minus specialized), in arbitrary cost units.
        guard_cost: per-call cost of the dispatch guard.
        specialization_cost: one-time cost of generating the variant.
    """

    saving_per_call: float = 1.0
    guard_cost: float = 0.05
    specialization_cost: float = 100.0

    def net_benefit(self, candidate: SpecializationCandidate) -> float:
        return self.net_benefit_terms(candidate.executions, candidate.invariance)

    def net_benefit_terms(
        self,
        executions: float,
        invariance: float,
        saving_per_call: Optional[float] = None,
        guards: int = 1,
    ) -> float:
        """The break-even inequality over raw terms.

        Lets callers without a :class:`SpecializationCandidate` — the
        tier-2 engine scoring a basic block's guard set — reuse the
        same model: ``saving_per_call`` overrides the configured
        per-call saving, ``guards`` scales the per-call guard cost by
        the number of guarded values.
        """
        saving = self.saving_per_call if saving_per_call is None else saving_per_call
        gain = executions * invariance * saving
        cost = executions * self.guard_cost * guards + self.specialization_cost
        return gain - cost

    def breakeven_invariance(self, executions: int) -> float:
        """Minimum invariance at which specialization pays off."""
        if executions == 0 or self.saving_per_call == 0:
            return 1.0
        needed = (executions * self.guard_cost + self.specialization_cost) / (
            executions * self.saving_per_call
        )
        return min(1.0, needed)


def find_candidates(
    database: ProfileDatabase,
    kind: Optional[SiteKind] = None,
    min_invariance: float = 0.50,
    min_executions: int = 100,
    model: Optional[BenefitModel] = None,
) -> List[SpecializationCandidate]:
    """Rank specialization candidates from a profile.

    Uses the TNV table's top value (what a deployed profiler would
    have), not the exact histogram.  Candidates are sorted by expected
    specialized-path executions, descending; when a ``model`` is given,
    candidates with non-positive net benefit are dropped.
    """
    candidates: List[SpecializationCandidate] = []
    for profile in database.profiles(kind):
        if profile.executions < min_executions:
            continue
        top_value = profile.tnv.top_value()
        if top_value is None:
            continue
        invariance = profile.tnv.estimated_invariance(1)
        if invariance < min_invariance:
            continue
        candidate = SpecializationCandidate(
            site=profile.site,
            value=top_value,
            invariance=invariance,
            executions=profile.executions,
        )
        if model is not None and model.net_benefit(candidate) <= 0:
            continue
        candidates.append(candidate)
    candidates.sort(key=lambda c: (-c.expected_hits, c.site))
    return candidates
