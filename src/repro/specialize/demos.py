"""Demo functions for the code-specialization experiments (Chapter X).

These play the role of the thesis' specialization case studies:
functions whose *algorithmic shape* depends on a semi-invariant
parameter, so binding that parameter lets the specializer prune
per-iteration branches and fold constants.  Each demo ships with a
deterministic call-stream generator whose parameter distribution is
semi-invariant (one dominant value plus a minority of others).

They live in a real module (not a test body) because both the AST
instrumenter and the specializer need retrievable source.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple


def filter_signal(samples, mode, gain):
    """Per-sample transform selected by ``mode`` (0..3).

    The mode test sits inside the loop, so a general call pays one
    branch chain per sample; specializing on ``mode`` prunes it to
    straight-line code.
    """
    total = 0
    for sample in samples:
        if mode == 0:
            total += sample * gain
        elif mode == 1:
            total += (sample * gain) >> 2
        elif mode == 2:
            total += abs(sample - gain)
        else:
            total += sample ^ gain
    return total


def checksum_block(data, poly, init):
    """Bit-serial CRC-style checksum; ``poly`` is normally invariant."""
    crc = init
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
    return crc


def render_row(values, width, mode):
    """Fixed-width row formatting; ``width`` and ``mode`` rarely change."""
    parts = []
    for value in values:
        if mode == 0:
            text = str(value).rjust(width)
        elif mode == 1:
            text = str(value).ljust(width)
        else:
            text = str(value).center(width)
        parts.append(text)
    return "|".join(parts)


@dataclass(frozen=True)
class Demo:
    """One specialization case study."""

    name: str
    func: Callable
    #: names of the parameters designed to be semi-invariant
    invariant_params: Tuple[str, ...]
    make_calls: Callable[[str, int, random.Random], List[tuple]]


def _filter_calls(variant: str, count: int, rng: random.Random) -> List[tuple]:
    dominant_mode = 1 if variant == "train" else 1  # same hot mode across inputs
    calls = []
    for _ in range(count):
        samples = [rng.randrange(256) for _ in range(256)]
        mode = dominant_mode if rng.random() < 0.92 else rng.randrange(4)
        gain = 3 if rng.random() < 0.95 else rng.randrange(8)
        calls.append((samples, mode, gain))
    return calls


def _checksum_calls(variant: str, count: int, rng: random.Random) -> List[tuple]:
    poly = 0xEDB8 if variant == "train" else 0xEDB8
    calls = []
    for _ in range(count):
        data = [rng.randrange(256) for _ in range(64)]
        p = poly if rng.random() < 0.97 else 0x1021
        calls.append((data, p, 0xFFFF))
    return calls


def _render_calls(variant: str, count: int, rng: random.Random) -> List[tuple]:
    calls = []
    for _ in range(count):
        values = [rng.randrange(10_000) for _ in range(48)]
        width = 8 if rng.random() < 0.9 else rng.randrange(4, 12)
        mode = 0 if rng.random() < 0.88 else rng.randrange(3)
        calls.append((values, width, mode))
    return calls


DEMOS: List[Demo] = [
    Demo("filter_signal", filter_signal, ("mode", "gain"), _filter_calls),
    Demo("checksum_block", checksum_block, ("poly", "init"), _checksum_calls),
    Demo("render_row", render_row, ("width", "mode"), _render_calls),
]


def demo_calls(demo: Demo, variant: str = "train", count: int = 300) -> List[tuple]:
    """Deterministic call stream for one demo."""
    rng = random.Random(f"{demo.name}/{variant}")
    return demo.make_calls(variant, count, rng)
