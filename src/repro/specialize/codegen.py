"""Specialized-code generation by constant substitution and folding.

Given a function and a binding of some parameters to the invariant
values a profile discovered, this module generates the *specialized
version* of the code the thesis' Chapter X describes: the parameter
becomes a compile-time constant, and a folding pass propagates it —
collapsing arithmetic, pruning dead ``if`` branches, and unrolling the
decision work the general version repeats on every call.

The transformation is deliberately conservative: only pure-literal
expressions are folded, and any failure falls back to leaving the
expression untouched, so the specialized function is always
semantically equivalent to the original under the guard
``param == value``.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, Dict, Mapping

from repro.errors import SpecializationError

_FOLDABLE_TYPES = (int, float, bool, str, bytes, type(None))


def _is_literal(value: object) -> bool:
    return isinstance(value, _FOLDABLE_TYPES) or (
        isinstance(value, tuple) and all(_is_literal(item) for item in value)
    )


class _Substituter(ast.NodeTransformer):
    """Replace parameter loads with constants; then fold."""

    def __init__(self, bindings: Mapping[str, object], const_names: Mapping[str, str]) -> None:
        self.bindings = dict(bindings)
        self.const_names = dict(const_names)

    def visit_Name(self, node: ast.Name) -> ast.expr:
        if isinstance(node.ctx, ast.Load) and node.id in self.bindings:
            value = self.bindings[node.id]
            if _is_literal(value):
                return ast.copy_location(ast.Constant(value=value), node)
            # Non-literal invariants are injected as module-level names.
            return ast.copy_location(
                ast.Name(id=self.const_names[node.id], ctx=ast.Load()), node
            )
        return node

    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.stmt:
        # A nested def that rebinds the name shadows it; skip descending
        # if the parameter appears among the nested function's args.
        nested_args = {arg.arg for arg in node.args.args}
        if nested_args & set(self.bindings):
            return node
        self.generic_visit(node)
        return node


class _Folder(ast.NodeTransformer):
    """Constant folding over the substituted tree.

    Folds binary/unary/compare/bool operations whose operands are
    constants, and prunes ``if``/ternary branches with constant tests.
    Evaluation errors (overflow, division by zero...) leave the node
    unfolded so the runtime behaviour is preserved.
    """

    def __init__(self) -> None:
        self.folds = 0
        self.pruned_branches = 0

    def _try_eval(self, node: ast.expr) -> ast.expr:
        try:
            value = ast.literal_eval(node)
        except (ValueError, TypeError, SyntaxError, MemoryError):
            return node
        if not _is_literal(value):
            return node
        self.folds += 1
        return ast.copy_location(ast.Constant(value=value), node)

    def visit_BinOp(self, node: ast.BinOp) -> ast.expr:
        self.generic_visit(node)
        if isinstance(node.left, ast.Constant) and isinstance(node.right, ast.Constant):
            left, right = node.left.value, node.right.value
            try:
                value = _BINOPS[type(node.op)](left, right)
            except (KeyError, ZeroDivisionError, TypeError, ValueError, OverflowError):
                return node
            if _is_literal(value):
                self.folds += 1
                return ast.copy_location(ast.Constant(value=value), node)
        return node

    def visit_UnaryOp(self, node: ast.UnaryOp) -> ast.expr:
        self.generic_visit(node)
        if isinstance(node.operand, ast.Constant):
            try:
                value = _UNARYOPS[type(node.op)](node.operand.value)
            except (KeyError, TypeError):
                return node
            if _is_literal(value):
                self.folds += 1
                return ast.copy_location(ast.Constant(value=value), node)
        return node

    def visit_Compare(self, node: ast.Compare) -> ast.expr:
        self.generic_visit(node)
        if isinstance(node.left, ast.Constant) and all(
            isinstance(c, ast.Constant) for c in node.comparators
        ):
            try:
                left = node.left.value
                result = True
                for op, comparator in zip(node.ops, node.comparators):
                    right = comparator.value
                    if not _CMPOPS[type(op)](left, right):
                        result = False
                        break
                    left = right
            except (KeyError, TypeError):
                return node
            self.folds += 1
            return ast.copy_location(ast.Constant(value=result), node)
        return node

    def visit_BoolOp(self, node: ast.BoolOp) -> ast.expr:
        self.generic_visit(node)
        # Short-circuit on constant *leading* operands: `True or X`
        # decides immediately; `False or X` reduces to X (and dually
        # for `and`).  Only leading operands are safe to judge — later
        # ones are guarded by the non-constant prefix.
        is_or = isinstance(node.op, ast.Or)
        values = list(node.values)
        while values and isinstance(values[0], ast.Constant):
            first = values[0]
            decides = bool(first.value) if is_or else not bool(first.value)
            if decides:
                self.pruned_branches += 1
                return ast.copy_location(first, node)
            values.pop(0)
            self.folds += 1
        if not values:
            # All operands were non-deciding constants; Python returns
            # the last operand's value.
            return ast.copy_location(node.values[-1], node)
        if len(values) == 1:
            return values[0]
        if len(values) != len(node.values):
            node.values = values
        return node

    def visit_IfExp(self, node: ast.IfExp) -> ast.expr:
        self.generic_visit(node)
        if isinstance(node.test, ast.Constant):
            self.pruned_branches += 1
            return node.body if node.test.value else node.orelse
        return node

    def visit_If(self, node: ast.If):
        self.generic_visit(node)
        if isinstance(node.test, ast.Constant):
            self.pruned_branches += 1
            taken = node.body if node.test.value else node.orelse
            return taken or [ast.copy_location(ast.Pass(), node)]
        return node

    def visit_While(self, node: ast.While):
        self.generic_visit(node)
        if isinstance(node.test, ast.Constant) and not node.test.value:
            self.pruned_branches += 1
            return node.orelse or [ast.copy_location(ast.Pass(), node)]
        return node


_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a ** b,
    ast.LShift: lambda a, b: a << b,
    ast.RShift: lambda a, b: a >> b,
    ast.BitAnd: lambda a, b: a & b,
    ast.BitOr: lambda a, b: a | b,
    ast.BitXor: lambda a, b: a ^ b,
}

_UNARYOPS = {
    ast.USub: lambda a: -a,
    ast.UAdd: lambda a: +a,
    ast.Invert: lambda a: ~a,
    ast.Not: lambda a: not a,
}

_CMPOPS = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
}


def _rebound_names(funcdef: ast.FunctionDef) -> set:
    """Names the function body rebinds (assignment, loop target,
    nested def/class, with-as...).  Binding such a parameter as a
    constant would silently change semantics, so the specializer
    refuses them."""
    rebound = set()

    class _Scanner(ast.NodeVisitor):
        def visit_Name(self, node: ast.Name) -> None:
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                rebound.add(node.id)
            self.generic_visit(node)

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            rebound.add(node.name)  # the def itself rebinds the name

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            rebound.add(node.name)

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            rebound.add(node.name)

    scanner = _Scanner()
    for stmt in funcdef.body:
        scanner.visit(stmt)
    return rebound


def specialize_function(func: Callable, bindings: Mapping[str, object]) -> Callable:
    """Build the specialized variant of ``func`` under ``bindings``.

    Args:
        func: a plain Python function whose source is retrievable and
            which captures no closure.
        bindings: parameter name -> invariant value.  Bound parameters
            are removed from the specialized signature; callers go
            through :class:`repro.specialize.runtime.SpecializedFunction`
            which handles guarding and argument dropping.

    Returns:
        The specialized function.  Fold statistics are attached as
        ``__vp_folds__`` and ``__vp_pruned__``.
    """
    if not bindings:
        raise SpecializationError("no parameter bindings given")
    if getattr(func, "__closure__", None):
        raise SpecializationError(
            f"cannot specialize {func.__qualname__}: closures are not supported"
        )
    try:
        source = inspect.getsource(func)
    except (OSError, TypeError) as exc:
        raise SpecializationError(f"cannot retrieve source of {func!r}: {exc}") from exc

    tree = ast.parse(textwrap.dedent(source))
    funcdef = tree.body[0]
    if not isinstance(funcdef, ast.FunctionDef):
        raise SpecializationError(f"{func!r} is not a plain function")
    funcdef.decorator_list = []

    param_names = {arg.arg for arg in funcdef.args.args}
    unknown = set(bindings) - param_names
    if unknown:
        raise SpecializationError(
            f"{func.__qualname__} has no parameter(s) {sorted(unknown)}"
        )
    rebound = _rebound_names(funcdef) & set(bindings)
    if rebound:
        raise SpecializationError(
            f"{func.__qualname__} rebinds parameter(s) {sorted(rebound)}; "
            "substituting them as constants would be unsound"
        )
    defaults_start = len(funcdef.args.args) - len(funcdef.args.defaults)
    kept_args = []
    kept_defaults = []
    for index, arg in enumerate(funcdef.args.args):
        if arg.arg in bindings:
            continue
        kept_args.append(arg)
        if index >= defaults_start:
            kept_defaults.append(funcdef.args.defaults[index - defaults_start])
    funcdef.args.args = kept_args
    funcdef.args.defaults = kept_defaults
    funcdef.name = f"{funcdef.name}__spec"

    const_names = {name: f"__spec_const_{name}__" for name in bindings}
    substituter = _Substituter(bindings, const_names)
    funcdef.body = [substituter.visit(stmt) for stmt in funcdef.body]
    folder = _Folder()
    funcdef.body = [folder.visit(stmt) for stmt in funcdef.body]
    # Statement visitors may return lists; flatten one level.
    flattened = []
    for stmt in funcdef.body:
        if isinstance(stmt, list):
            flattened.extend(stmt)
        else:
            flattened.append(stmt)
    funcdef.body = flattened or [ast.Pass()]
    ast.fix_missing_locations(tree)

    namespace = dict(func.__globals__)
    for name, value in bindings.items():
        if not _is_literal(value):
            namespace[const_names[name]] = value
    code = compile(tree, filename=f"<specialized {func.__qualname__}>", mode="exec")
    exec(code, namespace)
    specialized = namespace[funcdef.name]
    specialized.__vp_folds__ = folder.folds
    specialized.__vp_pruned__ = folder.pruned_branches
    specialized.__wrapped__ = func
    return specialized
