"""AST-level value profiling of Python functions.

Statement-level instrumentation: every simple assignment, augmented
assignment, ``for`` loop variable, and ``return`` inside a function is
rewritten to pass its value through a recorder before use — the Python
analogue of ATOM inserting a probe after each register-defining
instruction.  Example::

    def body(x):
        y = x * 2          ->   y = __vp_record__('y', x * 2)
        return y + 1       ->   return __vp_record__('return', y + 1)

Limitations (checked, with clear errors): the function's source must
be retrievable via :mod:`inspect` and it must not capture a closure.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, Hashable, Optional

from repro.core.profile import ProfileDatabase, TNVConfig
from repro.core.sites import python_site
from repro.errors import ProfileError

_RECORDER_NAME = "__vp_record__"


class _Instrumenter(ast.NodeTransformer):
    """Rewrites value-producing statements to route through the recorder."""

    def __init__(self) -> None:
        self.instrumented_names: set = set()

    def _record_call(self, label: str, value: ast.expr) -> ast.expr:
        self.instrumented_names.add(label)
        return ast.Call(
            func=ast.Name(id=_RECORDER_NAME, ctx=ast.Load()),
            args=[ast.Constant(value=label), value],
            keywords=[],
        )

    def visit_Assign(self, node: ast.Assign) -> ast.stmt:
        self.generic_visit(node)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            node.value = self._record_call(node.targets[0].id, node.value)
        return node

    def visit_AnnAssign(self, node: ast.AnnAssign) -> ast.stmt:
        self.generic_visit(node)
        if isinstance(node.target, ast.Name) and node.value is not None:
            node.value = self._record_call(node.target.id, node.value)
        return node

    def visit_AugAssign(self, node: ast.AugAssign) -> list:
        self.generic_visit(node)
        if not isinstance(node.target, ast.Name):
            return node
        # x += e  ->  x += e ; __vp_record__('x', x)
        probe = ast.Expr(
            value=self._record_call(
                node.target.id, ast.Name(id=node.target.id, ctx=ast.Load())
            )
        )
        return [node, probe]

    def visit_For(self, node: ast.For) -> ast.stmt:
        self.generic_visit(node)
        if isinstance(node.target, ast.Name):
            probe = ast.Expr(
                value=self._record_call(
                    node.target.id, ast.Name(id=node.target.id, ctx=ast.Load())
                )
            )
            node.body = [probe] + node.body
        return node

    def visit_Return(self, node: ast.Return) -> ast.stmt:
        self.generic_visit(node)
        if node.value is not None:
            node.value = self._record_call("return", node.value)
        return node

    # Nested definitions keep their own semantics; do not descend.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.stmt:
        return node

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> ast.stmt:
        return node

    def visit_Lambda(self, node: ast.Lambda) -> ast.expr:
        return node


def _normalize(value: object) -> Hashable:
    try:
        hash(value)
    except TypeError:
        return f"<{type(value).__name__}>"
    return value


def instrument_function(
    func: Callable,
    database: Optional[ProfileDatabase] = None,
    config: Optional[TNVConfig] = None,
) -> Callable:
    """Return an instrumented clone of ``func`` plus its database.

    The clone behaves identically (modulo the recording side effect)
    and carries the database as ``clone.__vp_database__``.
    """
    if getattr(func, "__closure__", None):
        raise ProfileError(
            f"cannot instrument {func.__qualname__}: closures are not supported"
        )
    try:
        source = inspect.getsource(func)
    except (OSError, TypeError) as exc:
        raise ProfileError(f"cannot retrieve source of {func!r}: {exc}") from exc

    tree = ast.parse(textwrap.dedent(source))
    funcdef = tree.body[0]
    if not isinstance(funcdef, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise ProfileError(f"source of {func!r} is not a function definition")
    funcdef.decorator_list = []

    instrumenter = _Instrumenter()
    funcdef.body = [instrumenter.visit(stmt) for stmt in funcdef.body]
    # visit() may return lists (AugAssign expansion); flatten.
    flattened = []
    for stmt in funcdef.body:
        if isinstance(stmt, list):
            flattened.extend(stmt)
        else:
            flattened.append(stmt)
    funcdef.body = flattened
    ast.fix_missing_locations(tree)

    if database is None:
        database = ProfileDatabase(config=config, name=f"ast:{func.__qualname__}")
    module = getattr(func, "__module__", "?") or "?"
    site_cache: dict = {}

    def recorder(label: str, value: object) -> object:
        site = site_cache.get(label)
        if site is None:
            site = python_site(module, func.__name__, label)
            site_cache[label] = site
        database.record(site, _normalize(value))
        return value

    namespace = dict(func.__globals__)
    namespace[_RECORDER_NAME] = recorder
    code = compile(tree, filename=f"<instrumented {func.__qualname__}>", mode="exec")
    exec(code, namespace)
    clone = namespace[funcdef.name]
    clone.__vp_database__ = database
    clone.__wrapped__ = func
    return clone
