"""Python-host value-profiling front end.

Three instrumentation granularities, all feeding the same core:

* :class:`FunctionProfiler` / :func:`profile_calls` — arguments and
  return values via the CPython profiling hook (cheap, coarse).
* :func:`instrument_function` — per-statement AST instrumentation
  (assignments, loop variables, returns), the closest analogue to the
  paper's per-instruction ATOM probes.
* :class:`ProfiledDict` / :class:`ProfiledList` /
  :func:`profile_attributes` — memory-location profiling of container
  slots and object attributes.
"""

from repro.pyprof.ast_instrument import instrument_function
from repro.pyprof.memprof import ProfiledDict, ProfiledList, profile_attributes
from repro.pyprof.tracer import FunctionProfiler, profile_calls

__all__ = [
    "FunctionProfiler",
    "ProfiledDict",
    "ProfiledList",
    "instrument_function",
    "profile_attributes",
    "profile_calls",
]
