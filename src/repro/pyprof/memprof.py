"""Memory-location value profiling at the Python level.

The thesis (Chapters on memory-location profiling) attaches a TNV
table to each profiled *memory word*, recorded on every store.  The
Python analogues of memory words are container slots and object
attributes; this module provides transparent wrappers that record
every store into a :class:`~repro.core.profile.ProfileDatabase` under
``MEMORY`` sites:

* :class:`ProfiledDict` — records stores per key.
* :class:`ProfiledList` — records stores per index.
* :class:`profile_attributes` — class decorator recording attribute
  stores per attribute name.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Optional

from repro.core.profile import ProfileDatabase, TNVConfig
from repro.core.sites import Site, SiteKind


def _normalize(value: object) -> Hashable:
    try:
        hash(value)
    except TypeError:
        return f"<{type(value).__name__}>"
    return value


def _memory_site(program: str, label: str) -> Site:
    return Site(kind=SiteKind.MEMORY, program=program, label=label)


class ProfiledDict(dict):
    """A dict recording every store's value, keyed per dict key."""

    def __init__(
        self,
        *args: Any,
        database: Optional[ProfileDatabase] = None,
        name: str = "dict",
        config: Optional[TNVConfig] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.database = database if database is not None else ProfileDatabase(config=config, name=name)
        self._name = name
        self._site_cache: dict = {}

    def _site(self, key: Hashable) -> Site:
        site = self._site_cache.get(key)
        if site is None:
            site = _memory_site(self._name, repr(key))
            self._site_cache[key] = site
        return site

    def __setitem__(self, key: Hashable, value: Any) -> None:
        self.database.record(self._site(key), _normalize(value))
        super().__setitem__(key, value)

    def update(self, *args: Any, **kwargs: Any) -> None:  # keep profiling on update()
        for key, value in dict(*args, **kwargs).items():
            self[key] = value

    def setdefault(self, key: Hashable, default: Any = None) -> Any:
        if key not in self:
            self[key] = default
        return self[key]


class ProfiledList(list):
    """A list recording every indexed store's value, keyed per index."""

    def __init__(
        self,
        iterable: Iterable = (),
        database: Optional[ProfileDatabase] = None,
        name: str = "list",
        config: Optional[TNVConfig] = None,
    ) -> None:
        super().__init__(iterable)
        self.database = database if database is not None else ProfileDatabase(config=config, name=name)
        self._name = name
        self._site_cache: dict = {}

    def _site(self, index: int) -> Site:
        site = self._site_cache.get(index)
        if site is None:
            site = _memory_site(self._name, str(index))
            self._site_cache[index] = site
        return site

    def __setitem__(self, index: Any, value: Any) -> None:
        if isinstance(index, int):
            position = index if index >= 0 else len(self) + index
            self.database.record(self._site(position), _normalize(value))
        super().__setitem__(index, value)


def profile_attributes(
    database: Optional[ProfileDatabase] = None,
    name: Optional[str] = None,
    config: Optional[TNVConfig] = None,
):
    """Class decorator: record every attribute store on instances.

    Each attribute name is one memory site (all instances share it, the
    way the thesis aggregates a structure field across objects)::

        @profile_attributes()
        class Particle:
            def __init__(self, x):
                self.x = x

        Particle.__vp_database__.summary()
    """

    def decorate(cls: type) -> type:
        db = database if database is not None else ProfileDatabase(config=config, name=name or cls.__name__)
        site_cache: dict = {}
        label = name or cls.__name__
        original_setattr = cls.__setattr__

        def __setattr__(self: Any, attr: str, value: Any) -> None:
            site = site_cache.get(attr)
            if site is None:
                site = _memory_site(label, attr)
                site_cache[attr] = site
            db.record(site, _normalize(value))
            original_setattr(self, attr, value)

        cls.__setattr__ = __setattr__
        cls.__vp_database__ = db
        return cls

    return decorate
