"""Function-level value profiling for Python code.

This is the host-language front end: where the paper instruments Alpha
binaries with ATOM, here we hook CPython's profiling callback
(``sys.setprofile``) and record *argument* and *return* values of
selected Python functions into the same
:class:`~repro.core.profile.ProfileDatabase` the ISA front end uses.
Argument sites correspond to the thesis' parameter profiling; return
sites to instruction destination values.

Only hashable values are recorded (unhashable arguments are profiled
by type name instead — type feedback in the Holzle & Ungar [23]
sense, which is itself a value profile of the hidden type word).
"""

from __future__ import annotations

import sys
from types import FrameType
from typing import Callable, Hashable, Iterable, Optional, Set

from repro.core.profile import ProfileDatabase, TNVConfig
from repro.core.sites import Site, python_site


def _normalize(value: object) -> Hashable:
    """Map a runtime value to a profilable (hashable) token."""
    try:
        hash(value)
    except TypeError:
        return f"<{type(value).__name__}>"
    return value


class FunctionProfiler:
    """Profiles arguments and returns of selected Python functions.

    Use as a context manager::

        profiler = FunctionProfiler(match=lambda name: name.startswith("mymod."))
        with profiler:
            run_application()
        print(profiler.database.summary())

    Args:
        match: predicate on ``module.qualname`` deciding whether a
            function is profiled.  Defaults to "not the profiler, not
            the stdlib internals" — pass an explicit matcher in real
            use.
        config: TNV knobs for every site.
        exact: keep exact reference histograms too.
    """

    def __init__(
        self,
        match: Optional[Callable[[str], bool]] = None,
        config: Optional[TNVConfig] = None,
        exact: bool = True,
    ) -> None:
        self.match = match or (lambda name: True)
        self.database = ProfileDatabase(config=config, exact=exact, name="pyprof")
        self.calls = 0
        self._active = False
        self._site_cache: dict = {}
        self._skipped: Set[int] = set()

    # ------------------------------------------------------------------

    def _function_name(self, frame: FrameType) -> str:
        module = frame.f_globals.get("__name__", "?")
        return f"{module}.{frame.f_code.co_qualname}" if hasattr(frame.f_code, "co_qualname") else f"{module}.{frame.f_code.co_name}"

    def _should_profile(self, frame: FrameType) -> bool:
        code_id = id(frame.f_code)
        if code_id in self._skipped:
            return False
        name = self._function_name(frame)
        if name.startswith("repro.pyprof") or not self.match(name):
            self._skipped.add(code_id)
            return False
        return True

    def _site(self, frame: FrameType, label: str) -> Site:
        key = (id(frame.f_code), label)
        site = self._site_cache.get(key)
        if site is None:
            module = frame.f_globals.get("__name__", "?")
            function = frame.f_code.co_name
            site = python_site(module, function, label)
            self._site_cache[key] = site
        return site

    def _profile_event(self, frame: FrameType, event: str, arg: object) -> None:
        if event == "call":
            if not self._should_profile(frame):
                return
            self.calls += 1
            code = frame.f_code
            names = code.co_varnames[: code.co_argcount]
            for index, name in enumerate(names):
                if name in frame.f_locals:
                    site = self._site(frame, f"arg{index}:{name}")
                    self.database.record(site, _normalize(frame.f_locals[name]))
        elif event == "return":
            if not self._should_profile(frame):
                return
            site = self._site(frame, "return")
            self.database.record(site, _normalize(arg))

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._active:
            return
        self._active = True
        sys.setprofile(self._profile_event)

    def stop(self) -> None:
        if not self._active:
            return
        sys.setprofile(None)
        self._active = False

    def __enter__(self) -> "FunctionProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def profile_calls(
    func: Callable,
    calls: Iterable[tuple],
    config: Optional[TNVConfig] = None,
) -> ProfileDatabase:
    """Profile ``func`` over a sequence of argument tuples.

    A convenience wrapper for the common "profile this one function on
    this workload" case; avoids global tracing by recording arguments
    and returns directly.
    """
    database = ProfileDatabase(config=config, name=f"pyprof:{func.__name__}")
    module = getattr(func, "__module__", "?") or "?"
    arg_names = func.__code__.co_varnames[: func.__code__.co_argcount]
    arg_sites = [python_site(module, func.__name__, f"arg{i}:{name}") for i, name in enumerate(arg_names)]
    return_site = python_site(module, func.__name__, "return")
    for call_args in calls:
        for site, value in zip(arg_sites, call_args):
            database.record(site, _normalize(value))
        result = func(*call_args)
        database.record(return_site, _normalize(result))
    return database
