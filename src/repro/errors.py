"""Exception hierarchy for the value-profiling library.

Every error raised by this package derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ProfileError(ReproError):
    """A profiling data structure was used inconsistently.

    Examples: recording into a frozen profile, merging profiles whose
    sites disagree, or requesting metrics from an empty profile when the
    caller asked for strict behaviour.
    """


class AssemblerError(ReproError):
    """The VPA assembler rejected a source program.

    Carries the source line number when available so workload authors
    can locate the offending statement.
    """

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class MachineError(ReproError):
    """The VPA interpreter hit a run-time fault.

    Raised for out-of-range memory accesses, division by zero, executing
    past the end of a program, or exceeding the configured instruction
    budget.
    """


class WorkloadError(ReproError):
    """A workload was misconfigured or produced an invalid result."""


class SpecializationError(ReproError):
    """Code specialization was attempted on an unsupported function."""


class ExperimentError(ReproError):
    """An experiment id is unknown or an experiment failed to run."""
