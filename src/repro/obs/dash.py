"""``repro dash``: a self-contained HTML dashboard from captured artifacts.

Consumes the files the observability flags write — a metrics snapshot
(``--metrics``), a span trace (``--trace``), a time-series capture
(``--timeseries``) — plus the benchmark results directory
(``BENCH_*.json`` baselines and the consolidated
``BENCH_history.jsonl`` trajectory), and renders one HTML file with
**no external dependencies**: styling is inline CSS, charts are inline
SVG sparklines and bars, and the raw payload is embedded so the file
is a complete record of the run.

Sections (each rendered only when its input exists):

* per-experiment wall clock (the ``experiment.*`` timers) as a bar list
* cache and replay hit rates (profile cache + event-trace store)
* measured sampling overhead vs. the thesis Ch. VIII expectations
* tier-2 specialization: lifecycle flow bars, journal event counts,
  reject reasons and worst blocks — from the ``machine.tier2.*``
  figures plus a ``--jitlog`` journal file when one is given
* time-series sparklines, one per counter/gauge, over the event clock
* bench trajectory: one sparkline per benchmark from the history file,
  with the latest value's delta against the committed baseline

``--live URL`` switches to :func:`render_live_dashboard`, which scrapes
a *running* serve daemon (``/healthz``, ``/stats``, ``/timeseries``,
``/metrics``) and renders the serve-plane view instead: shard health,
latency histograms with quantiles, producer sessions, the slow-op ring
and the raw Prometheus scrape.
"""

from __future__ import annotations

import glob
import html
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.stats import THESIS_OVERHEAD, stats_payload

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 64rem; color: #1a2330; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.1rem; margin-top: 2rem;
     border-bottom: 1px solid #d5dbe3; padding-bottom: .3rem; }
table { border-collapse: collapse; font-size: .85rem; }
th, td { text-align: left; padding: .25rem .75rem .25rem 0; }
th { color: #5a6675; font-weight: 600; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar { fill: #4878b8; } .spark { stroke: #4878b8; fill: none;
       stroke-width: 1.5; } .spark-area { fill: #4878b833; stroke: none; }
.up { color: #b04030; } .down { color: #2f7d4f; }
.muted { color: #8a94a1; font-size: .8rem; }
"""


def _esc(value) -> str:
    return html.escape(str(value))


def sparkline(
    points: Sequence[float], width: int = 220, height: int = 36
) -> str:
    """An inline-SVG sparkline of ``points`` (empty string when < 2)."""
    if len(points) < 2:
        return ""
    lo, hi = min(points), max(points)
    span = (hi - lo) or 1.0
    pad = 2
    step = (width - 2 * pad) / (len(points) - 1)
    coords = [
        (pad + i * step, pad + (height - 2 * pad) * (1 - (p - lo) / span))
        for i, p in enumerate(points)
    ]
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    area = (
        f"{coords[0][0]:.1f},{height - pad} {path} "
        f"{coords[-1][0]:.1f},{height - pad}"
    )
    return (
        f'<svg width="{width}" height="{height}" role="img">'
        f'<polygon class="spark-area" points="{area}"/>'
        f'<polyline class="spark" points="{path}"/></svg>'
    )


def hbar(fraction: float, width: int = 160, height: int = 12) -> str:
    """An inline-SVG horizontal bar filled to ``fraction`` (clamped)."""
    fraction = max(0.0, min(1.0, fraction))
    return (
        f'<svg width="{width}" height="{height}">'
        f'<rect width="{width}" height="{height}" fill="#e8ecf1"/>'
        f'<rect class="bar" width="{fraction * width:.1f}" height="{height}"/>'
        "</svg>"
    )


def _table(headers: Sequence[Tuple[str, bool]], rows: List[Sequence[str]]) -> str:
    """HTML table; header tuples are (label, numeric). Cells are pre-escaped."""
    head = "".join(
        f'<th class="num">{_esc(label)}</th>' if numeric else f"<th>{_esc(label)}</th>"
        for label, numeric in headers
    )
    body = []
    for row in rows:
        cells = "".join(
            f'<td class="num">{cell}</td>' if headers[i][1] else f"<td>{cell}</td>"
            for i, cell in enumerate(row)
        )
        body.append(f"<tr>{cells}</tr>")
    return f'<table><tr>{head}</tr>{"".join(body)}</table>'


# ----------------------------------------------------------------------
# sections
# ----------------------------------------------------------------------


def _section_experiments(payload: dict) -> str:
    timers = payload.get("timers", {})
    rows = [
        (name[len("experiment.") :], stats)
        for name, stats in timers.items()
        if name.startswith("experiment.")
    ]
    if not rows:
        return ""
    rows.sort(key=lambda item: -item[1].get("total_s", 0.0))
    longest = rows[0][1].get("total_s", 0.0) or 1.0
    table_rows = [
        (
            _esc(name),
            f"{stats.get('total_s', 0.0):.3f}",
            f"{stats.get('count', 0)}",
            hbar(stats.get("total_s", 0.0) / longest),
        )
        for name, stats in rows
    ]
    return "<h2>Per-experiment wall clock</h2>" + _table(
        (("experiment", False), ("total s", True), ("runs", True), ("", False)),
        table_rows,
    )


def _section_caches(payload: dict) -> str:
    cache = payload.get("cache")
    store = payload.get("tracestore")
    if not cache and not store:
        return ""
    rows = []
    if cache:
        rows.append(
            (
                "profile cache",
                f"{cache['lookups']}",
                f"{cache['memory_hits']}",
                f"{cache['disk_hits']}",
                f"{cache['misses']}",
                f"{cache['hit_rate'] * 100:.1f}%",
                hbar(cache["hit_rate"]),
            )
        )
    if store:
        rows.append(
            (
                "event-trace store",
                f"{store['lookups']}",
                f"{store['memory_hits']}",
                f"{store['disk_hits']}",
                f"{store['captures']}",
                f"{store['hit_rate'] * 100:.1f}%",
                hbar(store["hit_rate"]),
            )
        )
    section = "<h2>Cache &amp; replay hit rates</h2>" + _table(
        (
            ("layer", False),
            ("lookups", True),
            ("L1 hits", True),
            ("disk hits", True),
            ("misses", True),
            ("hit rate", True),
            ("", False),
        ),
        rows,
    )
    if store and store.get("replay_events"):
        section += (
            f'<p class="muted">{store["replays"]} replays, '
            f"{store['replay_events']:,} events replayed at "
            f"{store['replay_eps'] / 1e6:.1f} Mev/s.</p>"
        )
    return section


def _section_sampling(payload: dict) -> str:
    sampling = payload.get("sampling") or []
    if not sampling:
        return ""
    rows = [
        (
            _esc(row["policy"]),
            f"{row['seen']:,}",
            f"{row['profiled']:,}",
            f"{row['overhead'] * 100:.2f}%",
            hbar(row["overhead"]),
            _esc(row.get("thesis", THESIS_OVERHEAD.get(row["policy"], "-"))),
        )
        for row in sampling
    ]
    return "<h2>Sampling overhead vs thesis Ch. VIII</h2>" + _table(
        (
            ("policy", False),
            ("seen", True),
            ("profiled", True),
            ("measured", True),
            ("", False),
            ("thesis-reported", False),
        ),
        rows,
    )


def _section_interpreter(payload: dict) -> str:
    interp = payload.get("interpreter")
    if not interp or not interp.get("runs"):
        return ""
    return (
        "<h2>Interpreter throughput</h2>"
        + _table(
            (
                ("runs", True),
                ("threaded", True),
                ("simple", True),
                ("instructions", True),
                ("run s", True),
                ("MIPS", True),
            ),
            [
                (
                    f"{interp['runs']}",
                    f"{interp['threaded_runs']}",
                    f"{interp['simple_runs']}",
                    f"{interp['instructions']:,}",
                    f"{interp['seconds']:.3f}",
                    f"{interp['mips']:.2f}",
                )
            ],
        )
    )


def _section_tier2(payload: dict, jitlog: Optional[Tuple[dict, List[dict]]]) -> str:
    """The specialization flight deck: lifecycle flow, deopt reasons,
    worst blocks — from the ``machine.tier2.*`` figures plus (when a
    ``--jitlog`` journal is given) the per-block event stream."""
    tier2 = payload.get("tier2") or {}
    jl = payload.get("jitlog") or {}
    header, events = jitlog if jitlog else ({}, [])
    if not tier2.get("runs") and not jl.get("events") and not events:
        return ""
    parts = ["<h2>Tier-2 specialization</h2>"]

    quickened = tier2.get("quickened", 0)
    flow = [
        ("quickened", quickened),
        ("requickened", tier2.get("requickened", 0)),
        ("despecialized", tier2.get("despecialized", 0)),
        ("deopts", tier2.get("deopts", 0)),
    ]
    peak = max((count for _, count in flow), default=0)
    if peak:
        rows = [
            (_esc(stage), f"{count:,}", hbar(count / peak))
            for stage, count in flow
        ]
        rows.append(
            (
                "guard hit rate",
                f"{tier2.get('guard_hit_rate', 0.0) * 100:.2f}%",
                hbar(tier2.get("guard_hit_rate", 0.0)),
            )
        )
        parts.append(_table((("lifecycle", False), ("count", True), ("", False)), rows))

    counts = dict(jl.get("events", {}))
    if not counts and events:
        for event in events:
            counts[event["type"]] = counts.get(event["type"], 0) + 1
    if counts:
        peak = max(counts.values())
        parts.append("<h3>Journal events</h3>")
        parts.append(
            _table(
                (("event", False), ("count", True), ("", False)),
                [
                    (_esc(name), f"{count:,}", hbar(count / peak))
                    for name, count in sorted(counts.items())
                ],
            )
        )

    if events:
        reasons: Dict[str, int] = {}
        blocks: Dict[Tuple[str, int], Dict[str, int]] = {}
        for event in events:
            type_ = event["type"]
            if type_ == "reject":
                key = f"reject:{event.get('reason', '?')}"
                reasons[key] = reasons.get(key, 0) + 1
            if type_ not in ("deopt", "guard_fail", "requicken", "despecialize"):
                continue
            row = blocks.setdefault(
                (event["program"], event["block"]),
                {"deopts": 0, "guard_fails": 0, "requickens": 0, "despecialized": 0},
            )
            if type_ == "deopt":
                row["deopts"] += 1
            elif type_ == "guard_fail":
                row["guard_fails"] += 1
            elif type_ == "requicken":
                row["requickens"] += 1
            else:
                row["despecialized"] = 1
        if reasons:
            parts.append("<h3>Reject reasons</h3>")
            parts.append(
                _table(
                    (("reason", False), ("count", True)),
                    [(_esc(r), f"{c:,}") for r, c in sorted(reasons.items())],
                )
            )
        worst = sorted(
            blocks.items(), key=lambda kv: (-kv[1]["deopts"], kv[0])
        )[:10]
        if worst:
            parts.append("<h3>Worst blocks (by deopts)</h3>")
            parts.append(
                _table(
                    (
                        ("block", False),
                        ("deopts", True),
                        ("guard fails", True),
                        ("requickens", True),
                        ("despecialized", False),
                    ),
                    [
                        (
                            _esc(f"{program}:{block}"),
                            f"{row['deopts']:,}",
                            f"{row['guard_fails']:,}",
                            f"{row['requickens']:,}",
                            "yes" if row["despecialized"] else "",
                        )
                        for (program, block), row in worst
                    ],
                )
            )
        dropped = header.get("dropped", 0)
        if dropped:
            parts.append(
                f'<p class="muted">journal ring dropped {dropped:,} of '
                f'{header.get("total_events", 0):,} events.</p>'
            )
    return "".join(parts) if len(parts) > 1 else ""


def _section_timeseries(samples: List[dict]) -> str:
    if not samples:
        return ""
    series: Dict[str, List[float]] = {}
    for sample in samples:
        for section in ("counters", "gauges"):
            for name, value in sample.get(section, {}).items():
                series.setdefault(name, []).append(value)
    rows = []
    for name in sorted(series):
        points = series[name]
        spark = sparkline(points) or '<span class="muted">(one sample)</span>'
        rows.append((_esc(name), f"{points[-1]:,.0f}", spark))
    ticks = [sample.get("tick", 0) for sample in samples]
    header = (
        f'<p class="muted">{len(samples)} samples over event clock '
        f"{min(ticks):,} &rarr; {max(ticks):,}.</p>"
    )
    return (
        "<h2>Time series</h2>"
        + header
        + _table((("metric", False), ("last", True), ("", False)), rows)
    )


def _section_bench(bench_dir: str) -> str:
    baselines: Dict[str, float] = {}
    for path in sorted(glob.glob(os.path.join(bench_dir, "BENCH_*.json"))):
        if path.endswith("history.jsonl"):
            continue
        try:
            with open(path) as handle:
                payload = json.load(handle)
            baselines[payload["name"]] = payload["mean_s"]
        except (OSError, json.JSONDecodeError, KeyError):
            continue
    history: Dict[Tuple[str, str], List[dict]] = {}
    history_path = os.path.join(bench_dir, "BENCH_history.jsonl")
    try:
        with open(history_path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    history.setdefault(
                        (record["bench"], record["metric"]), []
                    ).append(record)
                except (json.JSONDecodeError, KeyError):
                    continue
    except OSError:
        pass
    if not baselines and not history:
        return ""
    rows = []
    benches = sorted(set(baselines) | {bench for bench, _ in history})
    for bench in benches:
        records = history.get((bench, "mean_s"), [])
        points = [record["value"] for record in records]
        baseline = baselines.get(bench)
        latest = points[-1] if points else baseline
        if latest is None:
            continue
        if baseline:
            delta = (latest - baseline) / baseline
            cls = "up" if delta > 0.0 else "down"
            delta_cell = f'<span class="{cls}">{delta * 100:+.1f}%</span>'
        else:
            delta_cell = '<span class="muted">no baseline</span>'
        sha = _esc(records[-1].get("git_sha", "-")) if records else "-"
        rows.append(
            (
                _esc(bench),
                f"{latest:.3f}",
                f"{baseline:.3f}" if baseline else "-",
                delta_cell,
                f"{len(points)}",
                sha,
                sparkline(points) if len(points) > 1 else "",
            )
        )
    if not rows:
        return ""
    return "<h2>Bench trajectory vs baselines</h2>" + _table(
        (
            ("bench", False),
            ("latest s", True),
            ("baseline s", True),
            ("delta", True),
            ("runs", True),
            ("last sha", False),
            ("", False),
        ),
        rows,
    )


# ----------------------------------------------------------------------
# live mode (``repro dash --live URL``)
# ----------------------------------------------------------------------


def _fmt_seconds(value: float) -> str:
    """A latency with a unit a human reads at a glance."""
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}µs"


def _hist_bars(snap: dict, width: int = 160, height: int = 24) -> str:
    """A tiny inline-SVG bucket-count bar chart of one histogram."""
    buckets = {int(i): n for i, n in snap.get("buckets", {}).items()}
    if snap.get("overflow"):
        buckets[snap.get("nbuckets", max(buckets, default=0) + 1)] = snap["overflow"]
    if not buckets:
        return ""
    lo, hi = min(buckets), max(buckets)
    nbars = hi - lo + 1
    peak = max(buckets.values())
    bar_w = max(1.0, width / nbars - 1)
    bars = []
    for i in range(lo, hi + 1):
        count = buckets.get(i, 0)
        h = (height - 2) * count / peak
        x = (i - lo) * (width / nbars)
        bars.append(
            f'<rect class="bar" x="{x:.1f}" y="{height - h:.1f}" '
            f'width="{bar_w:.1f}" height="{h:.1f}"/>'
        )
    return f'<svg width="{width}" height="{height}">{"".join(bars)}</svg>'


def _section_live_hists(hists: dict, title: str) -> str:
    from repro.obs.hist import Histogram

    rows = []
    for name, snap in sorted(hists.items()):
        hist = Histogram.from_snapshot(snap)
        if hist.count == 0:
            continue
        latency = hist.kind == "latency"
        fmt = _fmt_seconds if latency else (lambda v: f"{v:,.0f}")
        rows.append(
            (
                _esc(name),
                f"{hist.count:,}",
                fmt(hist.quantile(0.5)),
                fmt(hist.quantile(0.9)),
                fmt(hist.quantile(0.99)),
                fmt(hist.vmax),
                _hist_bars(snap),
            )
        )
    if not rows:
        return ""
    return f"<h2>{_esc(title)}</h2>" + _table(
        (
            ("histogram", False),
            ("count", True),
            ("p50", True),
            ("p90", True),
            ("p99", True),
            ("max", True),
            ("", False),
        ),
        rows,
    )


def _section_live_shards(shards: List[dict]) -> str:
    if not shards:
        return ""
    rows = []
    for shard in shards:
        rows.append(
            (
                f"{shard.get('index', '?')}",
                "yes" if shard.get("alive") else '<span class="up">DEAD</span>',
                f"{shard.get('queue_depth', 0)}",
                f"{shard.get('sites', 0):,}",
                f"{shard.get('counters', {}).get('shard.events', 0):,}",
                f"{shard.get('journal_bytes', 0):,}",
                _esc(
                    f"{shard['snapshot_age_s']:.1f}s"
                    if shard.get("snapshot_age_s") is not None
                    else "never"
                ),
                _esc(
                    f"{shard['last_fold_age_s']:.1f}s"
                    if shard.get("last_fold_age_s") is not None
                    else "never"
                ),
                f"{shard.get('last_fold_tick', 0):,}",
            )
        )
    return "<h2>Shard health</h2>" + _table(
        (
            ("shard", False),
            ("alive", False),
            ("queue", True),
            ("sites", True),
            ("events", True),
            ("journal B", True),
            ("snapshot age", True),
            ("last fold", True),
            ("fold tick", True),
        ),
        rows,
    )


def _section_live_counters(stats: dict) -> str:
    rows = [
        (_esc(name), f"{value:,}")
        for name, value in sorted(stats.get("counters", {}).items())
    ]
    rows += [
        (_esc(name), f"{value:,}")
        for name, value in sorted(stats.get("gauges", {}).items())
    ]
    if not rows:
        return ""
    return "<h2>Service counters &amp; gauges</h2>" + _table(
        (("metric", False), ("value", True)), rows
    )


def _section_live_clients(stats: dict) -> str:
    clients = stats.get("clients", {})
    if not clients:
        return ""
    rows = [
        (
            _esc(client),
            _esc(session.get("stream", "") or "-"),
            f"{session.get('expected_seq', 0):,}",
            f"{session.get('pending', 0)}",
            f"{session.get('reorder_buffered', 0)}",
            f"{session.get('sites', 0):,}",
        )
        for client, session in sorted(clients.items())
    ]
    return "<h2>Producer sessions</h2>" + _table(
        (
            ("client", False),
            ("stream", False),
            ("next seq", True),
            ("pending", True),
            ("reordered", True),
            ("sites", True),
        ),
        rows,
    )


def _section_live_slow_ops(stats: dict) -> str:
    slow_ops = stats.get("slow_ops", [])
    threshold = stats.get("slow_op_threshold")
    if not slow_ops:
        return ""
    rows = [
        (
            _esc(record.get("op", "?")),
            _fmt_seconds(record.get("seconds", 0.0)),
            _esc(record.get("detail", "")),
        )
        for record in slow_ops
    ]
    header = (
        f'<p class="muted">threshold {threshold}s; newest last, '
        f"ring of the most recent {len(slow_ops)}.</p>"
    )
    return (
        "<h2>Slow operations</h2>"
        + header
        + _table((("op", False), ("took", True), ("detail", False)), rows)
    )


def render_live_dashboard(base_url: str, timeout: float = 5.0) -> str:
    """Render the dashboard against a *running* serve daemon.

    Scrapes ``/healthz``, ``/stats``, ``/timeseries`` and ``/metrics``
    from ``base_url`` (the daemon's HTTP listener, e.g.
    ``http://127.0.0.1:7572``) and renders the same self-contained HTML
    the offline mode produces — no JavaScript polling; re-run the
    command for a fresh snapshot.  Raises :class:`OSError` when the
    daemon is unreachable; the optional endpoints degrade to omitted
    sections instead.
    """
    import urllib.request

    base = base_url.rstrip("/")
    if "://" not in base:
        base = "http://" + base

    def fetch(path: str) -> str:
        with urllib.request.urlopen(base + path, timeout=timeout) as response:
            return response.read().decode("utf-8")

    health = json.loads(fetch("/healthz"))
    stats = json.loads(fetch("/stats"))
    try:
        timeseries = json.loads(fetch("/timeseries"))
    except OSError:
        timeseries = {"samples": []}
    try:
        metrics_text = fetch("/metrics")
    except OSError:
        metrics_text = ""

    alive = health.get("alive", [])
    status = (
        '<span class="down">all shards up</span>'
        if all(alive) and alive
        else f'<span class="up">{alive.count(False)} shard(s) DOWN</span>'
    )
    header = (
        f'<p class="muted">Scraped {_esc(base)} &mdash; '
        f"runtime <b>{_esc(health.get('runtime', '?'))}</b>, "
        f"{health.get('shards', '?')} shard(s), {status}"
        + (", <b>ingest paused</b>" if stats.get("paused") else "")
        + ".</p>"
    )

    shard_hists: Dict[str, dict] = {}
    for shard in stats.get("shards", []):
        for name, snap in shard.get("hists", {}).items():
            shard_hists[f"shard{shard.get('index', '?')}.{name}"] = snap

    sections = [
        _section_live_counters(stats),
        _section_live_hists(stats.get("hists", {}), "Serve latency histograms"),
        _section_live_shards(stats.get("shards", [])),
        _section_live_hists(shard_hists, "Per-shard histograms"),
        _section_live_clients(stats),
        _section_live_slow_ops(stats),
        _section_timeseries(timeseries.get("samples", [])),
    ]
    body = "".join(section for section in sections if section)
    raw = (
        "<details><summary class='muted'>raw /metrics scrape</summary>"
        f"<pre>{_esc(metrics_text)}</pre></details>"
        if metrics_text
        else ""
    )
    embedded = json.dumps({"healthz": health, "stats": stats}, sort_keys=True)
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        "<title>value-profiling live dashboard</title>"
        f"<style>{_CSS}</style></head><body>"
        "<h1>Value Profiling &mdash; live service</h1>"
        f"{header}{body}{raw}"
        f'<script type="application/json" id="repro-live">{embedded}</script>'
        "</body></html>"
    )


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def render_dashboard(
    metrics_path: Optional[str] = None,
    trace_path: Optional[str] = None,
    timeseries_path: Optional[str] = None,
    bench_dir: Optional[str] = None,
    jitlog_path: Optional[str] = None,
) -> str:
    """Render the full dashboard HTML from whichever artifacts exist."""
    from repro.obs.jitlog import load_jitlog
    from repro.obs.metrics import load_snapshot
    from repro.obs.timeseries import load_series
    from repro.obs.trace import load_trace

    snapshot = load_snapshot(metrics_path) if metrics_path else None
    spans = load_trace(trace_path) if trace_path else None
    samples = load_series(timeseries_path) if timeseries_path else None
    jitlog = load_jitlog(jitlog_path) if jitlog_path else None
    payload = stats_payload(spans=spans, snapshot=snapshot)

    sections = [
        _section_experiments(payload),
        _section_caches(payload),
        _section_interpreter(payload),
        _section_tier2(payload, jitlog),
        _section_sampling(payload),
        _section_timeseries(samples or []),
        _section_bench(bench_dir) if bench_dir else "",
    ]
    body = "".join(section for section in sections if section)
    if not body:
        body = "<p>(no artifacts to report — pass --metrics/--trace/--timeseries)</p>"
    inputs = ", ".join(
        _esc(os.path.basename(p))
        for p in (metrics_path, trace_path, timeseries_path, jitlog_path)
        if p
    )
    embedded = json.dumps(payload, sort_keys=True, default=str)
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        "<title>value-profiling dashboard</title>"
        f"<style>{_CSS}</style></head><body>"
        "<h1>Value Profiling &mdash; run dashboard</h1>"
        f'<p class="muted">Inputs: {inputs or "(none)"}.</p>'
        f"{body}"
        f'<script type="application/json" id="repro-stats">{embedded}</script>'
        "</body></html>"
    )
