"""Package logging: one ``repro`` logger tree, silent by default.

Every module gets its logger through :func:`get_logger`, which roots
it under ``repro`` so one handler governs the whole package.  The root
``repro`` logger carries a ``NullHandler``: importing the library
never prints anything and never trips the "no handlers could be
found" warning.  The CLI's ``--log-level`` flag calls
:func:`configure_logging` to attach a stderr handler; embedders can do
the same, or attach their own handlers as with any stdlib logger.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

ROOT_LOGGER = "repro"

_LEVELS = ("debug", "info", "warning", "error")

#: the handler configure_logging attached, so reconfiguring replaces
#: rather than stacks handlers.
_handler: Optional[logging.Handler] = None

logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """The package logger for ``name`` (rooted under ``repro``)."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure_logging(level: str) -> None:
    """Attach a stderr handler to the ``repro`` tree at ``level``.

    ``level`` is one of ``debug``/``info``/``warning``/``error``
    (case-insensitive).  Calling again replaces the previous handler,
    so the CLI can be invoked repeatedly in one process (tests do).
    Logs go to stderr: experiment output on stdout stays byte-identical
    whatever the log level.
    """
    normalized = level.lower()
    if normalized not in _LEVELS:
        raise ValueError(f"unknown log level {level!r} (choose from {_LEVELS})")
    global _handler
    logger = logging.getLogger(ROOT_LOGGER)
    if _handler is not None:
        logger.removeHandler(_handler)
    _handler = logging.StreamHandler(sys.stderr)
    _handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    logger.addHandler(_handler)
    logger.setLevel(normalized.upper())


def reset_logging() -> None:
    """Detach the handler :func:`configure_logging` installed."""
    global _handler
    logger = logging.getLogger(ROOT_LOGGER)
    if _handler is not None:
        logger.removeHandler(_handler)
        _handler = None
    logger.setLevel(logging.NOTSET)
