"""Process-wide metrics registry: counters, gauges, timers, histograms.

One global :data:`METRICS` registry serves the whole package.  It is
**disabled by default**: every mutator starts with an ``enabled``
check, so an instrumentation point in disabled mode costs one method
call and one attribute test.  The truly hot per-event paths
(``TNVTable.record``, the interpreter loop) avoid even that by
recording only at batch/clear/run boundaries — see
``docs/observability.md`` for the full catalog and the overhead
guarantees.

Snapshots are plain dicts with deterministically ordered keys and no
wall-clock timestamps in the comparable sections (``counters`` and
``gauges``), so two runs that did the same work produce identical
comparable sections and diff cleanly; all timing lives under the
separate ``timers`` key.  Snapshots from worker processes merge
associatively: counters add, gauges take the max, timers combine
(count adds, total adds, max takes the max, min takes the min).

The registry is not thread-safe; the package is process-parallel, not
threaded, and each worker process owns its own registry.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from repro.obs.hist import Histogram


class _Timer:
    """Times one ``with`` block into the registry (perf_counter)."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._registry.observe(self._name, time.perf_counter() - self._start)


class _NullTimer:
    """Shared no-op stand-in handed out while the registry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """Counters, gauges and timers behind a single ``enabled`` flag.

    Counter and gauge names are dotted strings
    (``"tnv.clears"``, ``"cache.memory_hits"``); the catalog of names
    the package emits lives in ``docs/observability.md``.
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_timers", "_hists")

    def __init__(self) -> None:
        self.enabled = False
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        #: name -> [count, total_seconds, max_seconds, min_seconds]
        self._timers: Dict[str, List[float]] = {}
        self._hists: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded values (leaves the enabled flag alone)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()
        self._hists.clear()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        counters = self._counters
        counters[name] = counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest observed ``value``."""
        if not self.enabled:
            return
        self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Fold one duration into timer ``name``."""
        if not self.enabled:
            return
        timer = self._timers.get(name)
        if timer is None:
            self._timers[name] = [1, seconds, seconds, seconds]
        else:
            timer[0] += 1
            timer[1] += seconds
            if seconds > timer[2]:
                timer[2] = seconds
            if seconds < timer[3]:
                timer[3] = seconds

    def observe_hist(self, name: str, value: float, kind: str = "latency") -> None:
        """Fold one observation into histogram ``name`` (see obs.hist).

        Unlike timers — which keep only count/total/extremes — a
        histogram preserves the shape of the distribution, so p50/p99
        survive snapshot, merge and Prometheus exposition.
        """
        if not self.enabled:
            return
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = Histogram(kind=kind)
        hist.observe(value)

    def hist(self, name: str) -> Optional[Histogram]:
        return self._hists.get(name)

    def time(self, name: str):
        """Context manager timing its block into timer ``name``."""
        if not self.enabled:
            return _NULL_TIMER
        return _Timer(self, name)

    # ------------------------------------------------------------------
    # reading / combining
    # ------------------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        """All counters, key-sorted (deterministic)."""
        return dict(sorted(self._counters.items()))

    def snapshot(self) -> dict:
        """Full deterministic-order snapshot of the registry.

        ``counters`` and ``gauges`` are the *comparable* sections: pure
        functions of the work performed, with no wall-clock content.
        ``timers`` carries the timing data and is expected to vary
        between runs.
        """
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "timers": {
                name: {
                    "count": int(t[0]),
                    "total_s": t[1],
                    "max_s": t[2],
                    "min_s": t[3],
                }
                for name, t in sorted(self._timers.items())
            },
            "hists": {
                name: hist.snapshot() for name, hist in sorted(self._hists.items())
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) in.

        Merging respects the enabled flag — a disabled registry stays
        empty — so workers that shipped metrics home cannot resurrect
        an observability layer the parent turned off.
        """
        if not self.enabled:
            return
        for name, value in snapshot.get("counters", {}).items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            current = self._gauges.get(name)
            if current is None or value > current:
                self._gauges[name] = value
        for name, stats in snapshot.get("timers", {}).items():
            # Snapshots predating the min_s field merge as if each
            # observation were also the minimum — the only lossless
            # default available.
            min_s = stats.get("min_s", stats["max_s"])
            timer = self._timers.get(name)
            if timer is None:
                self._timers[name] = [
                    stats["count"],
                    stats["total_s"],
                    stats["max_s"],
                    min_s,
                ]
            else:
                timer[0] += stats["count"]
                timer[1] += stats["total_s"]
                if stats["max_s"] > timer[2]:
                    timer[2] = stats["max_s"]
                if min_s < timer[3]:
                    timer[3] = min_s
        for name, snap in snapshot.get("hists", {}).items():
            hist = self._hists.get(name)
            if hist is None:
                self._hists[name] = Histogram.from_snapshot(snap)
            else:
                hist.merge_snapshot(snap)

    def write(self, path: str) -> None:
        """Write the snapshot as sorted-key JSON (diff-friendly)."""
        with open(path, "w") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")


#: The process-wide registry every instrumentation point records into.
METRICS = MetricsRegistry()


def load_snapshot(path: str) -> Optional[dict]:
    """Read a snapshot written by :meth:`MetricsRegistry.write`."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
