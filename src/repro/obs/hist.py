"""Fixed-bucket log2 histograms: latencies and sizes as distributions.

Counters say *how many*, timers say *how long in total* — neither can
answer "what was the p99 batch latency". This module adds the third
primitive: a histogram over fixed power-of-two buckets, built for the
same cross-process discipline as the rest of the obs layer:

* **Fixed buckets** — bucket ``i`` covers ``(base * 2**(i-1),
  base * 2**i]`` (bucket 0 covers ``(0, base]``), so every process
  agrees on the bucket grid without negotiation.  Two flavors pick the
  base: ``"latency"`` starts at 1 µs (bucket 39 tops out above 150 s),
  ``"size"`` starts at 1 (bucket 39 tops out above 5e11 events).
* **Associative merge** — merging is bucket-wise addition plus
  min/max/sum/count folds, so shard generations, worker processes and
  reconnecting clients can be combined in any order with the same
  result (``merge_hist_snapshots`` is the plain-dict form the serve
  plane ships over queues).
* **Deterministic quantiles** — :meth:`Histogram.quantile` interpolates
  linearly inside the selected bucket and clamps to the observed
  min/max; same snapshot, same answer, no randomness.
* **Deterministic snapshots** — :meth:`Histogram.snapshot` is a plain
  sorted-key-stable dict (sparse buckets keyed by stringified index for
  JSON round-trips) and :meth:`Histogram.from_snapshot` rebuilds an
  identical histogram.

The registry (:mod:`repro.obs.metrics`) hosts histograms beside
counters/gauges/timers under the same ``enabled`` gate; the serve plane
additionally keeps always-on private histograms so ``/metrics`` works
without any obs flag (mirroring the server's counter dicts).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

#: number of power-of-two buckets before the overflow bucket.
DEFAULT_BUCKETS = 40

#: per flavor: (bucket-0 upper bound, accounting unit).  Latencies
#: bucket from 1 µs and account their sum in integer nanoseconds;
#: sizes (event counts, byte counts) bucket from 1 and sum as plain
#: integers.  Integer sums are what makes the merge *exactly*
#: associative — float addition reorders differ in the last ulp, and
#: "same snapshot regardless of merge order" is a tested guarantee.
KIND_SPEC = {"latency": (1e-6, 1e-9), "size": (1.0, 1.0)}


def _bucket_index(ratio: float) -> int:
    """``ceil(log2(ratio))`` for ``ratio > 1``, exact at powers of two.

    ``frexp`` decomposes ``ratio = m * 2**e`` with ``m in [0.5, 1)``;
    ``log2`` lands in ``(e-1, e]`` and hits ``e-1`` exactly when
    ``m == 0.5``.  Pure float decomposition — no ``log2`` rounding at
    bucket edges, so every process buckets identically.
    """
    mantissa, exponent = math.frexp(ratio)
    return exponent - 1 if mantissa == 0.5 else exponent


class Histogram:
    """One fixed-bucket log2 histogram (see module docstring).

    Args:
        kind: ``"latency"`` (seconds, base 1 µs) or ``"size"``
            (dimensionless, base 1).
        nbuckets: power-of-two buckets before the overflow bucket.
    """

    __slots__ = ("kind", "base", "unit", "nbuckets", "count", "total_units",
                 "vmin", "vmax", "buckets", "overflow")

    def __init__(self, kind: str = "latency", nbuckets: int = DEFAULT_BUCKETS) -> None:
        if kind not in KIND_SPEC:
            raise ValueError(f"unknown histogram kind {kind!r}")
        self.kind = kind
        self.base, self.unit = KIND_SPEC[kind]
        self.nbuckets = nbuckets
        self.count = 0
        #: running sum in integer units (ns / events) — see KIND_SPEC.
        self.total_units = 0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None
        #: sparse bucket index -> count (dense rendering derives bounds).
        self.buckets: Dict[int, int] = {}
        self.overflow = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def observe(self, value: float) -> None:
        """Fold one observation in (negative values clamp to bucket 0)."""
        value = float(value)
        self.count += 1
        self.total_units += int(round(value / self.unit))
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        ratio = value / self.base
        index = 0 if ratio <= 1.0 else _bucket_index(ratio)
        if index >= self.nbuckets:
            self.overflow += 1
        else:
            self.buckets[index] = self.buckets.get(index, 0) + 1

    def upper_bound(self, index: int) -> float:
        """Inclusive upper bound of bucket ``index``."""
        return self.base * (2.0 ** index)

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (must share kind and bucket count)."""
        self.merge_snapshot(other.snapshot())

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` dict in — the cross-process path."""
        if snap.get("kind", self.kind) != self.kind:
            raise ValueError(
                f"cannot merge {snap.get('kind')!r} histogram into {self.kind!r}"
            )
        self.count += snap["count"]
        self.total_units += snap["total_units"]
        other_min = snap.get("min")
        if other_min is not None:
            self.vmin = other_min if self.vmin is None else min(self.vmin, other_min)
        other_max = snap.get("max")
        if other_max is not None:
            self.vmax = other_max if self.vmax is None else max(self.vmax, other_max)
        for key, count in snap.get("buckets", {}).items():
            index = int(key)
            if index >= self.nbuckets:
                self.overflow += count
            else:
                self.buckets[index] = self.buckets.get(index, 0) + count
        self.overflow += snap.get("overflow", 0)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Deterministic quantile estimate in ``[min, max]``.

        Log-bucket histograms cannot give exact order statistics; this
        walks the cumulative counts to the target rank and interpolates
        linearly within the landing bucket, clamping to the observed
        extremes so p0/p100 are exact and estimates never leave the
        observed range.
        """
        if self.count == 0:
            return 0.0
        q = min(1.0, max(0.0, q))
        assert self.vmin is not None and self.vmax is not None
        rank = q * self.count
        cumulative = 0.0
        for index in sorted(self.buckets):
            bucket_count = self.buckets[index]
            if cumulative + bucket_count >= rank:
                low = 0.0 if index == 0 else self.upper_bound(index - 1)
                high = self.upper_bound(index)
                fraction = (rank - cumulative) / bucket_count
                estimate = low + fraction * (high - low)
                return min(self.vmax, max(self.vmin, estimate))
            cumulative += bucket_count
        return self.vmax  # rank lands in the overflow bucket

    @property
    def total(self) -> float:
        """Sum of observations in natural units (seconds / events)."""
        return self.total_units * self.unit

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """Plain deterministic dict; JSON-round-trips via str bucket keys."""
        return {
            "kind": self.kind,
            "count": self.count,
            "total_units": self.total_units,
            "min": self.vmin,
            "max": self.vmax,
            "buckets": {str(index): self.buckets[index]
                        for index in sorted(self.buckets)},
            "overflow": self.overflow,
        }

    @classmethod
    def from_snapshot(cls, snap: dict, nbuckets: int = DEFAULT_BUCKETS) -> "Histogram":
        hist = cls(kind=snap.get("kind", "latency"), nbuckets=nbuckets)
        hist.merge_snapshot(snap)
        return hist


def merge_hist_snapshots(into: Dict[str, dict], other: Dict[str, dict]) -> Dict[str, dict]:
    """Fold one ``{name: snapshot}`` map into another (mutates ``into``).

    The plain-dict merge the timeseries grid and the serve plane use;
    bucket-wise addition keeps it associative and commutative, so shard
    generations and worker payloads combine in any order.
    """
    for name, snap in other.items():
        existing = into.get(name)
        if existing is None:
            into[name] = Histogram.from_snapshot(snap).snapshot()
        else:
            hist = Histogram.from_snapshot(existing)
            hist.merge_snapshot(snap)
            into[name] = hist.snapshot()
    return into


def render_prometheus_hist(prom_name: str, snap: dict, labels: str = "") -> List[str]:
    """One histogram snapshot as Prometheus text exposition lines.

    Cumulative ``_bucket{le=...}`` series over the dense bucket grid
    (Prometheus histograms are cumulative by contract), a ``+Inf``
    bucket equal to the total count, and ``_sum`` / ``_count``.
    ``labels`` is a pre-rendered ``key="value"`` list spliced into
    every sample's label set.
    """
    hist = Histogram.from_snapshot(snap)
    lines = [f"# TYPE {prom_name} histogram"]
    extra = f",{labels}" if labels else ""
    cumulative = 0
    for index in range(hist.nbuckets):
        cumulative += hist.buckets.get(index, 0)
        bound = f"{hist.upper_bound(index):.9g}"
        lines.append(f'{prom_name}_bucket{{le="{bound}"{extra}}} {cumulative}')
    label_block = f"{{{labels}}}" if labels else ""
    lines.append(f'{prom_name}_bucket{{le="+Inf"{extra}}} {hist.count}')
    lines.append(f"{prom_name}_sum{label_block} {hist.total:.9g}")
    lines.append(f"{prom_name}_count{label_block} {hist.count}")
    return lines
