"""Structured run traces: hierarchical spans emitted as JSONL.

A span covers one phase of work (``run_all`` → experiment →
workload/profile phases → parallel jobs).  Spans nest through a stack
on the process-wide :data:`TRACER`; each closed span becomes one JSONL
record:

.. code-block:: json

    {"name": "experiment", "span_id": "s2", "parent_id": "s1",
     "t_start_s": 0.0123, "duration_s": 1.532,
     "attrs": {"experiment": "table-load-values", "scale": 1.0},
     "metrics": {"tnv.clears": 412, "cache.misses": 2}}

* Timings are **monotonic** (``time.monotonic`` relative to the
  tracer's enable time) — no wall-clock timestamps anywhere.
* ``metrics`` is the delta of :data:`repro.obs.metrics.METRICS`
  counters over the span — which counters moved, and by how much —
  so every span carries its own cost accounting.
* Span ids are sequential per tracer (``s1``, ``s2`` ...).  Worker
  processes run their own tracer with an id prefix (the experiment
  id), ship their spans home as plain dicts, and the parent re-parents
  the worker roots under its own open span
  (:meth:`Tracer.adopt`), so parent ids stay valid in the combined
  trace.  Worker spans carry a ``"worker"`` attr and their times are
  relative to the worker's own clock.

Disabled (the default), :meth:`Tracer.span` returns one shared no-op
context manager — no allocation, no clock read.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from repro.obs.metrics import METRICS


class _NullSpan:
    """Shared no-op stand-in handed out while the tracer is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span; append its record to the tracer on exit."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attrs", "_t0", "_counters0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = ""
        self.parent_id: Optional[str] = None
        self._t0 = 0.0
        self._counters0: Optional[Dict[str, int]] = None

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self.span_id = tracer._next_id()
        self.parent_id = tracer._stack[-1].span_id if tracer._stack else None
        tracer._stack.append(self)
        if METRICS.enabled:
            self._counters0 = dict(METRICS._counters)
        self._t0 = time.monotonic()
        return self

    def __exit__(self, *exc) -> None:
        now = time.monotonic()
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        record = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t_start_s": round(self._t0 - tracer._epoch, 6),
            "duration_s": round(now - self._t0, 6),
            "attrs": self.attrs,
        }
        if self._counters0 is not None:
            before = self._counters0
            delta = {
                name: value - before.get(name, 0)
                for name, value in METRICS._counters.items()
                if value != before.get(name, 0)
            }
            record["metrics"] = dict(sorted(delta.items()))
        tracer._spans.append(record)


class Tracer:
    """Span factory and buffer; one per process, see :data:`TRACER`."""

    __slots__ = ("enabled", "_spans", "_stack", "_serial", "_prefix", "_epoch")

    def __init__(self) -> None:
        self.enabled = False
        self._spans: List[dict] = []
        self._stack: List[_Span] = []
        self._serial = 0
        self._prefix = ""
        self._epoch = 0.0

    def enable(self, prefix: str = "") -> None:
        """Start collecting spans.

        ``prefix`` namespaces span ids (worker processes pass their
        experiment id) so traces combined across processes keep unique
        ids.
        """
        self.enabled = True
        self._prefix = prefix
        self._serial = 0
        self._epoch = time.monotonic()

    def disable(self) -> None:
        self.enabled = False
        self._stack.clear()

    def _next_id(self) -> str:
        self._serial += 1
        if self._prefix:
            return f"{self._prefix}/s{self._serial}"
        return f"s{self._serial}"

    @property
    def epoch(self) -> float:
        """The monotonic instant ``t_start_s`` values are relative to."""
        return self._epoch

    def span(self, name: str, **attrs):
        """Open a span named ``name``; use as a context manager."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def record_span(
        self,
        name: str,
        span_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        start_monotonic: Optional[float] = None,
        duration_s: float = 0.0,
        attrs: Optional[dict] = None,
    ) -> Optional[str]:
        """Append one complete span record, bypassing the stack.

        The context-manager stack models strictly nested phases of one
        thread of control; the serve plane's spans are neither — dozens
        of client batches are in flight at once and their child spans
        close on shard runtimes, reader threads and reconnect paths.
        Those callers mint their own deterministic ids (the wire trace
        context) and record finished spans directly.  ``list.append``
        is atomic under the GIL, so cross-thread emission is safe.

        Returns the span id, or ``None`` while disabled.
        """
        if not self.enabled:
            return None
        if span_id is None:
            span_id = self._next_id()
        if start_monotonic is None:
            start_monotonic = time.monotonic() - duration_s
        self._spans.append({
            "name": name,
            "span_id": span_id,
            "parent_id": parent_id,
            "t_start_s": round(start_monotonic - self._epoch, 6),
            "duration_s": round(duration_s, 6),
            "attrs": attrs or {},
        })
        return span_id

    def adopt(self, spans: List[dict]) -> None:
        """Fold worker-process spans into this tracer's buffer.

        Root spans (``parent_id is None``) are re-parented under the
        currently open span, so parent ids in the combined trace stay
        valid.  Records that carry an explicit parent pass through
        unchanged — the serve plane's shard spans arrive pre-parented
        under their batch's wire trace context.
        """
        if not self.enabled:
            return
        parent = self._stack[-1].span_id if self._stack else None
        for record in spans:
            if record.get("parent_id") is None:
                record = dict(record)
                record["parent_id"] = parent
            self._spans.append(record)

    def drain(self) -> List[dict]:
        """Return and clear every closed span collected so far."""
        spans = self._spans
        self._spans = []
        return spans

    def write_jsonl(self, path: str) -> None:
        """Drain the buffer to ``path`` as one JSON record per line."""
        spans = self.drain()
        with open(path, "w") as handle:
            for record in spans:
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")


#: The process-wide tracer every span-emitting code path uses.
TRACER = Tracer()


def load_trace(path: str) -> List[dict]:
    """Read a JSONL trace back as a list of span records."""
    spans = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans
