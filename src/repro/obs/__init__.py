"""Observability: the profiler-of-the-profiler.

The paper's central practical question is profiling *overhead* (§VIII
reports order-of-magnitude ATOM slowdowns), so the reproduction's own
cost and internal behavior are first-class outputs, not a black box.
This package provides three layers, all off by default and engineered
to cost (near) nothing while disabled:

* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, timers and histograms (:mod:`repro.obs.hist` — fixed-bucket
  log2 distributions with associative merge and deterministic
  quantiles, the serve plane's latency primitive).  Instrumentation
  points threaded through
  :mod:`repro.core` (TNV clears/evictions/merges, batch sizes, sampled
  vs. skipped executions), :mod:`repro.isa` (instructions executed,
  profiled ops, buffer flushes) and the experiment cache (hits,
  misses) record into it.  Snapshots are deterministic (sorted keys,
  no wall-clock fields in the comparable sections) and merge-able
  across the parallel runner's worker processes.
* :mod:`repro.obs.trace` — hierarchical spans (``run_all`` →
  experiment → workload/profile phases → parallel jobs) emitted as
  JSONL with monotonic timings and attached metric deltas.
* :mod:`repro.obs.logconf` — stdlib ``logging`` wired through the
  package under the ``repro`` logger with a ``NullHandler`` default,
  so library users see nothing unless they (or the CLI's
  ``--log-level`` flag) opt in.
* :mod:`repro.obs.timeseries` — periodic snapshots of the registry's
  counters/gauges on an event clock, merged associatively across
  worker processes (``--timeseries FILE``; JSONL or Prometheus text).
* :mod:`repro.obs.flight` — a fixed-size crash ring of the last N
  (tick, site, value) profile events, dumped automatically when an
  experiment raises (``--flight`` / ``--flight-dump FILE``).
* :mod:`repro.obs.jitlog` — the tier-2 specialization journal: a
  bounded ring of typed quicken/guard/deopt lifecycle events with
  reasons, on a deterministic event clock (``--jitlog FILE`` /
  ``--jitlog-map FILE``), analyzed by :mod:`repro.obs.jitreport`
  (``repro tier2-report`` — lifecycle timelines, deopt taxonomy,
  predicted-vs-observed invariance).

Surfaces: ``--trace FILE``, ``--metrics FILE``, ``--timeseries FILE``,
``--flight``, ``--jitlog`` and ``--log-level`` on the
``run``/``all``/``profile`` CLI commands, plus ``repro stats``
(:mod:`repro.obs.stats`), ``repro inspect`` (:mod:`repro.obs.inspect`
— per-site TNV health), ``repro tier2-report``
(:mod:`repro.obs.jitreport`) and ``repro dash``
(:mod:`repro.obs.dash` — self-contained HTML report).

Overhead guarantee: with observability disabled (the default) the hot
per-event recording paths (``TNVTable.record``, the interpreter loop)
contain **no** instrumentation at all — counters are recorded at batch,
flush, clear and run boundaries only — so the batched profiling fast
path keeps its measured speedup.  ``benchmarks/check_obs_overhead.py``
guards this in CI.
"""

from repro.obs.flight import FLIGHT, FlightRecorder
from repro.obs.hist import Histogram, merge_hist_snapshots
from repro.obs.jitlog import JITLOG, JitLog
from repro.obs.logconf import configure_logging, get_logger, reset_logging
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.timeseries import TIMESERIES, TimeSeriesCollector
from repro.obs.trace import TRACER, Tracer

__all__ = [
    "FLIGHT",
    "FlightRecorder",
    "Histogram",
    "merge_hist_snapshots",
    "JITLOG",
    "JitLog",
    "METRICS",
    "MetricsRegistry",
    "TIMESERIES",
    "TimeSeriesCollector",
    "TRACER",
    "Tracer",
    "configure_logging",
    "get_logger",
    "reset_logging",
]
