"""Rendering for ``repro stats``: the profiler-of-the-profiler report.

Consumes the artifacts the observability flags write — a JSONL trace
(``--trace``) and/or a metrics snapshot (``--metrics``) — and renders
summary tables:

* **Top time sinks** — spans ranked by *self* time (duration minus
  child durations), so a parent that merely waits on its children does
  not crowd out the phase doing the work.
* **Interpreter throughput** — simulated instructions per second per
  engine (the threaded engine's headline number), from the
  ``machine.*`` counters and the ``machine.run`` timer.
* **Cache behavior** — hit rate across the L1 memo and the persistent
  disk cache.
* **Event-trace store** — simulate-once/replay-many effectiveness:
  captures vs replays, store hit rate, events replayed per second.
* **Replay fold** — the columnar hot path: events/sites folded, runs
  split at clearing boundaries, and which kernel (numpy or pure
  Python) folded them.
* **Measured sampling overhead** — per-policy fraction of dynamic
  executions that actually paid profiling cost, next to the overhead
  story the thesis reports (Ch. VIII), closing the loop on the paper's
  headline cost question.
* **Counter catalog** — every counter, for completeness.
* **Timer catalog** — every timer with count/total/min/max/mean.

:func:`stats_payload` is the machine-readable twin of
:func:`render_stats` (``repro stats --json``), and what ``repro dash``
consumes.

This module is deliberately import-light on the analysis side (only
the table renderer) so ``repro stats`` works on saved files without
touching workloads or experiments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import Table, percentage

#: How the thesis frames each policy's overhead (Ch. VIII); rendered
#: next to the overhead this run actually measured.
THESIS_OVERHEAD = {
    "FullSampling": "100% (order-of-magnitude ATOM slowdown)",
    "PeriodicSampling": "the configured duty cycle (e.g. 10%)",
    "RandomSampling": "the configured sampling rate",
    "ConvergentSampling": "a few % once sites converge",
}

_TOP_SINKS = 10


def _span_label(span: dict) -> str:
    attrs = span.get("attrs", {})
    for key in ("experiment", "workload", "jobs"):
        if key in attrs:
            return f"{span['name']}({attrs[key]})"
    return span["name"]


def self_times(spans: List[dict]) -> List[Tuple[dict, float]]:
    """(span, self_seconds) pairs, longest self time first.

    Self time is the span's duration minus the durations of its direct
    children; clamped at zero for spans whose children's clocks are
    not comparable (worker spans time against their own process).
    """
    child_total: Dict[str, float] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None:
            child_total[parent] = child_total.get(parent, 0.0) + span.get("duration_s", 0.0)
    ranked = [
        (span, max(0.0, span.get("duration_s", 0.0) - child_total.get(span.get("span_id"), 0.0)))
        for span in spans
    ]
    ranked.sort(key=lambda item: (-item[1], item[0].get("span_id", "")))
    return ranked


def render_time_sinks(spans: List[dict], top: int = _TOP_SINKS) -> str:
    table = Table(
        ("span", "total s", "self s", "span id"),
        title=f"Top time sinks (self time, top {top})",
        precision=3,
    )
    for span, self_s in self_times(spans)[:top]:
        table.add_row(
            _span_label(span), span.get("duration_s", 0.0), self_s, span.get("span_id", "?")
        )
    return table.render()


def interpreter_stats(snapshot: dict) -> dict:
    """Interpreter throughput figures from a metrics snapshot."""
    counters = snapshot.get("counters", {})
    timers = snapshot.get("timers", {})
    run_timer = timers.get("machine.run", {})
    seconds = run_timer.get("total_s", 0.0)
    instructions = counters.get("machine.instructions", 0)
    return {
        "runs": counters.get("machine.runs", 0),
        "threaded_runs": counters.get("machine.engine.threaded_runs", 0),
        "simple_runs": counters.get("machine.engine.simple_runs", 0),
        "tier2_runs": counters.get("machine.engine.tier2_runs", 0),
        "instructions": instructions,
        "seconds": seconds,
        "mips": instructions / seconds / 1e6 if seconds else 0.0,
    }


def render_interpreter(snapshot: dict) -> str:
    stats = interpreter_stats(snapshot)
    table = Table(
        (
            "machine runs",
            "threaded",
            "simple",
            "tier-2",
            "instructions",
            "run s",
            "MIPS",
        ),
        title="Interpreter throughput",
        precision=3,
    )
    table.add_row(
        stats["runs"],
        stats["threaded_runs"],
        stats["simple_runs"],
        stats["tier2_runs"],
        stats["instructions"],
        stats["seconds"],
        stats["mips"],
    )
    return table.render()


def tier2_stats(snapshot: dict) -> dict:
    """Tier-2 quicken/deopt figures from a metrics snapshot.

    Sourced from the ``machine.tier2.*`` counters the tier-2 engine
    emits after each run: lifecycle totals (quickened, requickened,
    despecialized, deopts, guard hits) plus per-workload throughput
    from the ``machine.tier2.instructions.<workload>`` counters and
    ``machine.tier2.run.<workload>`` timers.
    """
    counters = snapshot.get("counters", {})
    timers = snapshot.get("timers", {})
    guard_hits = counters.get("machine.tier2.guards", 0)
    deopts = counters.get("machine.tier2.deopts", 0)
    guarded_entries = guard_hits + deopts
    workloads = []
    prefix = "machine.tier2.instructions."
    for key in sorted(counters):
        if not key.startswith(prefix):
            continue
        name = key[len(prefix):]
        instructions = counters[key]
        seconds = timers.get(f"machine.tier2.run.{name}", {}).get("total_s", 0.0)
        workloads.append(
            {
                "workload": name,
                "instructions": instructions,
                "seconds": seconds,
                "mips": instructions / seconds / 1e6 if seconds else 0.0,
            }
        )
    return {
        "runs": counters.get("machine.engine.tier2_runs", 0),
        "quickened": counters.get("machine.tier2.quickened", 0),
        "requickened": counters.get("machine.tier2.requickened", 0),
        "despecialized": counters.get("machine.tier2.despecialized", 0),
        "deopts": deopts,
        "guard_hits": guard_hits,
        "guard_hit_rate": guard_hits / guarded_entries if guarded_entries else 0.0,
        "workloads": workloads,
    }


def render_tier2(snapshot: dict) -> str:
    stats = tier2_stats(snapshot)
    table = Table(
        (
            "tier-2 runs",
            "quickened",
            "requickened",
            "despecialized",
            "deopts",
            "guard hit%",
        ),
        title="Tier-2 engine",
    )
    table.add_row(
        stats["runs"],
        stats["quickened"],
        stats["requickened"],
        stats["despecialized"],
        stats["deopts"],
        percentage(stats["guard_hit_rate"]),
    )
    sections = [table.render()]
    if stats["workloads"]:
        per_workload = Table(
            ("workload", "tier-2 instructions", "run s", "MIPS"),
            title="Tier-2 throughput by workload",
            precision=3,
        )
        for row in stats["workloads"]:
            per_workload.add_row(
                row["workload"], row["instructions"], row["seconds"], row["mips"]
            )
        sections.append(per_workload.render())
    return "\n\n".join(sections)


def jitlog_stats(snapshot: dict) -> dict:
    """Tier-2 specialization-journal event totals from a snapshot.

    Sourced from the ``machine.tier2.jitlog.<type>`` counters the
    journal bumps on every emit — present only when a run recorded
    with ``--jitlog`` (or the journal was enabled programmatically)
    while metrics were on.  The full event stream with reasons lives
    in the JSONL export; these are the rates that belong in a summary.
    """
    counters = snapshot.get("counters", {})
    prefix = "machine.tier2.jitlog."
    events = {
        key[len(prefix):]: counters[key]
        for key in sorted(counters)
        if key.startswith(prefix)
    }
    return {"events": events, "total": sum(events.values())}


def render_jitlog(snapshot: dict) -> str:
    stats = jitlog_stats(snapshot)
    if not stats["events"]:
        return ""
    table = Table(("journal event", "count"), title="Tier-2 specialization journal")
    for name, count in stats["events"].items():
        table.add_row(name, count)
    table.add_separator()
    table.add_row("TOTAL", stats["total"])
    return table.render()


def cache_stats(counters: Dict[str, int]) -> dict:
    memory_hits = counters.get("cache.memory_hits", 0)
    disk_hits = counters.get("cache.disk_hits", 0)
    misses = counters.get("cache.misses", 0)
    lookups = memory_hits + disk_hits + misses
    return {
        "memory_hits": memory_hits,
        "disk_hits": disk_hits,
        "misses": misses,
        "lookups": lookups,
        "hit_rate": (memory_hits + disk_hits) / lookups if lookups else 0.0,
    }


def render_cache(counters: Dict[str, int]) -> str:
    stats = cache_stats(counters)
    table = Table(
        ("cache lookups", "L1 hits", "disk hits", "misses", "hit rate%"),
        title="Profile cache behavior",
    )
    table.add_row(
        stats["lookups"],
        stats["memory_hits"],
        stats["disk_hits"],
        stats["misses"],
        percentage(stats["hit_rate"]),
    )
    return table.render()


def tracestore_stats(snapshot: dict) -> dict:
    """Simulate-once/replay-many effectiveness from a metrics snapshot."""
    counters = snapshot.get("counters", {})
    timers = snapshot.get("timers", {})
    memory_hits = counters.get("tracestore.memory_hits", 0)
    disk_hits = counters.get("tracestore.disk_hits", 0)
    captures = counters.get("tracestore.captures", 0)
    lookups = memory_hits + disk_hits + captures
    replay_seconds = timers.get("tracestore.replay", {}).get("total_s", 0.0)
    replay_events = counters.get("tracestore.replay_events", 0)
    return {
        "memory_hits": memory_hits,
        "disk_hits": disk_hits,
        "captures": captures,
        "lookups": lookups,
        "hit_rate": (memory_hits + disk_hits) / lookups if lookups else 0.0,
        "replays": counters.get("tracestore.replays", 0),
        "replay_events": replay_events,
        "replay_eps": replay_events / replay_seconds if replay_seconds else 0.0,
    }


def render_tracestore(snapshot: dict) -> str:
    stats = tracestore_stats(snapshot)
    table = Table(
        (
            "trace lookups",
            "L1 hits",
            "disk hits",
            "captures",
            "hit rate%",
            "replays",
            "events replayed",
            "replay Mev/s",
        ),
        title="Event-trace store (simulate once, replay many)",
        precision=2,
    )
    table.add_row(
        stats["lookups"],
        stats["memory_hits"],
        stats["disk_hits"],
        stats["captures"],
        percentage(stats["hit_rate"]),
        stats["replays"],
        stats["replay_events"],
        stats["replay_eps"] / 1e6,
    )
    return table.render()


#: ``tracestore.fold_mode`` gauge values → human-readable path names
#: (kept in sync with :data:`repro.core.fold.FOLD_MODE_GAUGE`).
_FOLD_MODE_NAMES = {0.0: "event", 1.0: "python", 2.0: "numpy"}


def fold_stats(snapshot: dict) -> dict:
    """Columnar replay-fold effectiveness from a metrics snapshot."""
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    mode_gauge = gauges.get("tracestore.fold_mode")
    return {
        "events_folded": counters.get("tracestore.fold_events", 0),
        "sites_folded": counters.get("tracestore.fold_sites", 0),
        "runs_split": counters.get("tracestore.fold_chunks", 0),
        "mode": _FOLD_MODE_NAMES.get(mode_gauge, "-"),
        "numpy_active": mode_gauge == 2.0,
    }


def render_fold(snapshot: dict) -> str:
    stats = fold_stats(snapshot)
    table = Table(
        ("events folded", "sites", "runs split", "kernel", "numpy active"),
        title="Replay fold (columnar hot path)",
    )
    table.add_row(
        stats["events_folded"],
        stats["sites_folded"],
        stats["runs_split"],
        stats["mode"],
        "yes" if stats["numpy_active"] else "no",
    )
    return table.render()


def sampling_overheads(counters: Dict[str, int]) -> List[Tuple[str, int, int, float]]:
    """(policy, seen, profiled, overhead_fraction) rows, policy-sorted."""
    rows = []
    for name, seen in sorted(counters.items()):
        if not (name.startswith("sampling.") and name.endswith(".seen")):
            continue
        policy = name[len("sampling.") : -len(".seen")]
        profiled = counters.get(f"sampling.{policy}.profiled", 0)
        rows.append((policy, seen, profiled, profiled / seen if seen else 0.0))
    return rows


def render_sampling(counters: Dict[str, int]) -> str:
    table = Table(
        ("policy", "executions seen", "profiled", "measured overhead%", "thesis-reported"),
        title="Measured sampling overhead vs thesis Ch. VIII",
    )
    rows = sampling_overheads(counters)
    for policy, seen, profiled, overhead in rows:
        table.add_row(
            policy,
            seen,
            profiled,
            percentage(overhead),
            THESIS_OVERHEAD.get(policy, "-"),
        )
    if not rows:
        table.add_row("(no sampling counters recorded)", 0, 0, 0.0, "-")
    return table.render()


def render_counters(counters: Dict[str, int]) -> str:
    table = Table(("counter", "value"), title="All counters")
    for name, value in sorted(counters.items()):
        table.add_row(name, value)
    if not counters:
        table.add_row("(empty)", 0)
    return table.render()


def render_timers(timers: Dict[str, dict]) -> str:
    table = Table(
        ("timer", "count", "total s", "min s", "max s", "mean s"),
        title="All timers",
        precision=4,
    )
    for name, stats in sorted(timers.items()):
        count = stats.get("count", 0)
        total = stats.get("total_s", 0.0)
        table.add_row(
            name,
            count,
            total,
            # Snapshots written before the min_s field render "-".
            stats["min_s"] if "min_s" in stats else "-",
            stats.get("max_s", 0.0),
            total / count if count else 0.0,
        )
    if not timers:
        table.add_row("(empty)", 0, 0.0, 0.0, 0.0, 0.0)
    return table.render()


def render_stats(
    spans: Optional[List[dict]] = None, snapshot: Optional[dict] = None
) -> str:
    """The full ``repro stats`` report from whichever inputs exist."""
    sections = []
    if spans:
        sections.append(render_time_sinks(spans))
    counters = (snapshot or {}).get("counters", {})
    if snapshot is not None:
        sections.append(render_interpreter(snapshot))
        sections.append(render_tier2(snapshot))
        jitlog_section = render_jitlog(snapshot)
        if jitlog_section:
            # Only when a journal recorded — captures without one keep
            # their exact pre-jitlog rendering.
            sections.append(jitlog_section)
        sections.append(render_cache(counters))
        sections.append(render_tracestore(snapshot))
        sections.append(render_fold(snapshot))
        sections.append(render_sampling(counters))
        sections.append(render_counters(counters))
        sections.append(render_timers(snapshot.get("timers", {})))
    if not sections:
        return "(nothing to report: no spans and no metrics)"
    return "\n\n".join(sections)


def stats_payload(
    spans: Optional[List[dict]] = None, snapshot: Optional[dict] = None
) -> dict:
    """The machine-readable form of :func:`render_stats`.

    This is the structure ``repro stats --json`` writes and
    ``repro dash`` consumes — the same derived figures the text tables
    show (self-time sinks, cache hit rates, MIPS, sampling overhead),
    plus the raw counter/gauge/timer sections verbatim.
    """
    payload: dict = {}
    if spans:
        payload["time_sinks"] = [
            {
                "span": _span_label(span),
                "total_s": span.get("duration_s", 0.0),
                "self_s": self_s,
                "span_id": span.get("span_id"),
            }
            for span, self_s in self_times(spans)[:_TOP_SINKS]
        ]
    if snapshot is not None:
        counters = snapshot.get("counters", {})
        payload["interpreter"] = interpreter_stats(snapshot)
        payload["tier2"] = tier2_stats(snapshot)
        jitlog = jitlog_stats(snapshot)
        if jitlog["events"]:
            payload["jitlog"] = jitlog
        payload["cache"] = cache_stats(counters)
        payload["tracestore"] = tracestore_stats(snapshot)
        payload["fold"] = fold_stats(snapshot)
        payload["sampling"] = [
            {
                "policy": policy,
                "seen": seen,
                "profiled": profiled,
                "overhead": overhead,
                "thesis": THESIS_OVERHEAD.get(policy, "-"),
            }
            for policy, seen, profiled, overhead in sampling_overheads(counters)
        ]
        payload["counters"] = dict(sorted(counters.items()))
        payload["gauges"] = dict(sorted(snapshot.get("gauges", {}).items()))
        payload["timers"] = {
            name: dict(stats) for name, stats in sorted(snapshot.get("timers", {}).items())
        }
    return payload
