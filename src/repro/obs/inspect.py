"""``repro inspect``: per-site TNV health introspection.

The experiment tables answer the paper's questions with end-of-run
aggregates; this module answers the operational one — *is this site's
bounded TNV table actually capturing the site's behavior?* — from the
clear-boundary health counters :class:`~repro.core.tnv.TNVTable` keeps
(occupancy, eviction churn, clear→steady promotions, value turnover,
saturation).

Two views:

* **Overview** — the hottest sites with their health counters and any
  warning flags (see :func:`health_flags`).
* **Site detail** (``--site N``, indexing the overview rows) — the
  table's resident entries split into steady and clear parts, the full
  health record, and the site's Inv-Top / LVP trajectory across
  clearing intervals — the same convergence-over-intervals lens the
  thesis applies in its convergence chapter — computed by replaying
  the site's value stream in ``clear_interval``-sized windows.

Everything renders from the shared simulate-once caches
(:func:`repro.analysis.experiments.profiled` / ``traced``), so
inspecting a workload that an experiment already simulated costs no
interpreter time.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import Table, percentage
from repro.core.metrics import TOP_N
from repro.core.sites import Site, SiteKind

#: churn above this fraction of the clear part per clearing pass is
#: flagged: most of the evictable table is cycling every interval, so
#: the table is chasing values rather than accumulating them.
HIGH_CHURN = 0.5

#: fraction of clearing passes that found the table full before a site
#: is flagged saturated (capacity likely too small for its value set).
SATURATED = 0.5

#: windows rendered in the trajectory table before eliding the middle.
MAX_WINDOWS = 24


def health_flags(health: dict) -> List[str]:
    """Warning flags for one table's :meth:`~repro.core.tnv.TNVTable.health`.

    * ``high-churn`` — more than :data:`HIGH_CHURN` of the clear part
      is evicted per clearing pass on average.
    * ``saturated`` — at least :data:`SATURATED` of clearing passes
      found every slot occupied.
    * ``never-promoted`` — the table has cleared repeatedly and admitted
      new values, yet no value ever displaced the initial steady set;
      the steady part froze on whatever arrived first.
    """
    flags = []
    clears = health["clears"]
    clear_slots = max(1, health["capacity"] - health["steady"])
    if clears >= 2 and health["churn"] / clear_slots > HIGH_CHURN:
        flags.append("high-churn")
    if clears >= 1 and health["saturated_clears"] / clears >= SATURATED:
        flags.append("saturated")
    if clears >= 2 and health["promotions"] == 0 and health["turnover"] > 0:
        flags.append("never-promoted")
    return flags


def _hot_profiles(database, kind: Optional[SiteKind] = None) -> List:
    """Profiles hottest-first — the overview's (and ``--site``'s) order."""
    profiles = database.profiles(kind)
    profiles.sort(key=lambda p: (-p.executions, p.site))
    return profiles


def render_overview(database, kind: Optional[SiteKind] = None, top: int = 10) -> str:
    """The hottest sites with TNV health counters and warning flags."""
    profiles = _hot_profiles(database, kind)
    label = kind.value if kind else "all"
    table = Table(
        (
            "#",
            "site",
            "execs",
            "occupancy",
            "clears",
            "churn/clear",
            "promos",
            "turnover",
            "saturated%",
            "flags",
        ),
        title=f"{database.name}: TNV health, hottest {label} sites (top {top})",
    )
    flagged = 0
    for index, profile in enumerate(profiles[:top]):
        health = profile.tnv.health()
        flags = health_flags(health)
        flagged += bool(flags)
        clears = health["clears"]
        table.add_row(
            index,
            profile.site.qualified_name(),
            profile.executions,
            f"{health['resident']}/{health['capacity']}",
            clears,
            health["churn"],
            health["promotions"],
            health["turnover"],
            percentage(health["saturated_clears"] / clears if clears else 0.0),
            ",".join(flags) if flags else "-",
        )
    if not profiles:
        table.add_row(0, "(no sites profiled)", 0, "-", 0, 0.0, 0, 0, 0.0, "-")
    footer = (
        f"{flagged} of {min(top, len(profiles))} shown sites flagged; "
        "drill down with --site N"
    )
    return table.render() + "\n" + footer


def render_tnv_contents(profile) -> str:
    """The table's resident entries, steady part first."""
    tnv = profile.tnv
    steady = tnv.steady
    table = Table(
        ("rank", "part", "value", "count", "share%"),
        title=f"{profile.site.qualified_name()}: TNV contents "
        f"({len(tnv)}/{tnv.capacity} resident, {tnv.clears} clears)",
    )
    total = profile.executions
    for rank, entry in enumerate(tnv.snapshot()):
        table.add_row(
            rank,
            "steady" if rank < steady else "clear",
            repr(entry.value),
            entry.count,
            percentage(entry.count / total if total else 0.0),
        )
    if not len(tnv):
        table.add_row(0, "-", "(empty)", 0, 0.0)
    return table.render()


def render_health(profile) -> str:
    """The full health record for one site's table."""
    health = profile.tnv.health()
    table = Table(("health counter", "value"), precision=2)
    for name, value in health.items():
        table.add_row(name, value)
    flags = health_flags(health)
    table.add_row("flags", ",".join(flags) if flags else "-")
    return table.render()


def window_trajectory(values: List, window: int) -> List[dict]:
    """Per-window Inv-Top/LVP rows over one site's value stream.

    Each window is ``window`` consecutive executions — the clearing
    interval, so row N describes what the table saw between clears N
    and N+1.
    """
    rows = []
    for start in range(0, len(values), window):
        chunk = values[start : start + window]
        counts = Counter(chunk).most_common()
        n = len(chunk)
        pairs = sum(1 for prev, cur in zip(chunk, chunk[1:]) if prev == cur)
        rows.append(
            {
                "window": len(rows),
                "events": n,
                "distinct": len(counts),
                "top_value": counts[0][0],
                "inv_top1": counts[0][1] / n,
                "inv_top_n": sum(count for _, count in counts[:TOP_N]) / n,
                "lvp": pairs / (n - 1) if n > 1 else 0.0,
            }
        )
    return rows


def render_trajectory(site: Site, values: Optional[List], window: int) -> str:
    """Inv-Top/LVP per clearing interval (elides the middle when long)."""
    title = f"{site.qualified_name()}: trajectory per {window}-event clearing interval"
    table = Table(
        ("window", "events", "distinct", "top value", "inv-top1%", f"inv-top{TOP_N}%", "lvp%"),
        title=title,
    )
    if not values:
        table.add_row(0, 0, 0, "(no value trace for this site kind)", 0.0, 0.0, 0.0)
        return table.render()
    rows = window_trajectory(values, window)
    shown = rows
    elided = 0
    if len(rows) > MAX_WINDOWS:
        head = MAX_WINDOWS // 2
        shown = rows[:head] + rows[-(MAX_WINDOWS - head) :]
        elided = len(rows) - MAX_WINDOWS
    previous = None
    for row in shown:
        if previous is not None and row["window"] != previous + 1:
            table.add_separator()
        previous = row["window"]
        table.add_row(
            row["window"],
            row["events"],
            row["distinct"],
            repr(row["top_value"]),
            percentage(row["inv_top1"]),
            percentage(row["inv_top_n"]),
            percentage(row["lvp"]),
        )
    rendered = table.render()
    if elided:
        rendered += f"\n({elided} middle window(s) elided)"
    return rendered


def inspect_workload(
    name: str,
    variant: str = "train",
    scale: float = 1.0,
    kind: Optional[SiteKind] = None,
    site: Optional[int] = None,
    top: int = 10,
) -> str:
    """The full ``repro inspect`` report (overview or one site's detail).

    ``site`` indexes the overview's hottest-first rows.  Replays from
    the simulate-once event store, so repeated inspections are cheap.
    """
    from repro.analysis import experiments

    run = experiments.profiled(name, variant, scale)
    database = run.database
    if site is None:
        return render_overview(database, kind=kind, top=top)
    profiles = _hot_profiles(database, kind)
    if not 0 <= site < len(profiles):
        raise IndexError(
            f"--site {site} out of range: {name} has {len(profiles)} "
            f"{'sites' if kind is None else kind.value + ' sites'}"
        )
    profile = profiles[site]
    window = database.config.clear_interval or 2000
    traces = experiments.traced(name, variant, scale, targets=_trace_targets())
    sections = [
        render_tnv_contents(profile),
        render_health(profile),
        render_trajectory(profile.site, traces.get(profile.site), window),
    ]
    return "\n\n".join(sections)


def _trace_targets():
    from repro.isa.instrument import ProfileTarget

    # Match profiled()'s default families, so the trajectory's stream is
    # exactly what the inspected table consumed.
    return (ProfileTarget.INSTRUCTIONS, ProfileTarget.LOADS)
