"""Flight recorder: a bounded ring of the most recent profile events.

A 54-second ``repro all`` that dies in its last experiment is only
diagnosable by re-running under ad-hoc prints — unless the run carries
a crash recorder.  :data:`FLIGHT` is that recorder: a fixed-size ring
buffer of the last N ``(tick, site, value)`` events, fed from the same
observer hooks both interpreter engines already dispatch to and from
the trace-store replay path, and dumped to JSONL automatically when an
experiment raises (:func:`repro.analysis.experiments.run`) or on
demand (``--flight-dump``).

Disabled (the default) it records nothing and costs one attribute test
at the points that consult it.  Enabled,
:class:`~repro.isa.instrument.ValueProfiler` tees its emit sink into
the ring at construction time, so it sees exactly the event stream the
profiler saw — under the simple engine via ``on_*`` callbacks, under
the threaded engine via the decode-time ``bind_*`` hooks; buffered
profilers tee whole batches at flush time, which is the order their
recorder consumed them.  Replay consumers
(:mod:`repro.core.tracestore`) feed the ring directly, in replay
order.

The ring is per process.  Parallel workers each run their own; a crash
inside a worker dumps from that worker, named after the experiment
that raised, so ``--jobs N`` failures stay attributable.

The tier-2 engine (:mod:`repro.isa.tier2`) also tees its ``deopt`` and
``despecialize`` lifecycle decisions into the ring as synthetic
INSTRUCTION sites (opcode ``tier2.deopt`` / ``tier2.despecialize``,
label = block leader pc, value = the block's failure/requicken count),
so a crash dump shows the last specialization retreats next to the
last profile events — inline and under ``--jobs`` alike, since each
worker's engine feeds that worker's own ring.
"""

from __future__ import annotations

import json
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.core.sites import Site

#: default ring capacity — large enough to cover several clearing
#: intervals of the paper's 2000-record TNV configuration, small
#: enough to dump in milliseconds.
DEFAULT_CAPACITY = 65_536


class FlightRecorder:
    """Fixed-size ring of the last N (tick, site, value) events."""

    __slots__ = ("enabled", "capacity", "_ring", "_next", "_tick", "_last_dump")

    def __init__(self) -> None:
        self.enabled = False
        self.capacity = DEFAULT_CAPACITY
        self._ring: List[Optional[Tuple[int, Site, Hashable]]] = []
        self._next = 0
        self._tick = 0
        #: path of the most recent dump (None until one happens);
        #: surfaced by the CLI so crash dumps are discoverable.
        self._last_dump: Optional[str] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def enable(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"flight capacity must be >= 1, got {capacity}")
        self.enabled = True
        self.capacity = capacity
        self._ring = [None] * capacity
        self._next = 0
        self._tick = 0
        self._last_dump = None

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._ring = [None] * self.capacity if self.enabled else []
        self._next = 0
        self._tick = 0
        self._last_dump = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record(self, site: Site, value: Hashable) -> None:
        """Append one event (the harness observer's recorder sink)."""
        tick = self._tick
        self._tick = tick + 1
        ring = self._ring
        index = self._next
        ring[index] = (tick, site, value)
        self._next = (index + 1) % len(ring)

    def record_batch(self, site: Site, values: Sequence[Hashable]) -> None:
        """Append a run of events for one site (replay-path sink)."""
        for value in values:
            self.record(site, value)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    @property
    def total_events(self) -> int:
        """Events ever recorded (ticks are 0-based event indices)."""
        return self._tick

    @property
    def last_dump(self) -> Optional[str]:
        return self._last_dump

    def events(self) -> List[Tuple[int, Site, Hashable]]:
        """Retained events, oldest first."""
        ring = self._ring
        index = self._next
        ordered = ring[index:] + ring[:index]
        return [event for event in ordered if event is not None]

    def __len__(self) -> int:
        return sum(1 for event in self._ring if event is not None)

    # ------------------------------------------------------------------
    # dumping
    # ------------------------------------------------------------------

    def dump(self, path: str, reason: str = "on-demand") -> str:
        """Write the ring to ``path`` as JSONL; returns the path.

        The first line is a header record carrying provenance (total
        events seen, how many the ring dropped, why the dump happened);
        every following line is one ``{"tick", "site", "value"}`` event,
        oldest first.
        """
        events = self.events()
        with open(path, "w") as handle:
            header = {
                "flight": True,
                "reason": reason,
                "capacity": self.capacity,
                "total_events": self._tick,
                "retained": len(events),
                "dropped": self._tick - len(events),
            }
            handle.write(json.dumps(header, sort_keys=True))
            handle.write("\n")
            for tick, site, value in events:
                handle.write(
                    json.dumps(
                        {
                            "tick": tick,
                            "site": site.qualified_name(),
                            "kind": site.kind.value,
                            "value": value,
                        },
                        sort_keys=True,
                        default=repr,
                    )
                )
                handle.write("\n")
        self._last_dump = path
        return path

    def dump_on_crash(self, label: str) -> Optional[str]:
        """Best-effort crash dump to ``flight-crash-<label>.jsonl``.

        Called from the experiment runner's exception path; never
        raises (a failing dump must not mask the original error).
        """
        if not self.enabled:
            return None
        safe = "".join(c if c.isalnum() or c in "-_." else "-" for c in label)
        try:
            return self.dump(f"flight-crash-{safe}.jsonl", reason=f"crash:{label}")
        except OSError:  # pragma: no cover - disk-full/readonly paths
            return None


def load_flight(path: str) -> Tuple[dict, List[dict]]:
    """Read a dump back as ``(header, events)``."""
    with open(path) as handle:
        lines = [line for line in (l.strip() for l in handle) if line]
    if not lines:
        return {}, []
    header = json.loads(lines[0])
    return header, [json.loads(line) for line in lines[1:]]


#: The process-wide recorder; the workload harness attaches an observer
#: for it while enabled, and the replay paths feed it directly.
FLIGHT = FlightRecorder()
