"""Tier-2 specialization report: the jitlog journal joined with profiles.

``repro tier2-report <workload>`` runs one workload on the tier-2
engine with the value profiler attached and the jitlog journal
recording, then renders what the engine *did* — per-block lifecycle
timelines, a deopt-reason taxonomy, the guard-failing registers and the
variant values that killed them — and, the part that closes the loop on
the paper's hypothesis, a **predicted-vs-observed** table: for every
operand the engine ever guarded, the profiled invariance of the
instructions that define that register (Inv-Top1, execution-weighted
across defining sites) next to the observed guard survival rate.  A
register the profile called stable but whose guards thrashed is flagged
``thrash`` — the measurable gap between the paper's prediction and the
engine's reality, per operand.

Everything here is a pure function of one deterministic run, so report
output is byte-stable for a given workload/variant/scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import Table
from repro.core.profile import ProfileDatabase
from repro.core.sites import SiteKind
from repro.obs.jitlog import JITLOG

#: profiled Inv-Top1 at or above this predicts a stable (guardable)
#: operand — the same threshold ``tier2_preheat`` uses to pick blocks.
PREDICT_STABLE = 0.5

#: observed guard survival at or above this counts as "guards held".
SURVIVAL_OK = 0.9

#: verdicts for one guarded operand, in severity order for the report.
VERDICTS = ("thrash", "expected-variant", "unpredicted-stable", "ok", "unprofiled")


@dataclass
class JitReport:
    """One tier-2 run's journal, profiles and block state, joined."""

    workload: str
    dataset: str
    events: List[dict]
    summaries: List[dict]
    stats: Dict[str, int]
    database: ProfileDatabase
    result: object = None

    @property
    def event_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event["type"]] = counts.get(event["type"], 0) + 1
        return dict(sorted(counts.items()))


def collect(
    name: str,
    variant: str = "train",
    scale: float = 1.0,
    verify: bool = True,
) -> JitReport:
    """Run one workload on the tier-2 engine, journal recording.

    A single execution yields everything the report needs: the jitlog
    event stream (what the engine decided and why), the per-block end
    states, and the TNV value profiles (engine-independent, pinned by
    the differential suite) that the predicted-vs-observed join reads.

    If the journal is already enabled (``--jitlog``), its ring is
    shared — events from this run are taken from a sequence watermark
    so the caller's export still sees them.  Otherwise the journal is
    enabled just for the run and disabled after (the ring stays
    readable, nothing leaks into later runs).
    """
    from repro.isa.instrument import ValueProfiler
    from repro.isa.machine import Machine
    from repro.workloads import DEFAULT_TARGETS, get_workload
    from repro.workloads.harness import _verify

    workload = get_workload(name)
    dataset = workload.dataset(variant, scale=scale)
    program = workload.program()

    borrowed = JITLOG.enabled
    if borrowed:
        watermark = JITLOG.total_events
    else:
        JITLOG.enable()
        watermark = 0

    database = ProfileDatabase(name=dataset.name)
    observer = ValueProfiler(program, database, targets=DEFAULT_TARGETS, buffered=True)
    machine = Machine(program, observer=observer, engine="tier2")
    machine.set_input(dataset.values)
    try:
        result = machine.run()
        events = [e for e in JITLOG.events() if e["seq"] >= watermark]
        summaries = machine.tier2_block_summaries() or []
        stats = machine.tier2_stats() or {}
    finally:
        if not borrowed:
            JITLOG.disable()
    if verify:
        _verify(workload, dataset, result)
    return JitReport(
        workload=name,
        dataset=dataset.name,
        events=events,
        summaries=summaries,
        stats=stats,
        database=database,
        result=result,
    )


# ----------------------------------------------------------------------
# journal analysis (pure functions of the event list)
# ----------------------------------------------------------------------

#: events that mark a lifecycle *transition* (timeline entries);
#: guard_fail/cache events are attributes of transitions, not states.
_TIMELINE_TYPES = ("preheat", "hot", "quicken", "reject", "deopt",
                   "requicken", "despecialize")


def lifecycle_timelines(events: List[dict]) -> Dict[int, List[dict]]:
    """Per-block transition history, keyed by leader pc, journal order."""
    timelines: Dict[int, List[dict]] = {}
    for event in events:
        if event["type"] in _TIMELINE_TYPES:
            timelines.setdefault(event["block"], []).append(event)
    return timelines


def _timeline_label(event: dict) -> str:
    type_ = event["type"]
    if type_ == "quicken":
        return event.get("mode", "fused")
    if type_ == "reject":
        return f"reject:{event.get('reason', '?')}"
    return type_


def deopt_taxonomy(events: List[dict]) -> Dict[str, int]:
    """Why specialization retreated, bucketed.

    ``reject:<reason>`` buckets count declined quickens by which limit
    said no; ``deopt:absorbed`` deopts the failure budget absorbed,
    ``deopt:requickened`` / ``deopt:despecialized`` deopts that pushed
    the block over the limit (classified by the lifecycle event the
    engine emitted at the same clock).
    """
    taxonomy: Dict[str, int] = {}
    deopt_runs: Dict[int, int] = {}
    for event in events:
        type_ = event["type"]
        block = event["block"]
        if type_ == "reject":
            key = f"reject:{event.get('reason', '?')}"
            taxonomy[key] = taxonomy.get(key, 0) + 1
        elif type_ == "deopt":
            deopt_runs[block] = deopt_runs.get(block, 0) + 1
        elif type_ in ("requicken", "despecialize"):
            run = deopt_runs.pop(block, 0)
            if run:
                key = f"deopt:{'requickened' if type_ == 'requicken' else 'despecialized'}"
                taxonomy[key] = taxonomy.get(key, 0) + run
    absorbed = sum(deopt_runs.values())
    if absorbed:
        taxonomy["deopt:absorbed"] = taxonomy.get("deopt:absorbed", 0) + absorbed
    return dict(sorted(taxonomy.items()))


def guard_failures(events: List[dict]) -> List[dict]:
    """Top guard-failing registers with the variant values observed.

    One row per register, sorted by failure count (then register) —
    the "which operand killed my specialization" view.
    """
    by_reg: Dict[int, dict] = {}
    for event in events:
        if event["type"] != "guard_fail":
            continue
        reg = event["reg"]
        row = by_reg.setdefault(reg, {
            "reg": reg, "fails": 0, "blocks": set(), "expected": set(),
            "observed": set(),
        })
        row["fails"] += 1
        row["blocks"].add(event["block"])
        row["expected"].add(event["expected"])
        row["observed"].add(event["observed"])
    out = []
    for reg in sorted(by_reg):
        row = by_reg[reg]
        out.append({
            "reg": reg,
            "fails": row["fails"],
            "blocks": sorted(row["blocks"]),
            "expected": sorted(row["expected"]),
            "observed": sorted(row["observed"]),
        })
    out.sort(key=lambda r: (-r["fails"], r["reg"]))
    return out


# ----------------------------------------------------------------------
# predicted vs observed (the journal joined against the TNV profiles)
# ----------------------------------------------------------------------

def _defining_pcs(program, reg: int) -> List[int]:
    """pcs of every instruction that writes ``reg``."""
    return [
        inst.pc
        for inst in program.instructions
        if (inst.info.defines_register or inst.opcode == "jalr") and inst.rd == reg
    ]


def _profiled_invariance(
    database: ProfileDatabase, program_name: str, pcs: List[int]
) -> Tuple[Optional[float], int]:
    """Execution-weighted Inv-Top1 over the INSTRUCTION profiles at
    ``pcs``; ``(None, 0)`` when nothing was profiled there."""
    labels = {str(pc) for pc in pcs}
    weighted = 0.0
    total = 0
    for profile in database.profiles(kind=SiteKind.INSTRUCTION):
        site = profile.site
        if site.program != program_name or site.label not in labels:
            continue
        executions = profile.tnv.total
        if not executions:
            continue
        weighted += profile.tnv.estimated_invariance(1) * executions
        total += executions
    if not total:
        return None, 0
    return weighted / total, total


def predicted_vs_observed(report: JitReport, program=None) -> List[dict]:
    """One row per guarded operand: profiled Inv-Top1 vs guard survival.

    A guarded operand is a ``(block, register)`` pair that ever
    appeared in a quicken/requicken binding set.  Observed survival is
    ``1 - fails / entries`` where entries counts guard evaluations
    (passes through the compiled prologue plus deopted entries) and
    fails counts ``guard_fail`` events for that register.  The verdict
    crosses predicted (Inv-Top1 >= ``PREDICT_STABLE``) with observed
    (survival >= ``SURVIVAL_OK``): ``ok``, ``thrash`` (predicted
    stable, guards failed), ``expected-variant``,
    ``unpredicted-stable``, or ``unprofiled``.
    """
    if program is None:
        from repro.workloads import get_workload

        program = get_workload(report.workload).program()

    guarded: Dict[Tuple[int, int], int] = {}
    fails: Dict[Tuple[int, int], int] = {}
    deopts: Dict[int, int] = {}
    for event in report.events:
        block = event["block"]
        type_ = event["type"]
        if type_ in ("quicken", "requicken"):
            for reg, value in event.get("bindings", []):
                guarded[(block, reg)] = value
        elif type_ == "guard_fail":
            key = (block, event["reg"])
            fails[key] = fails.get(key, 0) + 1
            guarded.setdefault(key, event["expected"])
        elif type_ == "deopt":
            deopts[block] = deopts.get(block, 0) + 1

    passes = {s["start"]: s["guard_entries"] for s in report.summaries}
    rows = []
    for (block, reg) in sorted(guarded):
        entries = passes.get(block, 0) + deopts.get(block, 0)
        failed = fails.get((block, reg), 0)
        survival = 1.0 - failed / entries if entries else 1.0
        inv, profiled_execs = _profiled_invariance(
            report.database, program.name, _defining_pcs(program, reg)
        )
        if inv is None:
            verdict = "unprofiled"
        else:
            predicted = inv >= PREDICT_STABLE
            held = survival >= SURVIVAL_OK
            if predicted and held:
                verdict = "ok"
            elif predicted:
                verdict = "thrash"
            elif held:
                verdict = "unpredicted-stable"
            else:
                verdict = "expected-variant"
        rows.append({
            "block": block,
            "reg": reg,
            "bound": guarded[(block, reg)],
            "entries": entries,
            "fails": failed,
            "survival": survival,
            "inv_top1": inv,
            "profiled_execs": profiled_execs,
            "verdict": verdict,
        })
    rows.sort(key=lambda r: (VERDICTS.index(r["verdict"]), -r["fails"],
                             r["block"], r["reg"]))
    return rows


def thrashing_blocks(rows: List[dict]) -> List[dict]:
    """The predicted-vs-observed rows where the paper's prediction
    failed in practice — profile said stable, guards thrashed."""
    return [row for row in rows if row["verdict"] == "thrash"]


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

def _render_timeline(transitions: List[dict]) -> str:
    labels = [_timeline_label(e) for e in transitions]
    # Collapse repeat runs ("deopt deopt deopt" -> "deopt x3") so hot
    # blocks don't overflow the column.
    out: List[str] = []
    for label in labels:
        if out and out[-1].split(" x")[0] == label:
            head = out[-1].split(" x")
            count = int(head[1]) if len(head) > 1 else 1
            out[-1] = f"{label} x{count + 1}"
        else:
            out.append(label)
    return " > ".join(["counting"] + out)


def render_report(report: JitReport, top: int = 10) -> str:
    """The full plain-text flight-deck report."""
    sections: List[str] = []
    counts = report.event_counts

    header = Table(("events", "count"),
                   title=f"{report.dataset}: tier-2 specialization journal")
    for type_, count in counts.items():
        header.add_row(type_, count)
    if not counts:
        header.add_row("(no events)", 0)
    sections.append(header.render())

    timelines = lifecycle_timelines(report.events)
    modes = {s["start"]: s for s in report.summaries}
    lifecycle = Table(("block", "mode", "fused", "entries", "guard entries",
                       "fails", "lifecycle"),
                      title="Per-block lifecycle")
    shown = sorted(timelines, key=lambda b: -(modes.get(b, {}).get("guard_entries", 0)
                                              + modes.get(b, {}).get("entries", 0)))
    for block in shown[:top]:
        summary = modes.get(block, {})
        lifecycle.add_row(
            block,
            str(summary.get("mode", "?")),
            summary.get("fused", 0),
            summary.get("entries", 0),
            summary.get("guard_entries", 0),
            summary.get("fails", 0),
            _render_timeline(timelines[block]),
        )
    if len(shown) > top:
        lifecycle.add_separator()
        lifecycle.add_row(f"(+{len(shown) - top} more)", "", "", "", "", "", "")
    sections.append(lifecycle.render())

    taxonomy = deopt_taxonomy(report.events)
    tax_table = Table(("reason", "count"), title="Deopt / reject taxonomy")
    for reason, count in taxonomy.items():
        tax_table.add_row(reason, count)
    if not taxonomy:
        tax_table.add_row("(none)", 0)
    sections.append(tax_table.render())

    failing = guard_failures(report.events)
    fail_table = Table(("reg", "fails", "blocks", "expected", "observed"),
                       title="Top guard-failing registers")
    for row in failing[:top]:
        fail_table.add_row(
            f"r{row['reg']}",
            row["fails"],
            ",".join(str(b) for b in row["blocks"]),
            ",".join(str(v) for v in row["expected"][:4]),
            ",".join(str(v) for v in row["observed"][:4])
            + ("…" if len(row["observed"]) > 4 else ""),
        )
    if not failing:
        fail_table.add_row("(none)", 0, "", "", "")
    sections.append(fail_table.render())

    rows = predicted_vs_observed(report)
    pvo = Table(("block", "operand", "bound", "entries", "fails",
                 "survival%", "Inv-Top1%", "verdict"),
                title="Predicted vs observed invariance (per guarded operand)")
    for row in rows[:max(top, 16)]:
        pvo.add_row(
            row["block"],
            f"r{row['reg']}",
            row["bound"],
            row["entries"],
            row["fails"],
            100.0 * row["survival"],
            "-" if row["inv_top1"] is None else f"{100.0 * row['inv_top1']:.1f}",
            row["verdict"],
        )
    if not rows:
        pvo.add_row("(no guarded operands)", "", "", "", "", "", "", "")
    sections.append(pvo.render())

    thrash = thrashing_blocks(rows)
    if thrash:
        note = (f"{len(thrash)} guarded operand(s) thrashing: the profile "
                f"predicted stability (Inv-Top1 >= {PREDICT_STABLE:.0%}) but "
                f"guards survived < {SURVIVAL_OK:.0%} of entries — "
                "candidates for wider TNV windows or guard exclusion.")
    else:
        note = ("No thrashing operands: every guard the profile predicted "
                "stable held up at run time.")
    sections.append(note)
    return "\n\n".join(sections)


def report_payload(report: JitReport) -> dict:
    """The machine-readable version of :func:`render_report`."""
    rows = predicted_vs_observed(report)
    return {
        "workload": report.workload,
        "dataset": report.dataset,
        "event_counts": report.event_counts,
        "stats": dict(report.stats),
        "taxonomy": deopt_taxonomy(report.events),
        "guard_failures": guard_failures(report.events),
        "predicted_vs_observed": rows,
        "thrashing": thrashing_blocks(rows),
        "blocks": report.summaries,
    }
