"""Jitlog: the tier-2 specialization journal.

The tier-2 engine (:mod:`repro.isa.tier2`) makes its quicken / guard /
deopt / despecialize decisions online, and until this module existed it
summarized a whole run in four aggregate counters.  :data:`JITLOG` is
the structured record of those decisions: a bounded ring of typed
events, each carrying the *reason* for the transition it describes, on
a deterministic event clock (instructions retired when the decision was
taken — never wall time), so two runs of the same workload at the same
scale produce byte-identical journals.

Event taxonomy (the ``type`` field):

========= ============================================================
``hot``          a counting stub crossed its threshold
``quicken``      a block compiled to a superinstruction (guarded or
                 plain fused); carries pc range, fused count, guard
                 bindings and the benefit-model terms
``reject``       specialization declined — ``reason`` says which
                 limit: ``benefit`` (model said no), ``min_fused``,
                 ``max_trace`` (trace growth truncated at the cap) or
                 ``max_quickened``
``guard_fail``   one guarded register mismatched at entry; carries
                 expected vs observed value and the entry count
``deopt``        a guarded entry fell back to the per-pc handlers
``requicken``    the block re-specialized with refreshed bindings
``despecialize`` the failure budget ran out; the block is permanently
                 unguarded
``preheat``      a stored profile lowered the block's threshold
``cache_hit`` / ``cache_miss``  generated-source code-cache outcome
========= ============================================================

Every event is a plain dict of deterministic scalars (ints, strings,
sorted ``[register, value]`` pairs) plus bookkeeping: ``seq`` (journal
sequence number), ``clock`` (instructions retired), ``program`` and
``block`` (leader pc).  Emission also bumps a
``machine.tier2.jitlog.<type>`` counter in the metrics registry when
metrics are enabled, which is how journal activity reaches ``repro
stats``, the time-series grid and the dashboard without any extra
plumbing.

Discipline matches the rest of :mod:`repro.obs`: disabled (the
default) the journal records nothing and costs one attribute test at
the — already rare — lifecycle points that consult it; the engine's
dispatch hot paths are untouched either way.  Enabled with no sink it
is a bounded ring (oldest events drop); ``--jitlog FILE`` exports
JSONL, ``--jitlog-map FILE`` a perf-map-style dump of the quickened pc
ranges.  Profiles and experiment output are byte-identical with the
journal on or off.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import METRICS as _METRICS

#: default ring capacity: generously covers every lifecycle event of a
#: full-scale `repro all` (lifecycle events are rare by construction —
#: one per block transition, not per block entry).
DEFAULT_CAPACITY = 65_536

#: the closed set of event types; emission checks membership so a typo
#: in an instrumentation point fails loudly in tests, not silently in
#: a report.
EVENT_TYPES = frozenset({
    "hot", "quicken", "reject", "guard_fail", "deopt",
    "requicken", "despecialize", "preheat", "cache_hit", "cache_miss",
})


class JitLog:
    """Bounded ring journal of tier-2 specialization events."""

    __slots__ = ("enabled", "capacity", "_events", "_seq", "counts")

    def __init__(self) -> None:
        self.enabled = False
        self.capacity = DEFAULT_CAPACITY
        self._events: List[dict] = []
        self._seq = 0
        #: events ever emitted, per type (survives ring drops).
        self.counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def enable(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"jitlog capacity must be >= 1, got {capacity}")
        self.enabled = True
        self.capacity = capacity
        self.reset()

    def disable(self) -> None:
        """Stop recording; the ring stays readable until re-enabled."""
        self.enabled = False

    def reset(self) -> None:
        self._events = []
        self._seq = 0
        self.counts = {}

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------

    def emit(self, type: str, clock: int, program: str, block: int, **fields) -> None:
        """Append one event.  Callers guard on ``enabled`` themselves.

        ``fields`` must be deterministic scalars (or lists/sorted pairs
        of them) — anything landing here is serialized byte-for-byte
        into the exported journal.
        """
        if type not in EVENT_TYPES:
            raise ValueError(f"unknown jitlog event type {type!r}")
        seq = self._seq
        self._seq = seq + 1
        self.counts[type] = self.counts.get(type, 0) + 1
        event = {"seq": seq, "clock": clock, "type": type,
                 "program": program, "block": block}
        event.update(fields)
        events = self._events
        events.append(event)
        if len(events) > self.capacity:
            del events[: len(events) - self.capacity]
        if _METRICS.enabled:
            _METRICS.inc(f"machine.tier2.jitlog.{type}")

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    @property
    def total_events(self) -> int:
        """Events ever emitted (``seq`` values are 0-based indices)."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Events the bounded ring no longer retains."""
        return self._seq - len(self._events)

    def events(self) -> List[dict]:
        """Retained events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # cross-process shipping (``--jobs``)
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """Everything a worker ships home for :meth:`merge`."""
        return {
            "capacity": self.capacity,
            "total_events": self._seq,
            "counts": dict(self.counts),
            "events": self.events(),
        }

    def merge(self, payload: dict) -> None:
        """Fold one worker's journal in (parent merges in result order,
        so the combined journal is deterministic under ``--jobs``).
        Events are re-sequenced into this journal's own ``seq`` space;
        their clocks stay worker-local, which is still deterministic
        because each worker's event clock is."""
        for event in payload.get("events", ()):
            merged = dict(event)
            seq = self._seq
            self._seq = seq + 1
            merged["seq"] = seq
            self._events.append(merged)
        if len(self._events) > self.capacity:
            del self._events[: len(self._events) - self.capacity]
        for type_, count in payload.get("counts", {}).items():
            self.counts[type_] = self.counts.get(type_, 0) + count
        # Worker-side ring drops surface in the merged dropped count.
        self._seq += payload.get("total_events", 0) - len(payload.get("events", ()))

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def write_jsonl(self, path: str, reason: str = "cli-exit") -> str:
        """Write the journal to ``path`` as JSONL; returns the path.

        First line is a header with provenance (events seen, ring
        drops, per-type counts); every following line is one event,
        oldest first, keys sorted — byte-stable across identical runs.
        """
        events = self.events()
        with open(path, "w") as handle:
            header = {
                "jitlog": True,
                "reason": reason,
                "capacity": self.capacity,
                "total_events": self._seq,
                "retained": len(events),
                "dropped": self._seq - len(events),
                "counts": dict(sorted(self.counts.items())),
            }
            handle.write(json.dumps(header, sort_keys=True))
            handle.write("\n")
            for event in events:
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")
        return path

    def write_map(self, path: str) -> str:
        """Write a perf-map-style dump of the quickened pc ranges.

        One line per (program, block) that ever compiled, in the format
        external map consumers expect — ``START SIZE NAME`` with hex
        start/size — where NAME encodes program, leader pc, final mode
        and guard count: ``t2_<program>_b<start>_<mode><n>``.  Later
        events for a block (requicken, despecialize) supersede earlier
        ones, so the map reflects each block's final shape.
        """
        final: Dict[Tuple[str, int], Tuple[int, int, str, int]] = {}
        for event in self._events:
            type_ = event["type"]
            key = (event["program"], event["block"])
            if type_ == "quicken":
                pc_range = event.get("pc_range", [event["block"], event["block"]])
                final[key] = (pc_range[0], event.get("fused", 1),
                              event.get("mode", "fused"),
                              len(event.get("bindings", [])))
            elif type_ == "requicken" and key in final:
                start, size, _, _ = final[key]
                final[key] = (start, size, "guarded", len(event.get("bindings", [])))
            elif type_ == "despecialize" and key in final:
                start, size, _, _ = final[key]
                final[key] = (start, size, "fused", 0)
        with open(path, "w") as handle:
            for (program, block), (start, size, mode, guards) in sorted(final.items()):
                name = f"t2_{program}_b{block}_{mode}{guards}"
                handle.write(f"{start:x} {size:x} {name}\n")
        return path


def load_jitlog(path: str) -> Tuple[dict, List[dict]]:
    """Read a ``write_jsonl`` dump back as ``(header, events)``."""
    with open(path) as handle:
        lines = [line for line in (l.strip() for l in handle) if line]
    if not lines:
        return {}, []
    header = json.loads(lines[0])
    events = [json.loads(line) for line in lines[1:]]
    if not header.get("jitlog"):
        # Headerless journal (hand-assembled fixture): treat every
        # line as an event.
        return {}, [header] + events
    return header, events


#: The process-wide journal; the tier-2 engine emits into it, parallel
#: workers run their own and ship events home for a deterministic merge.
JITLOG = JitLog()
