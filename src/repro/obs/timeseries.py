"""Time-series telemetry: periodic snapshots of the metrics registry.

PR 3's :mod:`repro.obs.metrics` answers "what did the whole run do";
this module answers "what was it doing *over* the run".  The
process-wide :data:`TIMESERIES` collector snapshots the comparable
sections of :data:`repro.obs.metrics.METRICS` (counters and gauges —
never wall-clock timers) every ``interval`` observed events into a
columnar ring of (tick, name, value) samples.

The event clock ("tick") is advanced only at the same batch / clear /
run boundaries the metrics layer instruments — one
:meth:`TimeSeriesCollector.advance` call per profile batch, per
interpreter run, per trace replay — so the per-event hot paths stay
untouched and disabled-mode cost is a single attribute test at each
boundary (``benchmarks/check_obs_overhead.py`` guards the enabled-mode
cost too).

Cross-process semantics mirror the registry's: worker processes run
their own collector, ship :meth:`to_payload` home, and the parent folds
it in with :meth:`merge`.  Samples land on a shared (tick, name) grid
where counter values **add** and gauge values take the **max** — both
associative and commutative, so ``--jobs N`` yields one coherent
series regardless of completion order.

Exporters: :meth:`write_jsonl` (one sample per line, diff-friendly) and
:meth:`write_prometheus` (Prometheus text exposition format, ticks as
timestamps), selected by the output path's extension on the CLI.

Because sampling covers every counter in the registry, new counter
families appear in the grid with no wiring here — e.g. running with
both ``--timeseries`` and ``--jitlog`` puts the
``machine.tier2.jitlog.<type>`` specialization-event rates
(:mod:`repro.obs.jitlog`) on the same event clock as everything else,
which is how quicken/deopt bursts line up against throughput dips in
the dashboard's time-series panel.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Tuple

from repro.obs.hist import merge_hist_snapshots, render_prometheus_hist
from repro.obs.metrics import METRICS

#: default events between samples; chosen so a scale-1.0 ``repro all``
#: (hundreds of millions of events) yields thousands of samples, not
#: millions.
DEFAULT_INTERVAL = 100_000

#: default ring capacity: bounded memory no matter how long the run.
DEFAULT_CAPACITY = 4096

_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


class TimeSeriesCollector:
    """Periodic (tick, counters, gauges) snapshots behind an ``enabled`` flag.

    Args (set via :meth:`enable`):
        interval: observed events between samples.
        capacity: maximum retained samples; the ring drops the *oldest*
            sample per overflow, so the series always covers the most
            recent window at full resolution.
    """

    __slots__ = ("enabled", "interval", "capacity", "_grid", "_events", "_since", "_dropped")

    def __init__(self) -> None:
        self.enabled = False
        self.interval = DEFAULT_INTERVAL
        self.capacity = DEFAULT_CAPACITY
        #: tick -> {"counters": {...}, "gauges": {...}}
        self._grid: Dict[int, dict] = {}
        self._events = 0
        self._since = 0
        self._dropped = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def enable(
        self,
        interval: int = DEFAULT_INTERVAL,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        """Start sampling every ``interval`` events (drops old data)."""
        if interval < 1:
            raise ValueError(f"timeseries interval must be >= 1, got {interval}")
        if capacity < 1:
            raise ValueError(f"timeseries capacity must be >= 1, got {capacity}")
        self.enabled = True
        self.interval = interval
        self.capacity = capacity
        self._grid = {}
        self._events = 0
        self._since = 0
        self._dropped = 0

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all samples and rewind the event clock."""
        self._grid = {}
        self._events = 0
        self._since = 0
        self._dropped = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def advance(self, events: int) -> None:
        """Advance the event clock by ``events``; sample on overflow.

        Called at batch/run/replay boundaries only.  A single boundary
        advancing past several intervals still takes one sample — the
        clock is coarse by design; resolution is bounded by the largest
        batch, not by the interval.
        """
        if not self.enabled:
            return
        self._events += events
        self._since += events
        if self._since >= self.interval:
            self._since = 0
            self.sample()

    def sample(self) -> None:
        """Take one snapshot of the registry now.

        ``counters`` and ``gauges`` are the comparable sections;
        ``timers`` and ``hists`` carry wall-clock content and ride in
        the same sample so the exposition output keeps the full
        registry (``render_prometheus`` emits all four).
        """
        if not self.enabled:
            return
        full = METRICS.snapshot()
        self._store(
            self._events,
            {
                "counters": dict(METRICS._counters),
                "gauges": dict(METRICS._gauges),
                "timers": full["timers"],
                "hists": full["hists"],
            },
        )

    def _store(self, tick: int, sample: dict) -> None:
        grid = self._grid
        existing = grid.get(tick)
        if existing is not None:
            _combine(existing, sample)
            return
        if len(grid) >= self.capacity:
            oldest = min(grid)
            del grid[oldest]
            self._dropped += 1
        grid[tick] = sample

    # ------------------------------------------------------------------
    # reading / combining
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._grid)

    @property
    def events(self) -> int:
        """Observed events since enable (the current tick)."""
        return self._events

    @property
    def dropped(self) -> int:
        """Samples evicted by ring overflow."""
        return self._dropped

    def samples(self) -> List[dict]:
        """All retained samples, tick-ascending, deterministic keys.

        Each sample is ``{"tick": t, "counters": {...}, "gauges": {...}}``
        with the inner sections key-sorted, mirroring the registry's
        snapshot discipline.
        """
        out = []
        for tick in sorted(self._grid):
            stored = self._grid[tick]
            sample = {
                "tick": tick,
                "counters": dict(sorted(stored["counters"].items())),
                "gauges": dict(sorted(stored["gauges"].items())),
            }
            # Timing sections appear only when present — samples merged
            # from payloads that predate them stay unchanged.
            for section in ("timers", "hists"):
                if stored.get(section):
                    sample[section] = dict(sorted(stored[section].items()))
            out.append(sample)
        return out

    def series(self, name: str) -> List[Tuple[int, float]]:
        """(tick, value) pairs for one counter/gauge name, tick-ascending."""
        points = []
        for tick in sorted(self._grid):
            sample = self._grid[tick]
            value = sample["counters"].get(name)
            if value is None:
                value = sample["gauges"].get(name)
            if value is not None:
                points.append((tick, value))
        return points

    def to_payload(self) -> dict:
        """Plain-dict form a worker process ships home for :meth:`merge`."""
        return {
            "interval": self.interval,
            "events": self._events,
            "dropped": self._dropped,
            "samples": self.samples(),
        }

    def merge(self, payload: dict) -> None:
        """Fold a worker collector's :meth:`to_payload` into this one.

        Samples land on the shared (tick, name) grid: counters **add**,
        gauges take the **max** — the same associative semantics as
        :meth:`repro.obs.metrics.MetricsRegistry.merge`, so any merge
        order yields the same series.  A disabled collector stays
        empty, mirroring the registry's merge discipline.
        """
        if not self.enabled:
            return
        for sample in payload.get("samples", []):
            self._store(
                sample["tick"],
                {
                    "counters": dict(sample.get("counters", {})),
                    "gauges": dict(sample.get("gauges", {})),
                    "timers": {name: dict(stats)
                               for name, stats in sample.get("timers", {}).items()},
                    "hists": {name: dict(snap)
                              for name, snap in sample.get("hists", {}).items()},
                },
            )
        self._dropped += payload.get("dropped", 0)
        self._events = max(self._events, payload.get("events", 0))

    # ------------------------------------------------------------------
    # exporters
    # ------------------------------------------------------------------

    def write_jsonl(self, path: str) -> None:
        """One sorted-key JSON sample per line (see :func:`load_series`)."""
        with open(path, "w") as handle:
            for sample in self.samples():
                handle.write(json.dumps(sample, sort_keys=True))
                handle.write("\n")

    def write_prometheus(self, path: str) -> None:
        """Prometheus text exposition format, one line per sample point.

        Metric names are prefixed ``repro_`` and sanitized; the sample
        tick rides in the timestamp slot (Prometheus timestamps are
        integers, and the event clock is the only monotonic axis the
        deterministic snapshots carry).
        """
        with open(path, "w") as handle:
            handle.write(render_prometheus(self.samples()))


def _combine(into: dict, sample: dict) -> None:
    counters = into["counters"]
    for name, value in sample["counters"].items():
        counters[name] = counters.get(name, 0) + value
    gauges = into["gauges"]
    for name, value in sample["gauges"].items():
        current = gauges.get(name)
        if current is None or value > current:
            gauges[name] = value
    # Timer and histogram merges mirror the registry's: count/total add,
    # extremes fold, buckets add — all associative, any merge order works.
    timers = into.setdefault("timers", {})
    for name, stats in sample.get("timers", {}).items():
        current = timers.get(name)
        if current is None:
            timers[name] = dict(stats)
        else:
            current["count"] += stats["count"]
            current["total_s"] += stats["total_s"]
            current["max_s"] = max(current["max_s"], stats["max_s"])
            current["min_s"] = min(
                current.get("min_s", current["max_s"]),
                stats.get("min_s", stats["max_s"]),
            )
    merge_hist_snapshots(into.setdefault("hists", {}), sample.get("hists", {}))


def prom_name(name: str, suffix: str = "") -> str:
    """A dotted metric name as a sanitized ``repro_``-prefixed one."""
    return "repro_" + _PROM_SANITIZE.sub("_", name) + suffix


def render_prometheus(samples: List[dict]) -> str:
    """Render samples as Prometheus text exposition format.

    Counters and gauges map directly; each timer expands into four
    series (``_seconds_count`` / ``_seconds_sum`` counters plus
    ``_seconds_max`` / ``_seconds_min`` gauges — timers used to be
    dropped entirely, silently losing all timing data from ``.prom``
    files); histograms render only their final sample, as cumulative
    ``_bucket{le=...}`` series (repeating a full bucket grid per tick
    would dwarf everything else, and the final sample already *is* the
    whole-run distribution — histogram merges are cumulative).
    """
    by_name: Dict[str, Tuple[str, List[Tuple[int, float]]]] = {}
    last_hists: Dict[str, dict] = {}
    for sample in samples:
        tick = sample["tick"]
        for section, prom_type in (("counters", "counter"), ("gauges", "gauge")):
            for name, value in sample.get(section, {}).items():
                entry = by_name.setdefault(prom_name(name), (prom_type, []))
                entry[1].append((tick, value))
        for name, stats in sample.get("timers", {}).items():
            for suffix, prom_type, value in (
                ("_seconds_count", "counter", stats["count"]),
                ("_seconds_sum", "counter", stats["total_s"]),
                ("_seconds_max", "gauge", stats["max_s"]),
                ("_seconds_min", "gauge", stats.get("min_s", stats["max_s"])),
            ):
                entry = by_name.setdefault(prom_name(name, suffix), (prom_type, []))
                entry[1].append((tick, value))
        for name, snap in sample.get("hists", {}).items():
            last_hists[name] = snap
    lines = []
    for prom in sorted(by_name):
        prom_type, points = by_name[prom]
        lines.append(f"# TYPE {prom} {prom_type}")
        for tick, value in points:
            lines.append(f"{prom} {value} {tick}")
    for name in sorted(last_hists):
        lines.extend(render_prometheus_hist(prom_name(name), last_hists[name]))
    return "\n".join(lines) + ("\n" if lines else "")


def load_series(path: str) -> Optional[List[dict]]:
    """Read a series written by :meth:`TimeSeriesCollector.write_jsonl`."""
    try:
        samples = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    samples.append(json.loads(line))
        return samples
    except (OSError, json.JSONDecodeError):
        return None


#: The process-wide collector every boundary instrumentation point
#: advances (see docs/observability.md for the boundary catalog).
TIMESERIES = TimeSeriesCollector()
