"""Profiling-as-a-service: the ``repro serve`` daemon and its client.

The paper's convergence result — value profiles stabilize quickly and
merge associatively — is what makes a long-lived, shard-parallel
profiling service feasible: per-site state is order-dependent only on
its *own* sub-stream, so the site space can be hashed across shards and
each shard folds its slice through the existing batched/columnar fast
paths while merged snapshots answer live queries.

Layout:

* :mod:`repro.serve.protocol` — wire format (length-prefixed JSON
  frames), site payload encoding, and the deterministic shard-routing
  hash.
* :mod:`repro.serve.shard` — :class:`~repro.serve.shard.ShardCore`, the
  runtime-agnostic shard engine: per-client in-order apply with
  dedup/reorder buffering, write-ahead journal, snapshot/restore.
* :mod:`repro.serve.server` — the asyncio front: ingest listener,
  HTTP query listener, inline (asyncio-task) and worker-process shard
  runtimes, bounded-queue backpressure with client-visible flow
  control, periodic checkpoints.
* :mod:`repro.serve.client` — the blocking client used by ``repro
  push`` and the test harness: windowed sends, ack tracking,
  timeout/retry with reconnect, flow-control compliance.
"""

from repro.serve.protocol import shard_for_site
from repro.serve.shard import ShardCore

__all__ = ["ShardCore", "shard_for_site"]
