"""Wire protocol of the profiling service.

Frames
------

Every message on the ingest socket — in both directions — is one
*frame*: a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  JSON keeps the protocol debuggable and
language-agnostic; the hot content (site ids and 64-bit values) rides
in flat integer lists, so a batch frame is effectively columnar.

A frame that is cut off mid-stream — a client that died mid-batch, a
dropped connection — simply never decodes: the decoder holds the
partial bytes and the server applies nothing.  Frame atomicity is what
guarantees "no partial fold" on disconnect.

Client → server messages (``t`` is the message type):

* ``{"t": "hello", "client": ID, "stream": NAME}`` — opens (or
  resumes) a session.  The server replies with ``welcome``.
* ``{"t": "sites", "base": K, "sites": [PAYLOAD, ...]}`` — defines the
  client's site ids ``K, K+1, ...``.  Definitions are positional and
  idempotent: a reconnecting client replays its table and the server
  verifies the prefix instead of re-adding it.
* ``{"t": "batch", "seq": N, "sids": [...], "values": [...],
  "tc": [TRACE, SPAN]}`` — one ordered slice of the event stream.
  ``seq`` is a per-client, contiguous, zero-based sequence number;
  ``sids`` index the client's site table.  ``tc`` (since protocol
  version 2) is the batch's trace context — a trace id and the
  client-minted span id every server-side child span parents under.
  It is advisory and backward/forward tolerant: servers ignore a
  missing or malformed ``tc`` rather than rejecting the batch, so v1
  producers keep working and v1 servers ignore the extra key.
* ``{"t": "bye"}`` — graceful close.

Server → client messages:

* ``{"t": "welcome", "shards": N, "next": SEQ}`` — session resume
  point: every batch below ``SEQ`` is applied on every shard, so the
  client drops those from its unacked buffer and resends the rest.
* ``{"t": "ack", "seq": N}`` — batch ``N`` has been folded *and
  journaled* on every shard.  An acked batch survives any single-shard
  crash (restart replays the journal), which is what bounds loss to
  the unacknowledged window.
* ``{"t": "flow", "state": "pause" | "resume"}`` — bounded-queue flow
  control: a saturated shard queue pauses all producers; draining
  below the low watermark resumes them.
* ``{"t": "error", "message": TEXT}`` — protocol violation; the server
  closes the connection after sending it.

Sharding
--------

:func:`shard_for_site` hashes the site *identity* (kind, program,
procedure, label — the fields :class:`~repro.core.sites.Site` compares
on) with CRC32, exactly like the VHT's process-stable indexing: the
assignment must not depend on ``PYTHONHASHSEED`` because journals,
snapshots and clients all outlive any single server process.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Iterator, List, Optional, Tuple

from repro.core.sites import Site, SiteKind
from repro.errors import ReproError

#: bumped when the frame layout or message schema changes.
#: v2: batch frames carry an optional ``tc`` trace context.
PROTOCOL_VERSION = 2

#: refuse frames larger than this (corrupt length prefix / abuse guard).
MAX_FRAME = 16 * 1024 * 1024

_LEN = struct.Struct(">I")


class ProtocolError(ReproError):
    """A malformed frame or message arrived on the wire."""


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------


def encode_frame(message: dict) -> bytes:
    """One message as a length-prefixed JSON frame."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return _LEN.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """The JSON payload of one frame body."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from None
    if not isinstance(message, dict) or "t" not in message:
        raise ProtocolError("frame is not a typed message object")
    return message


class FrameDecoder:
    """Incremental frame decoder for blocking-socket clients.

    Feed it whatever bytes arrived; it yields complete messages and
    holds partial frames across feeds.  A truncated final frame is
    simply never yielded — the atomicity guarantee of the protocol.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> Iterator[dict]:
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _LEN.size:
                return
            (length,) = _LEN.unpack_from(self._buffer)
            if length > MAX_FRAME:
                raise ProtocolError(f"frame length {length} exceeds MAX_FRAME")
            end = _LEN.size + length
            if len(self._buffer) < end:
                return
            body = bytes(self._buffer[_LEN.size:end])
            del self._buffer[:end]
            yield decode_body(body)

    @property
    def pending_bytes(self) -> int:
        """Bytes of an incomplete frame currently held."""
        return len(self._buffer)


async def read_frame(reader) -> Optional[dict]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    EOF *inside* a frame (length read, body truncated) also returns
    ``None``: the partial batch is discarded, never applied.
    """
    import asyncio

    try:
        header = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds MAX_FRAME")
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    return decode_body(body)


# ----------------------------------------------------------------------
# site payloads
# ----------------------------------------------------------------------


def site_to_payload(site: Site) -> List[str]:
    """A site as the 5-element JSON list the protocol ships."""
    return [site.kind.value, site.program, site.procedure, site.label, site.opcode]


def site_from_payload(payload) -> Site:
    """Rebuild a :class:`Site` from :func:`site_to_payload` output."""
    try:
        kind, program, procedure, label, opcode = payload
        return Site(
            kind=SiteKind(kind),
            program=program,
            procedure=procedure,
            label=label,
            opcode=opcode,
        )
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"bad site payload {payload!r}: {error}") from None


# ----------------------------------------------------------------------
# shard routing
# ----------------------------------------------------------------------


def shard_for_site(site: Site, shards: int) -> int:
    """Deterministic shard index for ``site``.

    CRC32 over the identity fields — stable across processes, Python
    versions and ``PYTHONHASHSEED``, so a journal written by one server
    routes identically in the next.  ``opcode`` is excluded because
    :class:`Site` excludes it from equality.
    """
    key = f"{site.kind.value}|{site.program}|{site.procedure}|{site.label}"
    return zlib.crc32(key.encode("utf-8")) % shards


# ----------------------------------------------------------------------
# message constructors (the names double as schema documentation)
# ----------------------------------------------------------------------


def hello(client: str, stream: str = "") -> dict:
    return {"t": "hello", "v": PROTOCOL_VERSION, "client": client, "stream": stream}


def welcome(shards: int, next_seq: int) -> dict:
    return {"t": "welcome", "v": PROTOCOL_VERSION, "shards": shards, "next": next_seq}


def sites_frame(base: int, payloads: List[List[str]]) -> dict:
    return {"t": "sites", "base": base, "sites": payloads}


def batch(
    seq: int,
    sids: List[int],
    values: List[int],
    tc: Optional[List[str]] = None,
) -> dict:
    message = {"t": "batch", "seq": seq, "sids": sids, "values": values}
    if tc is not None:
        message["tc"] = tc
    return message


def ack(seq: int) -> dict:
    return {"t": "ack", "seq": seq}


def flow(state: str) -> dict:
    return {"t": "flow", "state": state}


def error(message: str) -> dict:
    return {"t": "error", "message": message}


def bye() -> dict:
    return {"t": "bye"}


def check_batch(
    message: dict,
) -> Tuple[int, List[int], List[int], Optional[Tuple[str, str]]]:
    """Validate a batch message; returns ``(seq, sids, values, tc)``.

    ``tc`` is the optional trace context as a ``(trace_id, span_id)``
    tuple.  Unlike the event columns it is advisory telemetry, so a
    missing or malformed one degrades to ``None`` instead of raising —
    an old or sloppy producer must not lose data over tracing.
    """
    seq = message.get("seq")
    sids = message.get("sids")
    values = message.get("values")
    if not isinstance(seq, int) or seq < 0:
        raise ProtocolError(f"batch seq must be a non-negative int, got {seq!r}")
    if not isinstance(sids, list) or not isinstance(values, list):
        raise ProtocolError("batch sids/values must be lists")
    if len(sids) != len(values):
        raise ProtocolError(
            f"batch column mismatch: {len(sids)} sids vs {len(values)} values"
        )
    # Element types are checked here, at the wire boundary, so nothing
    # downstream (routing, folds) ever sees a surprise type.  ``type is
    # int`` rather than isinstance: JSON true/false decode to bool, and
    # a bool in an event column is a client bug, not a value.
    for name, column in (("sids", sids), ("values", values)):
        if not all(type(item) is int for item in column):
            bad = next(item for item in column if type(item) is not int)
            raise ProtocolError(f"batch {name} must all be ints, got {bad!r}")
    raw_tc = message.get("tc")
    tc: Optional[Tuple[str, str]] = None
    if (
        isinstance(raw_tc, list)
        and len(raw_tc) == 2
        and all(isinstance(part, str) and part for part in raw_tc)
    ):
        tc = (raw_tc[0], raw_tc[1])
    return seq, sids, values, tc
