"""The runtime-agnostic shard engine.

One :class:`ShardCore` owns the profiles of every site that hashes to
its index.  The server fans **every** client batch out to **every**
shard — sub-batches carrying only the events whose sites the shard
owns, empty ones included — so each shard observes a gapless, strictly
increasing per-client sequence.  That single invariant buys the whole
consistency story:

* **Dedup** is a per-client high-water mark: a retried batch at or
  below the mark is reported done without touching the profiles.
* **In-order apply** is ``seq == high + 1``; anything further ahead is
  a batch whose predecessor was lost in a crash, so it parks in a
  bounded reorder buffer until the client's retry fills the gap.
  Without the buffer, a retry racing a newer in-flight batch could
  apply events out of stream order — the profiles' LVP/TNV state is
  order-sensitive, so order is load-bearing, not cosmetic.
* **Restart resume** is ``min`` over shards of the high-water mark:
  every batch below it is applied everywhere, everything else the
  client still holds.

Durability is write-ahead: a batch is journaled before it is folded,
and the server acks only after every shard has journaled+folded it.  A
checkpoint serializes the full shard state (profiles *with* exact
reference statistics — a pickle, same as the experiment disk cache)
and truncates the journal; restore loads the snapshot and replays the
journal tail through the normal dedup path, so a crash between
snapshot-rename and journal-truncate double-applies nothing.
"""

from __future__ import annotations

import os
import pickle
import struct
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.profile import ProfileDatabase, TNVConfig
from repro.core.sites import Site
from repro.errors import ReproError
from repro.obs.hist import Histogram
from repro.serve.protocol import site_from_payload

#: bumped when the snapshot or journal layout changes.
SNAPSHOT_FORMAT_VERSION = 1

_LEN = struct.Struct(">I")

#: per-client bound on batches parked ahead of a sequence gap.  An
#: overflowing batch is dropped un-acked — the client's retry loop
#: redelivers it once the gap closes, so the bound trades memory for
#: one extra round trip, never for data.
DEFAULT_AHEAD_WINDOW = 64


class ShardStateError(ReproError):
    """A snapshot or journal could not be loaded."""


class ShardCore:
    """All profiling state and durability logic of one shard.

    Pure synchronous code with no event-loop or process assumptions:
    the inline runtime drives it from an asyncio task, the process
    runtime from a worker process's receive loop, and the test harness
    directly.

    Args:
        index: this shard's position in the cluster.
        directory: where the snapshot and journal live.
        config: TNV knobs for every site profile.
        exact: keep exact reference statistics (needed for
            ground-truth metrics in query responses).
        restore: load ``shard-<index>.snap`` + journal tail on
            construction instead of starting empty.
        ahead_window: per-client reorder-buffer bound.
        telemetry: time journal writes and folds per applied batch into
            local histograms and the per-batch op log (:meth:`take_ops`)
            the runtimes ship home with done-reports.  Boundary-level
            only — two clock reads per applied sub-batch, never per
            event — and off during journal-replay restores so a
            restart's catch-up doesn't pollute live latency data.
    """

    def __init__(
        self,
        index: int,
        directory: str,
        config: Optional[TNVConfig] = None,
        exact: bool = True,
        restore: bool = False,
        ahead_window: int = DEFAULT_AHEAD_WINDOW,
        telemetry: bool = True,
    ) -> None:
        self.index = index
        self.directory = Path(directory)
        self.config = config or TNVConfig()
        self.exact = exact
        self.ahead_window = ahead_window
        self.db = ProfileDatabase(config=self.config, exact=exact)
        #: client id -> highest contiguously applied seq (-1 = none).
        self.applied: Dict[str, int] = {}
        #: client id -> {seq: (site_payloads, sidx, values)} parked ahead.
        self._ahead: Dict[str, Dict[int, tuple]] = {}
        #: decoded-site cache: payload tuple -> Site (amortizes decode).
        self._site_cache: Dict[tuple, Site] = {}
        self.counters: Dict[str, int] = {
            "batches": 0,
            "events": 0,
            "duplicates": 0,
            "ahead_buffered": 0,
            "ahead_dropped": 0,
            "wal_records": 0,
            "checkpoints": 0,
            "restores": 0,
        }
        self._wal_file = None
        self._batches_since_checkpoint = 0
        self.telemetry = telemetry
        #: shard-local latency distributions (always constructed; only
        #: populated while ``telemetry`` is on).
        self.hists: Dict[str, Histogram] = {
            "shard.journal_sync": Histogram(),
            "shard.fold": Histogram(),
        }
        #: per-applied-batch op log the runtimes drain via take_ops():
        #: (seq, tc, start_monotonic, journal_s, fold_s, events).
        self._ops: List[tuple] = []
        self._journal_bytes = 0
        self._last_checkpoint_m: Optional[float] = None
        self._last_fold_m: Optional[float] = None
        self._last_fold_tick = 0  # cumulative events at the last fold
        self.directory.mkdir(parents=True, exist_ok=True)
        if restore:
            self._restore()

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    @property
    def snapshot_path(self) -> Path:
        return self.directory / f"shard-{self.index:03d}.snap"

    @property
    def wal_path(self) -> Path:
        return self.directory / f"shard-{self.index:03d}.wal"

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------

    def submit(
        self,
        client: str,
        seq: int,
        site_payloads: List[list],
        sidx: List[int],
        values: List[int],
        journal: bool = True,
        tc: Optional[tuple] = None,
    ) -> List[int]:
        """Offer one sub-batch; returns the seqs now *done* on this shard.

        "Done" means safe to count toward an ack: either freshly
        journaled+applied (possibly releasing parked successors, whose
        seqs are included) or recognized as an already-applied
        duplicate.  A batch parked ahead of a gap — or dropped because
        the reorder buffer is full — returns no seqs, which withholds
        the ack and leaves redelivery to the client.

        ``site_payloads`` is the sub-batch's local site dictionary;
        ``sidx`` indexes into it.  Shipping the dictionary per batch
        keeps sub-batches self-contained, so a journal record replays
        without any shared interning state.

        ``tc`` is the batch's wire trace context; it parks with
        ahead-buffered batches so a gap-filling release still emits its
        spans under the right parent.
        """
        done: List[int] = []
        high = self.applied.get(client, -1)
        if seq <= high:
            self.counters["duplicates"] += 1
            done.append(seq)
            return done
        if seq > high + 1:
            parked = self._ahead.setdefault(client, {})
            if seq in parked:
                self.counters["duplicates"] += 1
            elif len(parked) >= self.ahead_window:
                self.counters["ahead_dropped"] += 1
            else:
                parked[seq] = (site_payloads, sidx, values, tc)
                self.counters["ahead_buffered"] += 1
            return done
        self._apply(client, seq, site_payloads, sidx, values, journal, tc)
        done.append(seq)
        parked = self._ahead.get(client)
        if parked:
            next_seq = seq + 1
            while next_seq in parked:
                payloads, parked_sidx, parked_values, parked_tc = parked.pop(next_seq)
                self._apply(
                    client, next_seq, payloads, parked_sidx, parked_values,
                    journal, parked_tc,
                )
                done.append(next_seq)
                next_seq += 1
        return done

    def _apply(
        self,
        client: str,
        seq: int,
        site_payloads: List[list],
        sidx: List[int],
        values: List[int],
        journal: bool,
        tc: Optional[tuple] = None,
    ) -> None:
        telemetry = self.telemetry
        t0 = time.monotonic() if telemetry else 0.0
        if journal:
            self._journal_append((client, seq, site_payloads, sidx, values))
        t1 = time.monotonic() if telemetry else 0.0
        sites = self._decode_sites(site_payloads)
        if sidx:
            # Group the sub-batch per site in first-appearance order and
            # fold each run through the batched hot path: one site
            # lookup per run, then the columnar SiteFold reduction.
            runs: List[Optional[List[int]]] = [None] * len(sites)
            order: List[int] = []
            for local, value in zip(sidx, values):
                run = runs[local]
                if run is None:
                    run = runs[local] = []
                    order.append(local)
                run.append(value)
            for local in order:
                self.db.record_batch(sites[local], runs[local])
        self.applied[client] = seq
        self.counters["batches"] += 1
        self.counters["events"] += len(sidx)
        self._batches_since_checkpoint += 1
        if telemetry:
            now = time.monotonic()
            journal_s = t1 - t0 if journal else 0.0
            fold_s = now - t1
            if journal:
                self.hists["shard.journal_sync"].observe(journal_s)
            self.hists["shard.fold"].observe(fold_s)
            self._last_fold_m = now
            self._last_fold_tick = self.counters["events"]
            self._ops.append((seq, tc, t0, journal_s, fold_s, len(sidx)))

    def take_ops(self) -> List[tuple]:
        """Drain the per-batch op log accumulated since the last drain.

        Each entry is ``(seq, tc, start_monotonic, journal_s, fold_s,
        events)``.  The runtimes attach these to done-reports so the
        *server* can fold them into its histograms and span tree — the
        op log itself never survives a shard kill, which is exactly why
        observations must leave with the ack.
        """
        ops, self._ops = self._ops, []
        return ops

    def _decode_sites(self, site_payloads: List[list]) -> List[Site]:
        cache = self._site_cache
        sites = []
        for payload in site_payloads:
            key = tuple(payload)
            site = cache.get(key)
            if site is None:
                site = cache[key] = site_from_payload(payload)
            sites.append(site)
        return sites

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    def _journal_append(self, record: tuple) -> None:
        if self._wal_file is None:
            self._wal_file = open(self.wal_path, "ab")
        body = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        self._wal_file.write(_LEN.pack(len(body)) + body)
        self._wal_file.flush()
        self.counters["wal_records"] += 1
        self._journal_bytes += _LEN.size + len(body)

    def checkpoint(self) -> None:
        """Serialize full state and truncate the journal.

        Write-to-temp + rename keeps the old snapshot valid until the
        new one is complete; truncating the journal *after* the rename
        means a crash in between replays journal records the snapshot
        already contains — which the dedup high-water mark absorbs.
        """
        payload = {
            "format": SNAPSHOT_FORMAT_VERSION,
            "index": self.index,
            "config": (
                self.config.capacity,
                self.config.steady,
                self.config.clear_interval,
            ),
            "exact": self.exact,
            "applied": dict(self.applied),
            "counters": dict(self.counters),
            "db": self.db,
        }
        tmp = self.snapshot_path.with_suffix(".snap.tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, self.snapshot_path)
        if self._wal_file is not None:
            self._wal_file.close()
            self._wal_file = None
        with open(self.wal_path, "wb"):
            pass
        self._batches_since_checkpoint = 0
        self._journal_bytes = 0
        self._last_checkpoint_m = time.monotonic()
        self.counters["checkpoints"] += 1

    def maybe_checkpoint(self, every: Optional[int]) -> bool:
        """Checkpoint if ``every`` batches have been applied since the last."""
        if every is not None and self._batches_since_checkpoint >= every:
            self.checkpoint()
            return True
        return False

    def _restore(self) -> None:
        if self.snapshot_path.exists():
            try:
                with open(self.snapshot_path, "rb") as handle:
                    payload = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError) as error:
                raise ShardStateError(
                    f"unreadable snapshot {self.snapshot_path}: {error}"
                ) from None
            if payload.get("format") != SNAPSHOT_FORMAT_VERSION:
                raise ShardStateError(
                    f"unsupported snapshot format {payload.get('format')!r}"
                )
            if payload["index"] != self.index:
                raise ShardStateError(
                    f"snapshot belongs to shard {payload['index']}, "
                    f"loaded as shard {self.index}"
                )
            self.db = payload["db"]
            self.applied = dict(payload["applied"])
            saved = payload.get("counters", {})
            for key in ("batches", "events", "checkpoints", "wal_records"):
                self.counters[key] = saved.get(key, 0)
        # Replay with telemetry muted: a restart's catch-up folds are
        # catch-up, not live latency — they would skew every histogram
        # the replayed op count's worth.
        live_telemetry, self.telemetry = self.telemetry, False
        try:
            for client, seq, site_payloads, sidx, values in self._read_journal():
                # Replay through the normal dedup path (no re-journaling):
                # records that predate the snapshot skip as duplicates.
                self.submit(client, seq, site_payloads, sidx, values, journal=False)
        finally:
            self.telemetry = live_telemetry
        self._journal_bytes = (
            self.wal_path.stat().st_size if self.wal_path.exists() else 0
        )
        self.counters["restores"] += 1

    def _read_journal(self) -> List[tuple]:
        records: List[tuple] = []
        if not self.wal_path.exists():
            return records
        with open(self.wal_path, "rb") as handle:
            data = handle.read()
        offset = 0
        while offset + _LEN.size <= len(data):
            (length,) = _LEN.unpack_from(data, offset)
            end = offset + _LEN.size + length
            if end > len(data):
                break  # torn final record (crash mid-append): not applied, not acked
            records.append(pickle.loads(data[offset + _LEN.size:end]))
            offset = end
        return records

    def close(self) -> None:
        if self._wal_file is not None:
            self._wal_file.close()
            self._wal_file = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Plain-dict shard statistics for ``/stats`` responses.

        Besides counters this carries the shard's *health* detail: how
        much un-checkpointed journal is on disk, how stale the snapshot
        is, and when the last fold landed — the numbers an operator
        needs to judge "is this shard keeping up and how much would a
        crash replay".  Ages are ``None`` until the event happens.
        """
        now = time.monotonic()
        return {
            "index": self.index,
            "sites": len(self.db),
            "clients": {
                client: high for client, high in sorted(self.applied.items())
            },
            "counters": dict(self.counters),
            "pending_ahead": sum(len(parked) for parked in self._ahead.values()),
            "journal_bytes": self._journal_bytes,
            "snapshot_age_s": (
                round(now - self._last_checkpoint_m, 3)
                if self._last_checkpoint_m is not None
                else None
            ),
            "last_fold_age_s": (
                round(now - self._last_fold_m, 3)
                if self._last_fold_m is not None
                else None
            ),
            "last_fold_tick": self._last_fold_tick,
            "hists": {name: hist.snapshot()
                      for name, hist in sorted(self.hists.items())},
        }


def resume_seq(applied_highs: List[int]) -> int:
    """The session resume point given every shard's high-water mark.

    A batch is ack-safe only when *every* shard applied it, so the
    resume point is the smallest mark plus one; shards ahead of it
    dedup the client's resends.
    """
    if not applied_highs:
        return 0
    return min(applied_highs) + 1
