"""The blocking client of the profiling service.

One :class:`ServeClient` is one producer session: it interns sites
into a positional table shared with the server, ships the event stream
as sequenced batches, and tracks acknowledgements in a bounded send
window.  The reliability contract is deliberately one-sided — the
*client* owns redelivery:

* every batch stays in the unacked buffer until its ``ack`` arrives;
* no ack within ``retry_interval`` → resend everything unacked, in
  sequence order (the server dedups, so resending is always safe);
* connection loss → reconnect, and the ``welcome`` resume point says
  which unacked batches the cluster already holds — the rest are
  resent along with the full site table;
* a ``flow: pause`` frame stops new sends and retries until the
  matching ``resume`` (the server sheds load by asking, not by
  dropping);
* no overall progress within ``timeout`` → :class:`ClientError`.

Together with the server's journaled ack this yields effectively-once
delivery: at-least-once from the retries, exactly-once in the profiles
from the per-shard dedup.

``frame_hook`` exists for the fault-injecting test harness: every
outgoing batch message passes through it and whatever list of messages
it returns is what actually hits the wire — return ``[]`` to drop,
``[m, m]`` to duplicate, buffer-and-release to reorder.

Used by ``repro push`` (CLI) and ``tests/serve/harness.py`` alike, so
the harness exercises the exact code a production producer runs.
"""

from __future__ import annotations

import socket
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.sites import Site
from repro.errors import ReproError
from repro.obs import get_logger
from repro.obs.hist import Histogram
from repro.obs.metrics import METRICS as _METRICS
from repro.obs.trace import TRACER as _TRACER
from repro.serve import protocol as proto
from repro.serve.protocol import FrameDecoder

_LOG = get_logger(__name__)

DEFAULT_WINDOW = 32
DEFAULT_TIMEOUT = 10.0
DEFAULT_RETRY_INTERVAL = 0.25

#: how long one blocking recv waits before the send loop re-checks
#: timers (retry / timeout bookkeeping runs between polls).
_POLL_INTERVAL = 0.05


class ClientError(ReproError):
    """The session made no progress within the client's timeout."""


class ServeClient:
    """A windowed, retrying producer connection.

    Args:
        host / port: the server's ingest listener.
        client_id: stable identity of this producer — sequence numbers,
            dedup state and restart resume points all key off it.
        stream: workload name reported to the server (it becomes the
            merged database's name, so ``/profile`` titles match the
            offline run).
        window: max unacked batches in flight before ``send_batch``
            blocks.
        timeout: max seconds without any progress before giving up.
        retry_interval: seconds without an ack before unacked batches
            are resent.
        frame_hook: fault-injection hook over outgoing batch messages
            (see module docstring); ``None`` sends them as-is.
    """

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str,
        stream: str = "",
        window: int = DEFAULT_WINDOW,
        timeout: float = DEFAULT_TIMEOUT,
        retry_interval: float = DEFAULT_RETRY_INTERVAL,
        frame_hook: Optional[Callable[[dict], Optional[List[dict]]]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.stream = stream
        self.window = window
        self.timeout = timeout
        self.retry_interval = retry_interval
        self.frame_hook = frame_hook
        self.shards = 0
        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder()
        self._welcome: Optional[dict] = None
        self._paused = False
        self._sites: List[Site] = []
        self._site_ids: Dict[Site, int] = {}
        self._defined = 0  # site defs sent on the *current* connection
        self._next_seq = 0
        #: seq -> (sids, values); insertion order == sequence order.
        self._unacked: Dict[int, Tuple[List[int], List[int]]] = {}
        #: the trace id every batch's wire trace context carries; the
        #: per-batch span id is ``<trace_id>.b<seq>`` — deterministic,
        #: so a retried or resent batch reuses its id and the span tree
        #: stays single-rooted per batch across reconnects.
        self.trace_id = f"c-{client_id}"
        #: seq -> monotonic instant of the *first* transmit (e2e clock).
        self._sent_at: Dict[int, float] = {}
        #: always-on client-observed batch e2e (send -> ack, retries
        #: and reconnects included) — the producer-side counterpart of
        #: the server's serve.batch_e2e.
        self.hists: Dict[str, Histogram] = {
            "serve.client_batch_e2e": Histogram(),
        }
        self.counters: Dict[str, int] = {
            "batches": 0,
            "events": 0,
            "acks": 0,
            "retries": 0,
            "reconnects": 0,
            "flow_pauses": 0,
        }

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------

    def connect(self) -> "ServeClient":
        self._establish(time.monotonic() + self.timeout)
        return self

    def _establish(self, deadline: float) -> bool:
        """Open a socket, say hello, resync from the welcome frame.

        One flat loop — connect, hello, welcome, resync — retried until
        the whole handshake lands on a single connection or ``deadline``
        passes, so a server that repeatedly accepts and drops cannot
        grow the stack or stretch the caller's timeout.  Returns True
        if the resume point acknowledged any buffered batch.
        """
        before = len(self._unacked)
        while True:
            self._close_socket()
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except OSError as error:
                if time.monotonic() >= deadline:
                    raise ClientError(
                        f"cannot reach {self.host}:{self.port}: {error}"
                    ) from None
                time.sleep(_POLL_INTERVAL)
                continue
            self._sock.settimeout(_POLL_INTERVAL)
            self._decoder = FrameDecoder()
            self._welcome = None
            self._paused = False
            self._defined = 0
            try:
                self._raw_send(proto.hello(self.client_id, self.stream))
                while self._welcome is None:
                    if time.monotonic() >= deadline:
                        raise ClientError(
                            f"no welcome from {self.host}:{self.port} "
                            f"within the timeout"
                        )
                    self._pump(block=True)
                welcome = self._welcome
                self.shards = welcome.get("shards", 0)
                next_seq = welcome.get("next", 0)
                # Everything below the resume point is applied on every
                # shard — an implicit ack, observed like an explicit one.
                for seq in [s for s in self._unacked if s < next_seq]:
                    del self._unacked[seq]
                    self.counters["acks"] += 1
                    self._observe_ack(seq)
                self._next_seq = max(self._next_seq, next_seq)
                self._send_pending_sites()
                for seq in sorted(self._unacked):
                    self._transmit(seq)
            except ConnectionError:
                if time.monotonic() >= deadline:
                    raise ClientError(
                        f"connection to {self.host}:{self.port} kept "
                        f"dropping during the handshake"
                    ) from None
                continue
            return len(self._unacked) < before

    def _reconnect(self, deadline: float) -> bool:
        self.counters["reconnects"] += 1
        _LOG.info("client %s reconnecting to %s:%d", self.client_id, self.host, self.port)
        return self._establish(deadline)

    def _close_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None

    def close(self, flush: bool = True) -> None:
        """Drain the unacked window (unless told not to) and hang up."""
        if flush and self._sock is not None:
            self.flush()
        if self._sock is not None:
            try:
                self._sock.sendall(proto.encode_frame(proto.bye()))
            except OSError:
                pass
        self._close_socket()

    def abort(self) -> None:
        """Drop the connection mid-stream without flushing or goodbye.

        The disconnect fault: whatever frame was in flight arrives
        truncated and must never be partially applied.
        """
        self._close_socket()

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close(flush=exc_info[0] is None)

    # ------------------------------------------------------------------
    # site table
    # ------------------------------------------------------------------

    def site_id(self, site: Site) -> int:
        """Intern ``site``; its definition ships before the next batch."""
        sid = self._site_ids.get(site)
        if sid is None:
            sid = self._site_ids[site] = len(self._sites)
            self._sites.append(site)
        return sid

    def define_sites(self, sites: Iterable[Site]) -> List[int]:
        return [self.site_id(site) for site in sites]

    def _send_pending_sites(self) -> None:
        if self._defined < len(self._sites):
            payloads = [
                proto.site_to_payload(site) for site in self._sites[self._defined:]
            ]
            self._raw_send(proto.sites_frame(self._defined, payloads))
            self._defined = len(self._sites)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send_batch(self, sids: List[int], values: List[int]) -> int:
        """Ship one ordered batch; blocks while the window is full.

        Returns the batch's sequence number.  The batch is buffered
        until acked, so a return does *not* mean durable — call
        :meth:`flush` for that.
        """
        if self._sock is None:
            raise ClientError("not connected")
        self._await(
            lambda: len(self._unacked) < self.window and not self._paused,
            "window space",
        )
        seq = self._next_seq
        self._next_seq += 1
        self._unacked[seq] = (list(sids), list(values))
        self._sent_at[seq] = time.monotonic()
        self.counters["batches"] += 1
        self.counters["events"] += len(sids)
        self._send_pending_sites()
        self._transmit(seq)
        self._pump()  # opportunistic ack drain, keeps the window moving
        return seq

    def flush(self) -> None:
        """Block until every sent batch is acknowledged."""
        self._await(lambda: not self._unacked, "outstanding acks")

    def _transmit(self, seq: int) -> None:
        sids, values = self._unacked[seq]
        message = proto.batch(
            seq, sids, values, tc=[self.trace_id, f"{self.trace_id}.b{seq}"]
        )
        if self.frame_hook is not None:
            frames = self.frame_hook(message)
            if frames is None:
                frames = [message]
        else:
            frames = [message]
        for frame in frames:
            self._raw_send(frame)

    def _raw_send(self, message: dict) -> None:
        assert self._sock is not None
        try:
            self._sock.sendall(proto.encode_frame(message))
        except OSError as error:
            raise ConnectionError(str(error)) from None

    # ------------------------------------------------------------------
    # receiving / progress loop
    # ------------------------------------------------------------------

    def _await(self, condition: Callable[[], bool], what: str) -> None:
        """Pump the socket until ``condition`` holds.

        Resends unacked batches every ``retry_interval`` (unless flow
        is paused — retrying into a saturated server only adds load),
        reconnects on connection loss, and raises :class:`ClientError`
        after ``timeout`` seconds without progress; progress (any ack
        or flow transition) extends the deadline.
        """
        deadline = time.monotonic() + self.timeout
        last_retry = time.monotonic()
        while not condition():
            try:
                progressed = self._pump(block=True)
            except ConnectionError:
                # Reconnect within the *original* deadline; progress is
                # measured by acks from the resume point, not by the
                # server merely accepting the connection again.
                progressed = self._reconnect(deadline)
            now = time.monotonic()
            if progressed:
                deadline = now + self.timeout
                last_retry = now
                continue
            if now >= deadline:
                raise ClientError(
                    f"no progress waiting for {what} within {self.timeout:.1f}s "
                    f"({len(self._unacked)} unacked)"
                )
            if (
                self._unacked
                and not self._paused
                and now - last_retry >= self.retry_interval
            ):
                self.counters["retries"] += 1
                for seq in sorted(self._unacked):
                    self._transmit(seq)
                last_retry = now

    def _pump(self, block: bool = False) -> bool:
        """Drain whatever the server sent; returns True on progress."""
        assert self._sock is not None
        if block:
            try:
                data = self._sock.recv(1 << 16)
            except socket.timeout:
                return False
            except OSError as error:
                raise ConnectionError(str(error)) from None
            if not data:
                raise ConnectionError("server closed the connection")
            return self._feed(data)
        progressed = False
        while True:
            self._sock.settimeout(0.0)
            try:
                data = self._sock.recv(1 << 16)
            except (BlockingIOError, socket.timeout):
                return progressed
            except OSError as error:
                raise ConnectionError(str(error)) from None
            finally:
                self._sock.settimeout(_POLL_INTERVAL)
            if not data:
                raise ConnectionError("server closed the connection")
            progressed = self._feed(data) or progressed

    def _feed(self, data: bytes) -> bool:
        progressed = False
        for message in self._decoder.feed(data):
            kind = message.get("t")
            if kind == "ack":
                seq = message.get("seq")
                if self._unacked.pop(seq, None) is not None:
                    self.counters["acks"] += 1
                    self._observe_ack(seq)
                    progressed = True
            elif kind == "flow":
                paused = message.get("state") == "pause"
                if paused and not self._paused:
                    self.counters["flow_pauses"] += 1
                if paused != self._paused:
                    progressed = True
                self._paused = paused
            elif kind == "welcome":
                self._welcome = message
                progressed = True
            elif kind == "error":
                raise ClientError(f"server error: {message.get('message')}")
        return progressed

    def _observe_ack(self, seq: int) -> None:
        """Fold one acked batch into the e2e telemetry.

        Records the client-observed latency histogram (always on) and,
        when the process tracer is enabled, the batch's root span —
        with the *same* span id the wire trace context carried, so the
        server's serve.enqueue/journal/fold/ack children parent under
        it in the combined tree.
        """
        sent = self._sent_at.pop(seq, None)
        if sent is None:
            return
        elapsed = time.monotonic() - sent
        self.hists["serve.client_batch_e2e"].observe(elapsed)
        _METRICS.observe_hist("serve.client_batch_e2e", elapsed)
        if _TRACER.enabled:
            _TRACER.record_span(
                "serve.batch",
                span_id=f"{self.trace_id}.b{seq}",
                start_monotonic=sent,
                duration_s=elapsed,
                attrs={"client": self.client_id, "seq": seq},
            )

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    @property
    def unacked(self) -> int:
        return len(self._unacked)

    @property
    def paused(self) -> bool:
        return self._paused

    def push_events(
        self,
        events: Iterable[Tuple[Site, int]],
        batch_size: int = 1024,
    ) -> int:
        """Stream (site, value) events as maximal batches; returns count."""
        sids: List[int] = []
        values: List[int] = []
        total = 0
        for site, value in events:
            sids.append(self.site_id(site))
            values.append(value)
            if len(sids) >= batch_size:
                self.send_batch(sids, values)
                total += len(sids)
                sids, values = [], []
        if sids:
            self.send_batch(sids, values)
            total += len(sids)
        return total

    def push_trace(self, trace, targets=None, batch_size: int = 1024) -> int:
        """Replay a stored :class:`EventTrace` into the service.

        ``targets`` defaults to every profiled family, i.e. the same
        stream ``replay_profile`` folds offline — which is what the
        byte-identity acceptance test compares against.
        """
        from repro.core.tracestore import TARGET_KINDS

        if targets is None:
            targets = list(TARGET_KINDS)
        return self.push_events(trace.events(targets), batch_size=batch_size)
