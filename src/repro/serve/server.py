"""The asyncio profiling service: ingest, shards, queries.

Data path
---------

Client connections speak the length-prefixed frame protocol
(:mod:`repro.serve.protocol`).  The router keeps one session per
client id with the client's interned site table, the next expected
batch sequence number, a bounded reorder buffer for batches that
arrive ahead of a gap, and the set of batches routed but not yet
acknowledged.  Every batch fans out to **every** shard — the events
whose sites a shard owns, or an empty sub-batch — so each shard sees a
gapless per-client sequence (see :mod:`repro.serve.shard` for why that
invariant carries the whole consistency story).  A batch is
acknowledged when all shards report it done (journaled + folded, or
recognized as an already-applied duplicate).

Backpressure is the shard queue: it is bounded, the router ``await``s
the put, and a saturated queue therefore stops the router reading from
client sockets (TCP backpressure) — while a high-watermark crossing
additionally broadcasts an explicit ``flow: pause`` frame so
well-behaved producers stop *before* the kernel buffers fill.

Shard runtimes
--------------

* ``inline`` (default) — each shard is an asyncio task in the server
  process draining an ``asyncio.Queue``.  Deterministic, cheap, fully
  fault-injectable (the test harness's mode); profiling folds run on
  the loop, which is fine because folds are batched C-level passes.
* ``process`` — each shard is a spawned worker process draining a
  bounded ``multiprocessing.Queue``, acks and query responses flowing
  back over a result queue serviced by one reader thread per shard.
  This is the multi-core deployment shape; queries ship the shard's
  pickled database home for merging.

Queries
-------

A second listener answers plain HTTP/1.1 GETs from merged snapshots:
``/profile`` (the exact ``repro profile`` table, or the database JSON),
``/inspect`` (TNV health overview), ``/stats`` (service counters,
queue depths, per-shard state and health, latency histograms, the
slow-op ring), ``/metrics`` (live Prometheus text scrape),
``/timeseries`` (the global collector's samples when enabled),
``/healthz`` and ``/checkpoint``.  Site spaces are disjoint across
shards, so the merge is a pure union and per-site numbers are exact.

Observability
-------------

Every client batch carries a wire trace context (``tc``); the server
emits ``serve.enqueue`` and ``serve.ack`` child spans on its own
tracer, while the shard runtimes time journal and fold per applied
sub-batch and ship those observations *with their done-reports* —
``_telemetry_for_ops`` shapes them into pre-parented span records and
latency samples the server folds into its always-on histograms.
Folding on the server is deliberate: a shard's own op log dies with a
SIGKILL, the done-report does not, so ``serve.journal_sync`` /
``serve.shard_fold`` stay cumulative across shard generations and the
span tree stays a single tree across both runtimes.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import pickle
import tempfile
import threading
import time
import urllib.parse
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.core.profile import ProfileDatabase, TNVConfig
from repro.core.sites import Site, SiteKind
from repro.errors import ReproError
from repro.obs import get_logger
from repro.obs.hist import Histogram, render_prometheus_hist
from repro.obs.metrics import METRICS as _METRICS
from repro.obs.timeseries import prom_name
from repro.obs.trace import TRACER as _TRACER
from repro.serve import protocol as proto
from repro.serve.protocol import ProtocolError
from repro.serve.shard import ShardCore, resume_seq

_LOG = get_logger(__name__)

DEFAULT_QUEUE_SIZE = 64
DEFAULT_CHECKPOINT_INTERVAL = 200
DEFAULT_REORDER_WINDOW = 64
DEFAULT_SLOW_OP_THRESHOLD = 1.0

#: slow-op ring size exposed in ``/stats`` (the log is for "what just
#: went slow", not history — the WARN log is the durable record).
SLOW_OP_RING = 32

#: queue-depth fractions that trigger client-visible flow control.
FLOW_HIGH_FRACTION = 0.75
FLOW_LOW_FRACTION = 0.25


class ServeError(ReproError):
    """The service could not start or answer."""


class _Pending:
    """One routed batch awaiting done-reports from every shard.

    ``tc`` is the batch's wire trace context and ``t0`` the monotonic
    arrival instant — both survive retries (a resent batch keeps its
    first arrival time, so ``serve.batch_e2e`` measures the client-
    visible wait, shard crashes included).
    """

    __slots__ = ("remaining", "writer", "events", "tc", "t0")

    def __init__(
        self,
        shards: int,
        writer,
        events: int,
        tc: Optional[Tuple[str, str]] = None,
        t0: float = 0.0,
    ) -> None:
        self.remaining: Set[int] = set(range(shards))
        self.writer = writer
        self.events = events
        self.tc = tc
        self.t0 = t0


class _Session:
    """Per-client routing state (survives reconnects)."""

    __slots__ = (
        "id",
        "stream",
        "sites",
        "payloads",
        "shard_of",
        "expected_seq",
        "reorder",
        "pending",
    )

    def __init__(self, client_id: str, stream: str) -> None:
        self.id = client_id
        self.stream = stream
        self.sites: List[Site] = []
        self.payloads: List[list] = []
        self.shard_of: List[int] = []
        self.expected_seq = 0
        #: seq -> (sids, values, writer) parked until the gap closes.
        self.reorder: Dict[int, tuple] = {}
        #: seq -> _Pending, routed but not fully acknowledged.
        self.pending: Dict[int, _Pending] = {}

    def add_sites(self, base: int, payloads: List[list], shards: int) -> None:
        """Extend (or idempotently verify) the client's site table."""
        if base != len(self.sites) and base + len(payloads) <= len(self.sites):
            # Full replay from a reconnecting client: verify the prefix.
            for offset, payload in enumerate(payloads):
                if self.payloads[base + offset] != payload:
                    raise ProtocolError(
                        f"site id {base + offset} redefined inconsistently"
                    )
            return
        if base > len(self.sites):
            raise ProtocolError(
                f"site table gap: base {base} with {len(self.sites)} defined"
            )
        for offset, payload in enumerate(payloads):
            sid = base + offset
            if sid < len(self.sites):
                if self.payloads[sid] != payload:
                    raise ProtocolError(f"site id {sid} redefined inconsistently")
                continue
            site = proto.site_from_payload(payload)
            self.sites.append(site)
            self.payloads.append(list(payload))
            self.shard_of.append(proto.shard_for_site(site, shards))


# ----------------------------------------------------------------------
# shard runtimes
# ----------------------------------------------------------------------


def _telemetry_for_ops(
    shard_index: int, client: str, ops: List[tuple], epoch: float
) -> Dict[int, dict]:
    """Shape a core's drained op log into per-seq done-report telemetry.

    Shared by both runtimes so the wire shape is identical: ``{seq:
    {"journal_s", "fold_s", "events", "spans"}}``.  The spans are
    complete records pre-parented under the batch's client span id
    (``tc[1]``) with deterministic ids — ``<tc>.s<shard>.journal`` /
    ``.fold`` — so :meth:`Tracer.adopt` threads them into one tree no
    matter which process or shard generation produced them, and a
    duplicate apply can never mint a second span (dedup means a
    (client, seq) applies at most once per shard).  ``epoch`` is the
    producing process's span clock zero: the server's tracer epoch
    inline, the worker's start instant in the process runtime (worker
    spans are on the worker's own clock, as with the parallel runner).
    """
    telemetry: Dict[int, dict] = {}
    for seq, tc, start_m, journal_s, fold_s, events in ops:
        spans: List[dict] = []
        if tc is not None:
            parent = tc[1]
            base = f"{parent}.s{shard_index}"
            attrs = {"shard": shard_index, "client": client, "seq": seq}
            spans.append({
                "name": "serve.journal",
                "span_id": f"{base}.journal",
                "parent_id": parent,
                "t_start_s": round(start_m - epoch, 6),
                "duration_s": round(journal_s, 6),
                "attrs": dict(attrs),
            })
            spans.append({
                "name": "serve.fold",
                "span_id": f"{base}.fold",
                "parent_id": parent,
                "t_start_s": round(start_m + journal_s - epoch, 6),
                "duration_s": round(fold_s, 6),
                "attrs": {**attrs, "events": events},
            })
        telemetry[seq] = {
            "journal_s": journal_s,
            "fold_s": fold_s,
            "events": events,
            "spans": spans,
        }
    return telemetry


class InlineShardRunner:
    """One shard as an asyncio task draining a bounded queue.

    ``kill`` models SIGKILL: the worker stops and everything not yet
    journaled — queued sub-batches and the in-memory fold state since
    the last checkpoint — is discarded.  ``restart`` rebuilds the core
    from snapshot + journal.  ``delay`` injects per-batch latency (the
    slow-consumer fault).
    """

    runtime = "inline"

    def __init__(self, server: "ServeServer", index: int) -> None:
        self.server = server
        self.index = index
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=server.queue_size)
        self.core: Optional[ShardCore] = self._make_core(restore=server.restore)
        self.delay = 0.0
        self.alive = False
        self._task: Optional[asyncio.Task] = None

    def _make_core(self, restore: bool) -> ShardCore:
        return ShardCore(
            self.index,
            self.server.snapshot_dir,
            config=self.server.config,
            exact=self.server.exact,
            restore=restore,
        )

    async def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self._run())
        self.alive = True

    async def _run(self) -> None:
        while True:
            client, seq, payloads, sidx, values, tc = await self.queue.get()
            if self.delay:
                await asyncio.sleep(self.delay)
            core = self.core
            if core is not None:
                done: List[int] = []
                telemetry: Dict[int, dict] = {}
                try:
                    done = core.submit(client, seq, payloads, sidx, values, tc=tc)
                    telemetry = _telemetry_for_ops(
                        self.index, client, core.take_ops(), _TRACER.epoch
                    )
                    core.maybe_checkpoint(self.server.checkpoint_interval)
                except Exception:  # noqa: BLE001 - a poisoned batch must not wedge the shard
                    _LOG.exception(
                        "shard %d failed applying batch %s/%d; dropped un-acked",
                        self.index,
                        client,
                        seq,
                    )
                    self.server._inc("serve.poisoned_batches")
                for done_seq in done:
                    self.server._on_done(
                        self.index, client, done_seq, telemetry.get(done_seq)
                    )
            self.queue.task_done()
            self.server._update_depth()

    async def submit(self, item: tuple) -> None:
        await self.queue.put(item)
        self.server._update_depth()

    def depth(self) -> int:
        return self.queue.qsize()

    async def query(self) -> Tuple[Optional[ProfileDatabase], dict]:
        if self.core is None:
            return None, {"index": self.index, "dead": True}
        return self.core.db, self.core.stats()

    async def applied_high(self, client: str) -> int:
        if self.core is None:
            return -1
        return self.core.applied.get(client, -1)

    async def checkpoint(self) -> None:
        if self.core is not None:
            self.core.checkpoint()

    async def kill(self) -> int:
        """Abrupt death: drop queued work and all un-journaled state."""
        if self._task is not None:
            self._task.cancel()
            self._task = None
        dropped = 0
        while True:
            try:
                self.queue.get_nowait()
                dropped += 1
            except asyncio.QueueEmpty:
                break
        if self.core is not None:
            self.core.close()
            self.core = None
        self.alive = False
        self.server._update_depth()
        return dropped

    async def restart(self) -> None:
        """Rolling restart: rebuild from snapshot + journal tail."""
        if self._task is not None:
            self._task.cancel()
        self.core = self._make_core(restore=True)
        self._task = asyncio.get_running_loop().create_task(self._run())
        self.alive = True

    async def stop(self, checkpoint: bool = True) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None
        if self.core is not None:
            if checkpoint:
                self.core.checkpoint()
            self.core.close()
        self.alive = False


def _shard_process_main(
    index: int,
    directory: str,
    config_tuple: tuple,
    exact: bool,
    restore: bool,
    checkpoint_interval: Optional[int],
    in_queue,
    out_queue,
) -> None:
    """Worker-process entry point: drain sub-batches, report done seqs."""
    core = ShardCore(
        index,
        directory,
        config=TNVConfig(*config_tuple),
        exact=exact,
        restore=restore,
    )
    # The worker's span clock zero: its spans ship home as plain records
    # on this clock (same contract as the parallel runner's workers).
    epoch = time.monotonic()
    while True:
        message = in_queue.get()
        kind = message[0]
        if kind == "batch":
            _, client, seq, payloads, sidx, values, tc = message
            tc = tuple(tc) if tc is not None else None
            done = []
            telemetry: Dict[int, dict] = {}
            try:
                done = core.submit(client, seq, payloads, sidx, values, tc=tc)
                telemetry = _telemetry_for_ops(index, client, core.take_ops(), epoch)
                core.maybe_checkpoint(checkpoint_interval)
            except Exception:  # noqa: BLE001 - a poisoned batch must not kill the worker
                _LOG.exception(
                    "shard %d worker failed applying batch %s/%d; dropped un-acked",
                    index,
                    client,
                    seq,
                )
            for done_seq in done:
                out_queue.put(("done", index, client, done_seq, telemetry.get(done_seq)))
        elif kind == "query":
            # Pickle the database *here*, in the worker's only mutating
            # thread: handing the live object to the queue's feeder
            # thread races its pickling against ongoing folds
            # ("dictionary changed size during iteration"), and the
            # lost response would wedge the query future forever.
            out_queue.put(("query", message[1], pickle.dumps(core.db), core.stats()))
        elif kind == "applied":
            out_queue.put(("applied", message[1], core.applied.get(message[2], -1)))
        elif kind == "checkpoint":
            core.checkpoint()
            out_queue.put(("checkpointed", message[1]))
        elif kind == "stop":
            core.checkpoint()
            core.close()
            out_queue.put(("stopped", index))
            return


class ProcessShardRunner:
    """One shard as a spawned worker process behind bounded queues.

    The multi-core deployment shape.  Acks, query responses and
    checkpoint confirmations flow back over an out-queue; one daemon
    reader thread per worker generation relays them onto the event
    loop.  ``spawn`` (not ``fork``) keeps the child free of the
    parent's loop and threads.

    Kill discipline: SIGKILLing a child that holds a shared queue lock
    poisons the lock for everyone else, so a killed generation's queues
    are *abandoned*, never reused — each spawn gets fresh queues and a
    fresh reader, and everything is generation-tagged so stragglers
    from a dead worker are ignored.  For the same reason the router
    never blocks a thread on ``Queue.put``: a full queue is retried
    with short async sleeps, re-reading the current queue so a restart
    redirects waiting batches to the new worker.
    """

    runtime = "process"

    def __init__(self, server: "ServeServer", index: int) -> None:
        import multiprocessing

        self.server = server
        self.index = index
        self._ctx = multiprocessing.get_context("spawn")
        self.in_queue = None
        self.out_queue = None
        self._gen = 0
        self._process = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._responses: Dict[int, asyncio.Future] = {}
        self._request_ids = itertools.count()
        self.alive = False
        self.delay = 0.0  # unsupported in process runtime (documented)

    def _spawn(self, restore: bool) -> None:
        config = self.server.config
        self._gen += 1
        self.in_queue = self._ctx.Queue(maxsize=self.server.queue_size)
        self.out_queue = self._ctx.Queue()
        self._process = self._ctx.Process(
            target=_shard_process_main,
            args=(
                self.index,
                self.server.snapshot_dir,
                (config.capacity, config.steady, config.clear_interval),
                self.server.exact,
                restore,
                self.server.checkpoint_interval,
                self.in_queue,
                self.out_queue,
            ),
            daemon=True,
        )
        self._process.start()
        threading.Thread(
            target=self._read_loop,
            args=(self._gen, self.out_queue),
            name=f"shard-{self.index}-reader-g{self._gen}",
            daemon=True,
        ).start()

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._spawn(restore=self.server.restore)
        self.alive = True

    def _read_loop(self, gen: int, out_queue) -> None:
        while gen == self._gen:
            try:
                message = out_queue.get()
            except (OSError, EOFError, ValueError):
                return  # queue torn down under us: this generation is over
            if message is None or gen != self._gen:
                return
            loop = self._loop
            if loop is None or loop.is_closed():
                return
            loop.call_soon_threadsafe(self._dispatch, gen, message)

    def _dispatch(self, gen: int, message: tuple) -> None:
        kind = message[0]
        if kind == "done":
            # Done reports are durable facts (journaled before reported)
            # and stay valid even if their worker died since — and so is
            # the telemetry riding along: folding it server-side is what
            # lets histograms survive (and merge across) shard
            # generations the worker itself did not.
            _, index, client, seq, telemetry = message
            self.server._on_done(index, client, seq, telemetry)
            self.server._update_depth()
        elif gen != self._gen:
            return  # stale response from a killed generation
        elif kind in ("query", "applied", "checkpointed"):
            future = self._responses.pop(message[1], None)
            if future is not None and not future.done():
                future.set_result(message[2:])
        elif kind == "stopped":
            self.alive = False

    async def _request(self, *message) -> tuple:
        request_id = next(self._request_ids)
        future = asyncio.get_running_loop().create_future()
        self._responses[request_id] = future
        await self._put((message[0], request_id, *message[1:]))
        return await future

    async def _put(self, item: tuple) -> None:
        import queue as _queue

        while True:
            target = self.in_queue
            if target is None:
                return  # runner torn down: the client's retry redelivers
            try:
                target.put_nowait(item)
                return
            except _queue.Full:
                if not self.alive and target is self.in_queue:
                    # Dead worker behind a saturated queue: drop — the
                    # batch stays unacked, so the client resends it
                    # once the shard is back.
                    return
                await asyncio.sleep(0.005)
                # Loop re-reads self.in_queue: a restart swaps in the
                # new worker's queue and we deliver there instead.

    async def submit(self, item: tuple) -> None:
        await self._put(("batch", *item))
        self.server._update_depth()

    def depth(self) -> int:
        try:
            return self.in_queue.qsize() if self.in_queue is not None else 0
        except (NotImplementedError, OSError):  # pragma: no cover - macOS
            return 0

    async def query(self) -> Tuple[Optional[ProfileDatabase], dict]:
        if not self.alive:
            return None, {"index": self.index, "dead": True}
        db_bytes, stats = await self._request("query")
        return pickle.loads(db_bytes), stats

    async def applied_high(self, client: str) -> int:
        if not self.alive:
            return -1
        (high,) = await self._request("applied", client)
        return high

    async def checkpoint(self) -> None:
        if self.alive:
            await self._request("checkpoint")

    def _abandon_queues(self) -> int:
        """Detach from a dead generation's queues; returns depth lost."""
        dropped = self.depth()
        self._gen += 1  # invalidates the reader thread and stale messages
        for old in (self.in_queue, self.out_queue):
            if old is not None:
                old.close()
                old.cancel_join_thread()
        self.in_queue = None
        self.out_queue = None
        return dropped

    async def kill(self) -> int:
        process, self._process = self._process, None
        if process is not None:
            process.kill()
            await asyncio.get_running_loop().run_in_executor(None, process.join)
        dropped = self._abandon_queues()
        for future in self._responses.values():
            if not future.done():
                future.cancel()
        self._responses.clear()
        self.alive = False
        self.server._update_depth()
        return dropped

    async def restart(self) -> None:
        if self._process is not None:
            await self.kill()
        self._spawn(restore=True)
        self.alive = True

    async def stop(self, checkpoint: bool = True) -> None:
        import queue as _queue

        process, self._process = self._process, None
        if process is not None and process.is_alive():
            graceful = False
            if checkpoint and self.in_queue is not None:
                try:
                    self.in_queue.put_nowait(("stop",))
                    graceful = True
                except _queue.Full:
                    pass
            if not graceful:
                process.kill()
            await asyncio.get_running_loop().run_in_executor(None, process.join)
        self._abandon_queues()
        self.alive = False


# ----------------------------------------------------------------------
# the server
# ----------------------------------------------------------------------


class ServeServer:
    """The profiling-as-a-service daemon.

    Args:
        shards: number of shard workers the site space hashes across.
        host / ingest_port / http_port: listener addresses (port 0 =
            ephemeral; the bound ports are exposed after ``start``).
        queue_size: bound of each shard's sub-batch queue — the
            backpressure knob.
        checkpoint_interval: batches a shard applies between automatic
            checkpoints (``None`` disables; ``/checkpoint`` and
            graceful stop still checkpoint).
        snapshot_dir: where snapshots + journals live (a temporary
            directory when omitted).
        restore: load shard snapshots/journals on startup (rolling
            restart); sessions resume at ``min`` applied + 1.
        config / exact: profile knobs, as in :class:`ProfileDatabase`.
        runtime: ``"inline"`` or ``"process"`` (see module docstring).
        timeseries_interval: if set, enable the global time-series
            collector for this server's lifetime (``/timeseries``).
        slow_op_threshold: seconds above which a fold or HTTP query is
            logged as a structured WARN, counted in ``serve.slow_ops``
            and kept in the ``/stats`` slow-op ring.

    The serve metrics plane — latency histograms, per-shard depth
    gauges, the slow-op ring — is **always on** (like the counter
    dicts) and scraped live via ``/metrics`` in Prometheus text
    format; enabling the global obs registry additionally mirrors
    everything there.  See ``docs/serving.md``.
    """

    def __init__(
        self,
        shards: int = 2,
        host: str = "127.0.0.1",
        ingest_port: int = 0,
        http_port: int = 0,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        checkpoint_interval: Optional[int] = DEFAULT_CHECKPOINT_INTERVAL,
        snapshot_dir: Optional[str] = None,
        restore: bool = False,
        config: Optional[TNVConfig] = None,
        exact: bool = True,
        runtime: str = "inline",
        reorder_window: int = DEFAULT_REORDER_WINDOW,
        timeseries_interval: Optional[int] = None,
        slow_op_threshold: float = DEFAULT_SLOW_OP_THRESHOLD,
    ) -> None:
        if shards < 1:
            raise ServeError(f"need at least one shard, got {shards}")
        if runtime not in ("inline", "process"):
            raise ServeError(f"unknown shard runtime {runtime!r}")
        self.nshards = shards
        self.host = host
        self._ingest_port = ingest_port
        self._http_port = http_port
        self.queue_size = queue_size
        self.checkpoint_interval = checkpoint_interval
        self.restore = restore
        self.config = config or TNVConfig()
        self.exact = exact
        self.runtime = runtime
        self.reorder_window = reorder_window
        self.timeseries_interval = timeseries_interval
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if snapshot_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-serve-")
            snapshot_dir = self._tmpdir.name
        self.snapshot_dir = snapshot_dir
        self.runners: List = []
        self.sessions: Dict[str, _Session] = {}
        self._conns: Set[asyncio.StreamWriter] = set()
        self._ingest_server: Optional[asyncio.base_events.Server] = None
        self._http_server: Optional[asyncio.base_events.Server] = None
        self._paused = False
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {"serve.shards": float(shards)}
        self.slow_op_threshold = slow_op_threshold
        #: recent slow ops, newest last; rendered in /stats.
        self.slow_ops: deque = deque(maxlen=SLOW_OP_RING)
        #: always-on latency/size distributions, eagerly created so a
        #: /metrics scrape shows every family (zeroed) from the first
        #: request.  Shard-side observations fold in via done-report
        #: telemetry, which is what keeps them cumulative across shard
        #: kills and generation swaps.
        self.hists: Dict[str, Histogram] = {
            "serve.batch_e2e": Histogram(),
            "serve.journal_sync": Histogram(),
            "serve.shard_fold": Histogram(),
            "serve.http_request": Histogram(),
            "serve.batch_events": Histogram(kind="size"),
        }
        self._flow_high = max(1, int(queue_size * FLOW_HIGH_FRACTION))
        self._flow_low = max(0, int(queue_size * FLOW_LOW_FRACTION))

    # ------------------------------------------------------------------
    # metrics plumbing (always-on internal dicts, mirrored to the
    # global registry when the obs layer is enabled)
    # ------------------------------------------------------------------

    def _inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n
        _METRICS.inc(name, n)

    def _gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value
        _METRICS.gauge(name, value)

    def _observe(self, name: str, value: float, kind: str = "latency") -> None:
        hist = self.hists.get(name)
        if hist is None:
            hist = self.hists[name] = Histogram(kind=kind)
        hist.observe(value)
        _METRICS.observe_hist(name, value, kind=kind)

    def _slow_op(self, op: str, seconds: float, detail: str) -> None:
        """Record one operation's duration against the slow-op budget."""
        if seconds < self.slow_op_threshold:
            return
        self._inc("serve.slow_ops")
        self.slow_ops.append({"op": op, "seconds": round(seconds, 6), "detail": detail})
        _LOG.warning(
            "slow op: %s took %.3fs (threshold %.3fs) %s",
            op, seconds, self.slow_op_threshold, detail,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def ingest_port(self) -> int:
        return self._ingest_port

    @property
    def http_port(self) -> int:
        return self._http_port

    def _make_runner(self, index: int):
        if self.runtime == "process":
            return ProcessShardRunner(self, index)
        return InlineShardRunner(self, index)

    async def start(self) -> None:
        self.runners = [self._make_runner(index) for index in range(self.nshards)]
        for runner in self.runners:
            await runner.start()
        self._ingest_server = await asyncio.start_server(
            self._handle_ingest, self.host, self._ingest_port
        )
        self._http_server = await asyncio.start_server(
            self._handle_http, self.host, self._http_port
        )
        self._ingest_port = self._ingest_server.sockets[0].getsockname()[1]
        self._http_port = self._http_server.sockets[0].getsockname()[1]
        if self.timeseries_interval is not None:
            from repro.obs.timeseries import TIMESERIES

            TIMESERIES.enable(interval=self.timeseries_interval)
        _LOG.info(
            "serving %d shard(s) [%s]: ingest on %s:%d, http on %s:%d",
            self.nshards,
            self.runtime,
            self.host,
            self._ingest_port,
            self.host,
            self._http_port,
        )

    async def stop(self, checkpoint: bool = True) -> None:
        for server in (self._ingest_server, self._http_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._ingest_server = self._http_server = None
        for writer in list(self._conns):
            writer.close()
        self._conns.clear()
        for runner in self.runners:
            await runner.stop(checkpoint=checkpoint)
        if self.timeseries_interval is not None:
            from repro.obs.timeseries import TIMESERIES

            TIMESERIES.disable()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    # ------------------------------------------------------------------
    # ingest path
    # ------------------------------------------------------------------

    async def _handle_ingest(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conns.add(writer)
        self._inc("serve.connections")
        session: Optional[_Session] = None
        try:
            while True:
                message = await proto.read_frame(reader)
                if message is None:
                    break
                kind = message["t"]
                if kind == "hello":
                    session = await self._hello(message, writer)
                elif session is None:
                    self._send(writer, proto.error("hello must come first"))
                    break
                elif kind == "sites":
                    session.add_sites(
                        message.get("base", 0),
                        message.get("sites", []),
                        self.nshards,
                    )
                elif kind == "batch":
                    seq, sids, values, tc = proto.check_batch(message)
                    await self._handle_batch(session, writer, seq, sids, values, tc)
                elif kind == "bye":
                    break
                else:
                    self._send(writer, proto.error(f"unknown message type {kind!r}"))
                    break
        except ProtocolError as error:
            self._send(writer, proto.error(str(error)))
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._conns.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _hello(self, message: dict, writer) -> _Session:
        client = message.get("client")
        if not isinstance(client, str) or not client:
            raise ProtocolError("hello needs a non-empty client id")
        session = self.sessions.get(client)
        if session is None:
            session = _Session(client, message.get("stream", ""))
            # A server restored from snapshots has applied state for
            # clients it has never talked to in this process; the
            # resume point is min(applied) + 1 across shards.
            highs = [await runner.applied_high(client) for runner in self.runners]
            session.expected_seq = resume_seq(highs)
            self.sessions[client] = session
            self._gauge("serve.sessions", float(len(self.sessions)))
        elif message.get("stream"):
            session.stream = message["stream"]
        # The welcome resume point promises "applied on every shard", and
        # the client deletes everything below it from its unacked buffer.
        # A batch routed but still awaiting shard done-reports (e.g. one a
        # shard kill dropped before journaling) is *not* applied everywhere,
        # so the resume point must stay at or below the lowest such seq —
        # the client resends it and the shards that did apply it dedup.
        next_seq = session.expected_seq
        if session.pending:
            next_seq = min(next_seq, min(session.pending))
        self._send(writer, proto.welcome(self.nshards, next_seq))
        if self._paused:
            self._send(writer, proto.flow("pause"))
        return session

    async def _handle_batch(
        self,
        session: _Session,
        writer,
        seq: int,
        sids: List[int],
        values: List[int],
        tc: Optional[Tuple[str, str]],
    ) -> None:
        self._inc("serve.batches")
        arrival = time.monotonic()
        if seq == session.expected_seq:
            await self._route(session, writer, seq, sids, values, fresh=True,
                              tc=tc, t0=arrival)
            session.expected_seq += 1
            while session.expected_seq in session.reorder:
                parked_sids, parked_values, parked_writer, parked_tc, parked_t0 = (
                    session.reorder.pop(session.expected_seq)
                )
                await self._route(
                    session,
                    parked_writer,
                    session.expected_seq,
                    parked_sids,
                    parked_values,
                    fresh=True,
                    tc=parked_tc,
                    t0=parked_t0,
                )
                session.expected_seq += 1
        elif seq > session.expected_seq:
            too_far = seq - session.expected_seq > self.reorder_window
            if too_far or len(session.reorder) >= self.reorder_window:
                # Dropped un-acked: the client's retry loop redelivers
                # once the gap closes.  Bounding here is what keeps a
                # wildly misordered producer from ballooning memory.
                self._inc("serve.reorder_overflow")
            else:
                session.reorder[seq] = (sids, values, writer, tc, arrival)
                self._inc("serve.reordered_batches")
        elif seq in session.pending:
            # Routed but not fully acknowledged — a retry racing a slow
            # or crashed shard.  Re-fan-out: shards that applied it
            # dedup, the one that lost it applies it.
            self._inc("serve.retried_batches")
            await self._route(session, writer, seq, sids, values, fresh=False,
                              tc=tc, t0=arrival)
        else:
            # Fully applied long ago: just re-ack.
            self._inc("serve.duplicate_batches")
            self._send(writer, proto.ack(seq))

    async def _route(
        self,
        session: _Session,
        writer,
        seq: int,
        sids: List[int],
        values: List[int],
        fresh: bool,
        tc: Optional[Tuple[str, str]] = None,
        t0: float = 0.0,
    ) -> None:
        buckets: List[Optional[tuple]] = [None] * self.nshards
        shard_of = session.shard_of
        payloads = session.payloads
        for sid, value in zip(sids, values):
            if not 0 <= sid < len(shard_of):
                raise ProtocolError(f"batch references undefined site id {sid}")
            shard = shard_of[sid]
            bucket = buckets[shard]
            if bucket is None:
                bucket = buckets[shard] = ([], {}, [], [])
            local_payloads, local_index, local_sidx, local_values = bucket
            local = local_index.get(sid)
            if local is None:
                local = local_index[sid] = len(local_payloads)
                local_payloads.append(payloads[sid])
            local_sidx.append(local)
            local_values.append(value)
        if fresh:
            self._inc("serve.events", len(sids))
            self._observe("serve.batch_events", len(sids), kind="size")
        else:
            # A retry keeps the original pending's arrival time and
            # trace context: the e2e histogram measures the client's
            # wait since *first* transmit, crashes and resends included.
            previous = session.pending.get(seq)
            if previous is not None:
                t0 = previous.t0
                tc = previous.tc
        session.pending[seq] = _Pending(self.nshards, writer, len(sids), tc=tc, t0=t0)
        for index, runner in enumerate(self.runners):
            bucket = buckets[index]
            if bucket is None:
                item = (session.id, seq, [], [], [], tc)
            else:
                item = (session.id, seq, bucket[0], bucket[2], bucket[3], tc)
            await runner.submit(item)
        if fresh and tc is not None and _TRACER.enabled:
            _TRACER.record_span(
                "serve.enqueue",
                span_id=f"{tc[1]}.enq",
                parent_id=tc[1],
                start_monotonic=t0,
                duration_s=time.monotonic() - t0,
                attrs={"client": session.id, "seq": seq, "events": len(sids)},
            )

    def _on_done(
        self,
        shard_index: int,
        client: str,
        seq: int,
        telemetry: Optional[dict] = None,
    ) -> None:
        # Shard observations fold in *here*, on the server, from the
        # telemetry riding each done-report: the shard's own op log
        # dies with the shard, the done-report is durable — so the
        # histograms stay cumulative across kills and generations.
        if telemetry is not None:
            journal_s = telemetry.get("journal_s", 0.0)
            fold_s = telemetry.get("fold_s", 0.0)
            if journal_s:
                self._observe("serve.journal_sync", journal_s)
            self._observe("serve.shard_fold", fold_s)
            self._slow_op(
                f"shard{shard_index}.fold", fold_s,
                f"client={client} seq={seq} events={telemetry.get('events', 0)}",
            )
            spans = telemetry.get("spans")
            if spans and _TRACER.enabled:
                _TRACER.adopt(spans)
        session = self.sessions.get(client)
        if session is None:
            return
        pending = session.pending.get(seq)
        if pending is None:
            return
        pending.remaining.discard(shard_index)
        if not pending.remaining:
            del session.pending[seq]
            self._inc("serve.acks")
            if pending.t0:
                e2e = time.monotonic() - pending.t0
                self._observe("serve.batch_e2e", e2e)
                if pending.tc is not None and _TRACER.enabled:
                    _TRACER.record_span(
                        "serve.ack",
                        span_id=f"{pending.tc[1]}.ack",
                        parent_id=pending.tc[1],
                        start_monotonic=pending.t0,
                        duration_s=e2e,
                        attrs={
                            "client": client,
                            "seq": seq,
                            "events": pending.events,
                        },
                    )
            self._send(pending.writer, proto.ack(seq))

    def _send(self, writer, message: dict) -> None:
        if writer is None or writer.is_closing():
            return
        try:
            writer.write(proto.encode_frame(message))
        except (ConnectionError, RuntimeError):  # pragma: no cover - races
            pass

    # ------------------------------------------------------------------
    # flow control
    # ------------------------------------------------------------------

    def _update_depth(self) -> None:
        depth = max((runner.depth() for runner in self.runners), default=0)
        self._gauge("serve.queue_depth", float(depth))
        if not self._paused and depth >= self._flow_high:
            self._paused = True
            self._inc("serve.flow_pauses")
            self._broadcast(proto.flow("pause"))
        elif self._paused and depth <= self._flow_low:
            self._paused = False
            self._broadcast(proto.flow("resume"))

    def _broadcast(self, message: dict) -> None:
        frame_writers = list(self._conns)
        for writer in frame_writers:
            self._send(writer, message)

    # ------------------------------------------------------------------
    # fault-injection / admin surface (also used by rolling restarts)
    # ------------------------------------------------------------------

    async def kill_shard(self, index: int) -> int:
        """SIGKILL semantics; returns the number of queued batches lost."""
        dropped = await self.runners[index].kill()
        self._inc("serve.shard_kills")
        return dropped

    async def restart_shard(self, index: int) -> None:
        """Restore a shard from its snapshot + journal."""
        await self.runners[index].restart()
        self._inc("serve.shard_restarts")

    def set_shard_delay(self, index: int, seconds: float) -> None:
        """Inject per-batch latency (slow-consumer fault; inline only)."""
        runner = self.runners[index]
        if runner.runtime != "inline":
            raise ServeError("shard delay injection requires the inline runtime")
        runner.delay = seconds

    async def checkpoint_all(self) -> int:
        for runner in self.runners:
            await runner.checkpoint()
        self._inc("serve.checkpoints")
        return self.nshards

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _stream_name(self) -> str:
        streams = sorted({s.stream for s in self.sessions.values() if s.stream})
        return "+".join(streams)

    async def merged_database(self) -> ProfileDatabase:
        """A merged view of every shard's profiles.

        Shards own disjoint site sets, so the merge is a union and all
        per-site state is exact.  In the inline runtime this references
        live shard profiles and is rendered without yielding to the
        loop, i.e. it is a consistent snapshot; in the process runtime
        each shard ships a pickled copy (per-shard consistent).
        """
        merged = ProfileDatabase(
            config=self.config, exact=self.exact, name=self._stream_name()
        )
        for runner in self.runners:
            db, _ = await runner.query()
            if db is not None:
                merged.merge(db)
        return merged

    async def stats_payload(self) -> dict:
        shard_stats = []
        for runner in self.runners:
            _, stats = await runner.query()
            stats["queue_depth"] = runner.depth()
            stats["alive"] = runner.alive
            shard_stats.append(stats)
        return {
            "runtime": self.runtime,
            "paused": self._paused,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "hists": {name: hist.snapshot()
                      for name, hist in sorted(self.hists.items())},
            "slow_op_threshold": self.slow_op_threshold,
            "slow_ops": list(self.slow_ops),
            "clients": {
                client: {
                    "stream": session.stream,
                    "expected_seq": session.expected_seq,
                    "pending": len(session.pending),
                    "reorder_buffered": len(session.reorder),
                    "sites": len(session.sites),
                }
                for client, session in sorted(self.sessions.items())
            },
            "shards": shard_stats,
        }

    # ------------------------------------------------------------------
    # HTTP listener
    # ------------------------------------------------------------------

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                writer.close()
                return
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                raise ProtocolError("malformed request line")
            method, target = parts[0], parts[1]
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            if method != "GET":
                status, ctype, body = 405, "text/plain", "only GET is supported\n"
            else:
                path, _, query = target.partition("?")
                params = urllib.parse.parse_qs(query)
                t_request = time.monotonic()
                status, ctype, body = await self._http_route(path, params)
                elapsed = time.monotonic() - t_request
                self._observe("serve.http_request", elapsed)
                self._slow_op(f"GET {path}", elapsed, f"status={status}")
        except ProtocolError as error:
            status, ctype, body = 400, "text/plain", f"bad request: {error}\n"
        except Exception as error:  # noqa: BLE001 - a query must never kill the loop
            _LOG.exception("query failed")
            status, ctype, body = 500, "text/plain", f"internal error: {error}\n"
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 500: "Internal Server Error"}
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
            f"Content-Type: {ctype}; charset=utf-8\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass
        finally:
            writer.close()

    @staticmethod
    def _param(params: dict, name: str, default: str) -> str:
        values = params.get(name)
        return values[0] if values else default

    @classmethod
    def _int_param(cls, params: dict, name: str, default: str) -> int:
        raw = cls._param(params, name, default)
        try:
            return int(raw)
        except ValueError:
            raise ProtocolError(f"query param {name} must be an integer, got {raw!r}") from None

    @classmethod
    def _kind_param(
        cls, params: dict, name: str, default: str
    ) -> Optional[SiteKind]:
        raw = cls._param(params, name, default)
        if not raw:
            return None
        try:
            return SiteKind(raw)
        except ValueError:
            valid = ", ".join(kind.value for kind in SiteKind)
            raise ProtocolError(
                f"query param {name} must be a site kind ({valid}), got {raw!r}"
            ) from None

    async def _http_route(self, path: str, params: dict) -> Tuple[int, str, str]:
        self._inc("serve.queries")
        if path == "/healthz":
            body = json.dumps(
                {
                    "status": "ok",
                    "shards": self.nshards,
                    "runtime": self.runtime,
                    "alive": [runner.alive for runner in self.runners],
                }
            )
            return 200, "application/json", body + "\n"
        if path == "/stats":
            payload = await self.stats_payload()
            return 200, "application/json", json.dumps(payload, indent=2) + "\n"
        if path == "/checkpoint":
            count = await self.checkpoint_all()
            return 200, "application/json", json.dumps({"checkpointed": count}) + "\n"
        if path == "/profile":
            merged = await self.merged_database()
            if self._param(params, "format", "text") == "json":
                return 200, "application/json", merged.to_json() + "\n"
            from repro.analysis.tables import profile_table

            kind = self._kind_param(params, "kind", "load")
            top = self._int_param(params, "top", "20")
            return 200, "text/plain", profile_table(merged, kind, top=top).render() + "\n"
        if path == "/inspect":
            from repro.obs.inspect import render_overview

            merged = await self.merged_database()
            kind = self._kind_param(params, "kind", "")
            top = self._int_param(params, "top", "10")
            return 200, "text/plain", render_overview(merged, kind=kind, top=top) + "\n"
        if path == "/timeseries":
            from repro.obs.timeseries import TIMESERIES

            if not TIMESERIES.enabled:
                body = json.dumps({"enabled": False, "samples": []})
                return 200, "application/json", body + "\n"
            TIMESERIES.sample()
            payload = TIMESERIES.to_payload()
            payload["enabled"] = True
            return 200, "application/json", json.dumps(payload) + "\n"
        if path == "/metrics":
            return 200, "text/plain; version=0.0.4", self.render_metrics()
        return 404, "text/plain", f"no such endpoint: {path}\n"

    def render_metrics(self) -> str:
        """The live Prometheus scrape: counters, gauges, histograms.

        Built from server-local state and per-runner depth probes only
        — no shard round-trips — so a scrape is cheap and can never
        block behind a busy (or dead) shard.  Per-shard queue depth and
        liveness ride as labeled series; when the global registry is
        enabled, its sections are appended under any names the serve
        dicts don't already cover (the serve counters mirror into the
        registry under identical names, so the skip avoids double
        exposition).
        """
        lines: List[str] = []
        emitted = set()
        for name, value in sorted(self.counters.items()):
            prom = prom_name(name)
            emitted.add(prom)
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {value}")
        for name, value in sorted(self.gauges.items()):
            prom = prom_name(name)
            emitted.add(prom)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {value:g}")
        lines.append("# TYPE repro_serve_shard_queue_depth gauge")
        for index, runner in enumerate(self.runners):
            lines.append(
                f'repro_serve_shard_queue_depth{{shard="{index}"}} {runner.depth()}'
            )
        lines.append("# TYPE repro_serve_shard_up gauge")
        for index, runner in enumerate(self.runners):
            lines.append(
                f'repro_serve_shard_up{{shard="{index}"}} {1 if runner.alive else 0}'
            )
        for name, hist in sorted(self.hists.items()):
            prom = prom_name(name)
            emitted.add(prom)
            lines.extend(render_prometheus_hist(prom, hist.snapshot()))
        if _METRICS.enabled:
            snapshot = _METRICS.snapshot()
            for section, prom_type in (("counters", "counter"), ("gauges", "gauge")):
                for name, value in snapshot[section].items():
                    prom = prom_name(name)
                    if prom in emitted:
                        continue
                    lines.append(f"# TYPE {prom} {prom_type}")
                    lines.append(f"{prom} {value}")
            for name, stats in snapshot["timers"].items():
                prom = prom_name(name)
                lines.append(f"# TYPE {prom}_seconds_count counter")
                lines.append(f"{prom}_seconds_count {stats['count']}")
                lines.append(f"# TYPE {prom}_seconds_sum counter")
                lines.append(f"{prom}_seconds_sum {stats['total_s']}")
            for name, snap in snapshot["hists"].items():
                prom = prom_name(name)
                if prom in emitted:
                    continue
                lines.extend(render_prometheus_hist(prom, snap))
        return "\n".join(lines) + "\n"
