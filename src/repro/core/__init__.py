"""Core value-profiling machinery: TNV tables, metrics, profiles, sampling.

This package is front-end agnostic.  Instrumentation layers (the VPA
ISA simulator, the Python tracer) produce ``(site, value)`` event
streams; everything here consumes them.
"""

from repro.core.convergence import (
    ConvergenceConfig,
    ConvergenceDetector,
    ConvergencePoint,
    convergence_curve,
)
from repro.core.metrics import (
    TOP_N,
    SiteMetrics,
    ValueStreamStats,
    aggregate_metrics,
    mean_unweighted,
    weighted_mean,
)
from repro.core.profile import ProfileDatabase, SiteProfile, TNVConfig
from repro.core.sampling import (
    ConvergentSampling,
    FullSampling,
    PeriodicSampling,
    RandomSampling,
    SamplingPolicy,
    SamplingProfiler,
)
from repro.core.sites import (
    Site,
    SiteKind,
    instruction_site,
    load_site,
    memory_site,
    parameter_site,
    python_site,
    return_site,
)
from repro.core.tnv import TNVEntry, TNVTable

__all__ = [
    "TOP_N",
    "ConvergenceConfig",
    "ConvergenceDetector",
    "ConvergencePoint",
    "ConvergentSampling",
    "FullSampling",
    "PeriodicSampling",
    "ProfileDatabase",
    "RandomSampling",
    "SamplingPolicy",
    "SamplingProfiler",
    "Site",
    "SiteKind",
    "SiteMetrics",
    "SiteProfile",
    "TNVConfig",
    "TNVEntry",
    "TNVTable",
    "ValueStreamStats",
    "aggregate_metrics",
    "convergence_curve",
    "instruction_site",
    "load_site",
    "mean_unweighted",
    "memory_site",
    "parameter_site",
    "return_site",
    "python_site",
    "weighted_mean",
]
