"""Sampling policies and the sampling profiler (thesis Ch. VIII).

Profiling every execution of every instruction is slow (the thesis
reports order-of-magnitude slowdowns under ATOM).  The thesis evaluates
two remedies and we implement both:

* **Periodic sampling** — profile a fixed *burst* of executions out of
  every *interval* (a duty cycle), per site.
* **Convergent ("intelligent") sampling** — start with periodic bursts;
  once a site's invariance estimate converges
  (:class:`~repro.core.convergence.ConvergenceDetector`), double that
  site's skip interval up to a cap, so converged sites are only
  re-checked occasionally.  If a re-check finds the invariance drifted,
  the interval resets.

The key quantities the experiments report are **overhead** — the
fraction of dynamic executions actually profiled — and **accuracy** —
how close sampled metrics are to full-profiling metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

from repro.core.convergence import ConvergenceConfig, ConvergenceDetector
from repro.core.profile import ProfileDatabase, TNVConfig
from repro.core.sites import Site
from repro.obs.metrics import METRICS as _METRICS

Value = Hashable


class SamplingPolicy:
    """Decides, per dynamic execution of a site, whether to profile it.

    Subclasses implement :meth:`should_sample`; the profiler calls it
    exactly once per dynamic execution, in order.
    """

    #: whether the policy's decisions for a site depend only on that
    #: site's own event stream.  Site-local policies produce identical
    #: results when events are buffered per site and replayed in runs
    #: (the batched fast path); policies with cross-site state (e.g.
    #: a shared RNG) must see the global interleaving and set this to
    #: False, which keeps the harness on per-event recording.
    site_local = True

    def should_sample(self, site: Site) -> bool:
        raise NotImplementedError

    def checkpoint(self, site: Site, estimate: float) -> None:
        """Called at the end of each profiled burst with the site's
        current invariance estimate.  Default: ignore."""

    def fresh(self) -> "SamplingPolicy":
        """A new, state-free copy of this policy (same parameters)."""
        raise NotImplementedError


class FullSampling(SamplingPolicy):
    """Profile every execution (the paper's baseline)."""

    def should_sample(self, site: Site) -> bool:
        return True

    def fresh(self) -> "FullSampling":
        return FullSampling()


@dataclass
class _PeriodicState:
    position: int = 0


class PeriodicSampling(SamplingPolicy):
    """Profile the first ``burst`` of every ``interval`` executions.

    ``burst=1000, interval=10000`` is a 10% duty cycle.  State is kept
    per site so sites with different execution counts each get their
    fair duty cycle.
    """

    def __init__(self, burst: int, interval: int) -> None:
        if burst < 1 or interval < burst:
            raise ValueError(f"need 1 <= burst <= interval, got burst={burst} interval={interval}")
        self.burst = burst
        self.interval = interval
        self._state: Dict[Site, _PeriodicState] = {}

    def should_sample(self, site: Site) -> bool:
        state = self._state.setdefault(site, _PeriodicState())
        sampled = state.position < self.burst
        state.position += 1
        if state.position >= self.interval:
            state.position = 0
        return sampled

    def fresh(self) -> "PeriodicSampling":
        return PeriodicSampling(self.burst, self.interval)


class RandomSampling(SamplingPolicy):
    """CPI-style random sampling (Anderson et al. [1]).

    The Continuous Profiling Infrastructure samples *randomly* rather
    than in bursts; the thesis asks whether that suffices for value
    profiling.  This policy samples each execution independently with
    probability ``rate`` using a deterministic PRNG (seeded per policy,
    so experiments are reproducible).

    The experiment answer (``table-sampling-accuracy``): random
    sampling estimates *histogram* metrics (Inv-Top) about as well as
    periodic sampling at equal cost, but is much worse for *sequential*
    metrics (LVP), because sampling breaks adjacency — the pairs of
    consecutive executions LVP is defined over are almost never both
    sampled.
    """

    site_local = False  # one RNG shared across sites

    def __init__(self, rate: float, seed: int = 0x5EED) -> None:
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        self.rate = rate
        self.seed = seed
        import random as _random

        self._rng = _random.Random(seed)

    def should_sample(self, site: Site) -> bool:
        return self._rng.random() < self.rate

    def fresh(self) -> "RandomSampling":
        return RandomSampling(self.rate, self.seed)


@dataclass
class _ConvergentState:
    """Per-site burst/backoff state machine."""

    in_burst: bool = True
    burst_remaining: int = 0
    skip_remaining: int = 0
    skip_interval: int = 0


class ConvergentSampling(SamplingPolicy):
    """The thesis' intelligent sampler.

    Each site alternates bursts of ``burst`` profiled executions with
    skips.  Before convergence the skip interval is ``base_skip``; each
    time the convergence detector reports the site converged, the skip
    interval doubles, up to ``max_skip``.  A drifting re-check resets
    both the detector and the interval.
    """

    def __init__(
        self,
        burst: int = 1000,
        base_skip: int = 9000,
        max_skip: int = 1_000_000,
        backoff: float = 2.0,
        convergence: Optional[ConvergenceConfig] = None,
    ) -> None:
        if burst < 1 or base_skip < 1 or max_skip < base_skip or backoff < 1.0:
            raise ValueError("invalid ConvergentSampling parameters")
        self.burst = burst
        self.base_skip = base_skip
        self.max_skip = max_skip
        self.backoff = backoff
        self.convergence = convergence or ConvergenceConfig()
        self._state: Dict[Site, _ConvergentState] = {}
        self._detectors: Dict[Site, ConvergenceDetector] = {}

    def detector_for(self, site: Site) -> ConvergenceDetector:
        detector = self._detectors.get(site)
        if detector is None:
            detector = ConvergenceDetector(self.convergence)
            self._detectors[site] = detector
        return detector

    def should_sample(self, site: Site) -> bool:
        state = self._state.get(site)
        if state is None:
            state = _ConvergentState(
                in_burst=True, burst_remaining=self.burst, skip_interval=self.base_skip
            )
            self._state[site] = state
        if state.in_burst:
            state.burst_remaining -= 1
            if state.burst_remaining <= 0:
                # Burst over; the profiler will call checkpoint() next.
                state.in_burst = False
                state.skip_remaining = state.skip_interval
            return True
        state.skip_remaining -= 1
        if state.skip_remaining <= 0:
            state.in_burst = True
            state.burst_remaining = self.burst
        return False

    def checkpoint(self, site: Site, estimate: float) -> None:
        state = self._state.get(site)
        if state is None:  # pragma: no cover - profiler always samples first
            return
        detector = self.detector_for(site)
        was_converged = detector.converged
        now_converged = detector.observe(estimate)
        if now_converged:
            state.skip_interval = min(self.max_skip, int(state.skip_interval * self.backoff))
            _METRICS.inc("sampling.convergence_backoffs")
        elif was_converged:
            # Drift detected during a re-check: back to attentive mode.
            state.skip_interval = self.base_skip
            _METRICS.inc("sampling.convergence_resets")

    def fresh(self) -> "ConvergentSampling":
        return ConvergentSampling(
            burst=self.burst,
            base_skip=self.base_skip,
            max_skip=self.max_skip,
            backoff=self.backoff,
            convergence=self.convergence,
        )


class SamplingProfiler:
    """A profile database writer gated by a sampling policy.

    Sees *every* (site, value) event, records only the sampled subset
    into its :class:`ProfileDatabase`, and tracks true execution totals
    so experiments can report overhead and scale sampled counts.
    """

    def __init__(
        self,
        policy: SamplingPolicy,
        config: Optional[TNVConfig] = None,
        exact: bool = True,
        name: str = "",
    ) -> None:
        self.policy = policy
        self.database = ProfileDatabase(config=config, exact=exact, name=name)
        self._seen: Dict[Site, int] = {}
        self._profiled: Dict[Site, int] = {}
        self._since_checkpoint: Dict[Site, int] = {}
        # Per-policy counter names, computed once so the per-event path
        # pays only an enabled check plus dict increments when the
        # observability layer is on (and a single branch when off).
        policy_label = type(policy).__name__
        self._m_seen = f"sampling.{policy_label}.seen"
        self._m_profiled = f"sampling.{policy_label}.profiled"
        #: profiled executions between checkpoint() calls to the policy;
        #: defaults to the policy's burst so each burst ends with a
        #: checkpoint (what the convergent sampler's backoff needs).
        self.checkpoint_every = getattr(policy, "burst", 1000)

    def record(self, site: Site, value: Value) -> None:
        """Feed one dynamic execution; profiles it iff the policy says so."""
        self._seen[site] = self._seen.get(site, 0) + 1
        sampled = self.policy.should_sample(site)
        if _METRICS.enabled:
            _METRICS.inc(self._m_seen)
            if sampled:
                _METRICS.inc(self._m_profiled)
        if not sampled:
            return
        self.database.record(site, value)
        self._profiled[site] = self._profiled.get(site, 0) + 1
        pending = self._since_checkpoint.get(site, 0) + 1
        if pending >= self.checkpoint_every:
            profile = self.database.profile_for(site)
            self.policy.checkpoint(site, profile.tnv.estimated_invariance(1))
            pending = 0
        self._since_checkpoint[site] = pending

    def record_batch(self, site: Site, values: Sequence[Value]) -> None:
        """Feed a run of dynamic executions of one site, in order.

        State-identical to per-value :meth:`record` calls for any
        site-local policy: the policy still sees every execution in
        order, but consecutive sampled values between checkpoints are
        accumulated and recorded as one batch, and each checkpoint
        fires at exactly the event it would under per-event recording
        (the sampling-burst boundary flushes the pending run first, so
        the invariance estimate reflects everything recorded so far).
        """
        n = len(values)
        if n == 0:
            return
        self._seen[site] = self._seen.get(site, 0) + n
        policy = self.policy
        should_sample = policy.should_sample
        database = self.database
        every = self.checkpoint_every
        pending = self._since_checkpoint.get(site, 0)
        run: List[Value] = []
        append = run.append
        profiled = 0
        for value in values:
            if not should_sample(site):
                continue
            append(value)
            pending += 1
            if pending >= every:
                database.record_batch(site, run)
                profiled += len(run)
                run.clear()
                profile = database.profile_for(site)
                policy.checkpoint(site, profile.tnv.estimated_invariance(1))
                pending = 0
        if run:
            database.record_batch(site, run)
            profiled += len(run)
        if profiled:
            self._profiled[site] = self._profiled.get(site, 0) + profiled
        self._since_checkpoint[site] = pending
        if _METRICS.enabled:
            _METRICS.inc(self._m_seen, n)
            _METRICS.inc(self._m_profiled, profiled)

    # ------------------------------------------------------------------

    def seen(self, site: Optional[Site] = None) -> int:
        """True dynamic executions observed (for one site or overall)."""
        if site is not None:
            return self._seen.get(site, 0)
        return sum(self._seen.values())

    def profiled(self, site: Optional[Site] = None) -> int:
        """Executions actually recorded into the database."""
        if site is not None:
            return self._profiled.get(site, 0)
        return sum(self._profiled.values())

    def overhead(self) -> float:
        """Fraction of dynamic executions that paid profiling cost."""
        seen = self.seen()
        if seen == 0:
            return 0.0
        return self.profiled() / seen
