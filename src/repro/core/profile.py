"""Per-site profiles and the profile database.

A :class:`SiteProfile` couples the paper's bounded TNV table with the
exact reference statistics; a :class:`ProfileDatabase` maps sites to
profiles and is what instrumentation front ends write into and what the
analysis layer reads.

By default both structures are maintained so experiments can compare
TNV estimates against ground truth.  Front ends that want to model the
paper's actual memory budget can construct the database with
``exact=False`` and get TNV-only profiles (LVP is still tracked — it
needs only the previous value, which real value profilers also keep).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.fold import SiteFold, fold_values
from repro.core.metrics import TOP_N, SiteMetrics, ValueStreamStats, aggregate_metrics, is_zero
from repro.core.sites import Site, SiteKind
from repro.core.tnv import TNVTable
from repro.errors import ProfileError
from repro.obs.metrics import METRICS as _METRICS
from repro.obs.timeseries import TIMESERIES as _TIMESERIES

Value = Hashable


@dataclass
class TNVConfig:
    """Configuration shared by every TNV table in a database."""

    capacity: int = 10
    steady: int = 5
    clear_interval: Optional[int] = 2000

    def make_table(self) -> TNVTable:
        return TNVTable(
            capacity=self.capacity,
            steady=self.steady,
            clear_interval=self.clear_interval,
        )


class SiteProfile:
    """All profiling state for one site.

    Attributes:
        site: the profiled entity.
        tnv: the bounded top-value table (always maintained).
        exact: exact reference statistics, or ``None`` when the profile
            was created in TNV-only mode.
    """

    __slots__ = (
        "site",
        "tnv",
        "exact",
        "_total",
        "_zeros",
        "_lvp_hits",
        "_last",
        "_has_last",
        "_first",
        "_has_first",
    )

    def __init__(self, site: Site, config: TNVConfig, exact: bool = True) -> None:
        self.site = site
        self.tnv = config.make_table()
        self.exact: Optional[ValueStreamStats] = ValueStreamStats() if exact else None
        self._total = 0
        self._zeros = 0
        self._lvp_hits = 0
        self._last: Value = None
        self._has_last = False
        self._first: Value = None
        self._has_first = False

    def record(self, value: Value) -> None:
        """Record one dynamic value for this site."""
        self._total += 1
        if is_zero(value):
            self._zeros += 1
        if self._has_last and value == self._last:
            self._lvp_hits += 1
        if not self._has_first:
            self._first = value
            self._has_first = True
        self._last = value
        self._has_last = True
        self.tnv.record(value)
        if self.exact is not None:
            self.exact.record(value)

    def record_many(self, values: Iterable[Value]) -> None:
        """Record a run of dynamic values for this site, in order.

        State-identical to per-value :meth:`record` calls, but the run
        is reduced exactly once (:func:`repro.core.fold.fold_values` —
        one dedup pass split at this table's clearing boundaries, one
        adjacency pass) and the reduction feeds every structure through
        :meth:`record_fold`.  The old path deduplicated three times:
        here for zeros, in the TNV table per chunk, and again in the
        exact statistics.
        """
        if not isinstance(values, (list, tuple)):
            values = list(values)
        if not values:
            return
        self.record_fold(
            fold_values(values, self.tnv.clear_interval, self.tnv._since_clear)
        )

    def record_run(self, value: Value, count: int) -> None:
        """Record ``count`` consecutive executions producing ``value``.

        State-identical to ``count`` :meth:`record` calls: ``count - 1``
        internal last-value hits plus the run-boundary hit, with the
        TNV table splitting the run at clearing boundaries.
        """
        if count <= 0:
            return
        self._total += count
        if is_zero(value):
            self._zeros += count
        hits = count - 1
        if self._has_last and value == self._last:
            hits += 1
        self._lvp_hits += hits
        if not self._has_first:
            self._first = value
            self._has_first = True
        self._last = value
        self._has_last = True
        self.tnv.record_run(value, count)
        if self.exact is not None:
            self.exact.record_run(value, count)

    def record_grouped(self, pairs: Iterable[Tuple[Value, int]]) -> None:
        """Record run-length ``(value, count)`` pairs in stream order.

        Each pair stands for ``count`` consecutive executions of
        ``value``; recording is state-identical to the expanded stream.
        """
        for value, count in pairs:
            self.record_run(value, count)

    def record_fold(self, fold: SiteFold) -> None:
        """Fold an already-reduced value run into this profile.

        The columnar fast path: the run arrives as a
        :class:`~repro.core.fold.SiteFold` whose chunks were split for
        exactly this profile's TNV table, so the scalars splice on
        directly and the TNV/exact structures consume grouped counts
        with no further dedup.
        """
        if fold.n == 0:
            return
        tnv = self.tnv
        if fold.interval != tnv.clear_interval or fold.since != tnv._since_clear:
            raise ProfileError(
                f"fold split for clear_interval={fold.interval} at "
                f"since={fold.since} cannot feed a table at "
                f"clear_interval={tnv.clear_interval} "
                f"since={tnv._since_clear}"
            )
        self._total += fold.n
        self._zeros += fold.zeros
        hits = fold.lvp_hits
        if self._has_last and fold.first == self._last:
            hits += 1
        self._lvp_hits += hits
        if not self._has_first:
            self._first = fold.first
            self._has_first = True
        self._last = fold.last
        self._has_last = True
        for counts, chunk_n in fold.chunks:
            tnv.record_grouped(counts, chunk_n)
        if self.exact is not None:
            self.exact.record_parts(
                counts=fold.counts,
                n=fold.n,
                zeros=fold.zeros,
                lvp_hits=fold.lvp_hits,
                first=fold.first,
                last=fold.last,
            )

    @property
    def executions(self) -> int:
        return self._total

    def lvp(self) -> float:
        if self._total <= 1:
            return 0.0
        return self._lvp_hits / (self._total - 1)

    def pct_zeros(self) -> float:
        if self._total == 0:
            return 0.0
        return self._zeros / self._total

    def metrics(self, top_n: int = TOP_N, prefer_exact: bool = True) -> SiteMetrics:
        """The per-site result row.

        With exact statistics available (and ``prefer_exact``), the
        invariance and distinct-value numbers are ground truth;
        otherwise they are the TNV table's estimates, with ``distinct``
        reported as the number of resident entries (a lower bound).
        """
        if prefer_exact and self.exact is not None:
            return self.exact.metrics(top_n)
        return SiteMetrics(
            executions=self._total,
            lvp=self.lvp(),
            inv_top1=self.tnv.estimated_invariance(1),
            inv_top_n=self.tnv.estimated_invariance(top_n),
            distinct=len(self.tnv),
            pct_zeros=self.pct_zeros(),
        )

    def tnv_metrics(self, top_n: int = TOP_N) -> SiteMetrics:
        """Metrics as the bounded TNV table reports them."""
        return self.metrics(top_n, prefer_exact=False)

    def merge(self, other: "SiteProfile") -> None:
        """Fold another run's profile of the *same site* into this one.

        The merged LVP matches the concatenated value stream: when
        ``other``'s first value equals this profile's last value, the
        run boundary is itself a last-value hit and is counted.
        """
        if other.site != self.site:
            raise ProfileError(f"cannot merge profiles of different sites: {self.site} vs {other.site}")
        self._total += other._total
        self._zeros += other._zeros
        self._lvp_hits += other._lvp_hits
        if self._has_last and other._has_first and other._first == self._last:
            self._lvp_hits += 1
        if not self._has_first:
            self._first = other._first
            self._has_first = other._has_first
        if other._has_last:
            self._last = other._last
            self._has_last = True
        self.tnv.merge(other.tnv)
        if self.exact is not None and other.exact is not None:
            self.exact.merge(other.exact)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SiteProfile({self.site}, executions={self._total})"


class ProfileDatabase:
    """Mapping of :class:`Site` to :class:`SiteProfile`.

    This is the object instrumentation front ends populate.  It offers
    the query surface the analysis layer needs: filtering by site kind,
    per-site metrics, execution-weighted aggregates, and persistence.

    Args:
        config: TNV knobs applied to every site's table.
        exact: whether to keep exact reference statistics per site.
        name: optional label (workload + input set) used in reports.
    """

    def __init__(
        self,
        config: Optional[TNVConfig] = None,
        exact: bool = True,
        name: str = "",
    ) -> None:
        self.config = config or TNVConfig()
        self.exact = exact
        self.name = name
        self._profiles: Dict[Site, SiteProfile] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record(self, site: Site, value: Value) -> None:
        """Record one dynamic value for ``site``, creating it on demand."""
        profile = self._profiles.get(site)
        if profile is None:
            profile = SiteProfile(site, self.config, exact=self.exact)
            self._profiles[site] = profile
            _METRICS.inc("profile.sites_created")
        profile.record(value)

    def record_batch(self, site: Site, values: Sequence[Value]) -> None:
        """Record a run of dynamic values for ``site``, in order.

        State-identical to per-value :meth:`record` calls but pays the
        site lookup once per run instead of once per event; the batch
        then flows through :meth:`SiteProfile.record_many`.
        """
        if not values:
            return
        profile = self._profiles.get(site)
        if profile is None:
            profile = SiteProfile(site, self.config, exact=self.exact)
            self._profiles[site] = profile
            _METRICS.inc("profile.sites_created")
        _METRICS.inc("profile.batches")
        _METRICS.inc("profile.batch_events", len(values))
        _TIMESERIES.advance(len(values))
        profile.record_many(values)

    def record_fold(self, site: Site, fold: SiteFold) -> None:
        """Record an already-reduced value run for ``site``.

        The columnar replay path: the trace store folds each site's run
        once (:meth:`repro.core.tracestore.EventTrace.site_folds`) and
        this method splices the reduction in with the same batch
        accounting :meth:`record_batch` pays — no per-event objects
        anywhere in between.
        """
        if fold.n == 0:
            return
        profile = self._profiles.get(site)
        if profile is None:
            profile = SiteProfile(site, self.config, exact=self.exact)
            self._profiles[site] = profile
            _METRICS.inc("profile.sites_created")
        _METRICS.inc("profile.batches")
        _METRICS.inc("profile.batch_events", fold.n)
        _TIMESERIES.advance(fold.n)
        profile.record_fold(fold)

    def profile_for(self, site: Site) -> SiteProfile:
        """The profile for ``site``; raises if the site was never seen."""
        try:
            return self._profiles[site]
        except KeyError:
            raise ProfileError(f"no profile recorded for site {site}") from None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, site: Site) -> bool:
        return site in self._profiles

    def __iter__(self) -> Iterator[SiteProfile]:
        return iter(self._profiles.values())

    def sites(self, kind: Optional[SiteKind] = None) -> List[Site]:
        """All sites, optionally restricted to one kind, sorted."""
        sites = self._profiles.keys()
        if kind is not None:
            sites = (site for site in sites if site.kind == kind)
        return sorted(sites)

    def profiles(
        self,
        kind: Optional[SiteKind] = None,
        predicate: Optional[Callable[[Site], bool]] = None,
    ) -> List[SiteProfile]:
        """Profiles filtered by kind and/or an arbitrary site predicate."""
        result = []
        for site, profile in self._profiles.items():
            if kind is not None and site.kind != kind:
                continue
            if predicate is not None and not predicate(site):
                continue
            result.append(profile)
        result.sort(key=lambda p: p.site)
        return result

    def total_executions(self, kind: Optional[SiteKind] = None) -> int:
        return sum(profile.executions for profile in self.profiles(kind))

    def metrics_by_site(
        self, kind: Optional[SiteKind] = None, top_n: int = TOP_N
    ) -> List[Tuple[Site, SiteMetrics]]:
        """(site, metrics) rows sorted hottest-first."""
        rows = [(p.site, p.metrics(top_n)) for p in self.profiles(kind)]
        rows.sort(key=lambda item: (-item[1].executions, item[0]))
        return rows

    def summary(
        self,
        kind: Optional[SiteKind] = None,
        top_n: int = TOP_N,
        predicate: Optional[Callable[[Site], bool]] = None,
    ) -> SiteMetrics:
        """Execution-weighted aggregate metrics over matching sites."""
        rows = [p.metrics(top_n) for p in self.profiles(kind, predicate)]
        return aggregate_metrics(rows)

    def summary_by_procedure(
        self, kind: Optional[SiteKind] = None, top_n: int = TOP_N
    ) -> Dict[str, SiteMetrics]:
        """Aggregate metrics per procedure (thesis Table V.4)."""
        grouped: Dict[str, List[SiteMetrics]] = {}
        for profile in self.profiles(kind):
            grouped.setdefault(profile.site.procedure, []).append(profile.metrics(top_n))
        return {name: aggregate_metrics(rows) for name, rows in grouped.items()}

    def summary_by_opcode(
        self, kind: Optional[SiteKind] = None, top_n: int = TOP_N
    ) -> Dict[str, SiteMetrics]:
        """Aggregate metrics per defining opcode (thesis Table V.3)."""
        grouped: Dict[str, List[SiteMetrics]] = {}
        for profile in self.profiles(kind):
            grouped.setdefault(profile.site.opcode, []).append(profile.metrics(top_n))
        return {name: aggregate_metrics(rows) for name, rows in grouped.items()}

    # ------------------------------------------------------------------
    # combination / persistence
    # ------------------------------------------------------------------

    def merge(self, other: "ProfileDatabase") -> None:
        """Fold another database into this one, site by site."""
        _METRICS.inc("profile.db_merges")
        for site, profile in other._profiles.items():
            mine = self._profiles.get(site)
            if mine is None:
                self._profiles[site] = profile
            else:
                mine.merge(profile)

    def to_json(self) -> str:
        """Serialize TNV snapshots and headline stats to JSON.

        Exact histograms are intentionally not serialized — persisted
        profiles model what a real value profiler would write to disk.
        Values must be JSON-friendly (the ISA front end's integers are).
        """
        payload = {
            "name": self.name,
            "config": {
                "capacity": self.config.capacity,
                "steady": self.config.steady,
                "clear_interval": self.config.clear_interval,
            },
            "sites": [
                self._site_payload(site, profile)
                for site, profile in sorted(self._profiles.items())
            ],
        }
        return json.dumps(payload, indent=2)

    @staticmethod
    def _site_payload(site: Site, profile: SiteProfile) -> dict:
        entry = {
            "kind": site.kind.value,
            "program": site.program,
            "procedure": site.procedure,
            "label": site.label,
            "opcode": site.opcode,
            "executions": profile.executions,
            "lvp": profile.lvp(),
            "pct_zeros": profile.pct_zeros(),
            "tnv": profile.tnv.to_dict(),
        }
        # First/last values let merges of reloaded profiles count the
        # run-boundary LVP hit; the keys are present only when the
        # profile saw at least one value, so None stays unambiguous.
        if profile._has_first:
            entry["first"] = profile._first
        if profile._has_last:
            entry["last"] = profile._last
        return entry

    @classmethod
    def from_json(cls, text: str) -> "ProfileDatabase":
        """Rebuild a TNV-only database from :meth:`to_json` output."""
        payload = json.loads(text)
        config = TNVConfig(**payload["config"])
        db = cls(config=config, exact=False, name=payload.get("name", ""))
        for entry in payload["sites"]:
            site = Site(
                kind=SiteKind(entry["kind"]),
                program=entry["program"],
                procedure=entry["procedure"],
                label=entry["label"],
                opcode=entry["opcode"],
            )
            profile = SiteProfile(site, config, exact=False)
            profile.tnv = TNVTable.from_dict(entry["tnv"])
            profile._total = entry["executions"]
            profile._zeros = round(entry["pct_zeros"] * entry["executions"])
            if entry["executions"] > 1:
                profile._lvp_hits = round(entry["lvp"] * (entry["executions"] - 1))
            if "first" in entry:
                profile._first = entry["first"]
                profile._has_first = True
            if "last" in entry:
                profile._last = entry["last"]
                profile._has_last = True
            db._profiles[site] = profile
        return db
