"""Columnar fold kernels for the replay → profile hot path.

The event-trace store captures each simulation as columnar arrays, but
until this module existed every replay consumer re-materialized the
stream as per-event Python calls that TNV/metrics folded straight back
down.  The kernels here keep the stream columnar end to end: a site's
value run is reduced **once** into a :class:`SiteFold` — run-length
splitting at clearing-interval boundaries, per-chunk ``(value, count)``
group-by in first-appearance order, plus the order-sensitive scalars
(LVP adjacency hits, zeros, first/last) the grouped representation
cannot carry — and every profile structure consumes that fold through
the grouped fast paths (:meth:`~repro.core.tnv.TNVTable.record_grouped`,
:meth:`~repro.core.profile.SiteProfile.record_fold`).

Two interchangeable kernels produce byte-identical folds:

* **numpy** (optional, auto-detected): vectorized adjacency/zero scans
  and per-chunk ``unique`` with first-appearance reordering, operating
  zero-copy on the trace store's ``array`` columns via the buffer
  protocol.  Results are converted to Python ints at the boundary so
  downstream ``repr``-tiebreak ordering and JSON serialization are
  unchanged.
* **pure Python** (always available): one C-level ``Counter`` pass per
  clear-interval chunk (``Counter`` preserves first-appearance order)
  and a C-level ``sum(map(eq, ...))`` adjacency pass.  No third-party
  dependency — the ``array`` module and the stdlib are enough.

Selection happens at import time and can be overridden with the
``REPRO_FOLD`` environment variable or :func:`set_fold_mode`:

* ``grouped`` (default) — columnar folds, numpy kernel when numpy is
  importable, pure-Python kernel otherwise.
* ``numpy`` / ``python`` — grouped folds with a forced kernel
  (``numpy`` raises at fold time if numpy is missing).
* ``event`` — disable the columnar path; replay consumers fall back to
  the original per-site ``record_many`` batches.  The CI equivalence
  job diffs experiment output between ``grouped`` and ``event``.

``REPRO_NO_NUMPY=1`` hides numpy from the auto-detection entirely,
which is how the test suite pins the pure-Python kernel on machines
that have numpy installed.
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass
from itertools import islice
from operator import eq
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.metrics import is_zero
from repro.errors import ProfileError

Value = Hashable

#: fold-mode names (``REPRO_FOLD`` values).
FOLD_GROUPED = "grouped"
FOLD_NUMPY = "numpy"
FOLD_PYTHON = "python"
FOLD_EVENT = "event"

_MODES = (FOLD_GROUPED, FOLD_NUMPY, FOLD_PYTHON, FOLD_EVENT)

_np = None
if os.environ.get("REPRO_NO_NUMPY", "") == "":
    try:  # pragma: no cover - exercised via the numpy-present test leg
        import numpy as _np
    except ImportError:  # pragma: no cover - numpy genuinely absent
        _np = None


def have_numpy() -> bool:
    """Whether the numpy kernel is available (import gated, never hard)."""
    return _np is not None


def numpy_module():
    """The numpy module if available, else ``None`` (import gated once)."""
    return _np


_MODE = os.environ.get("REPRO_FOLD", FOLD_GROUPED)
if _MODE not in _MODES:
    raise ProfileError(
        f"REPRO_FOLD must be one of {_MODES}, got {_MODE!r}"
    )


def fold_mode() -> str:
    """The active fold mode (``grouped``/``numpy``/``python``/``event``)."""
    return _MODE


def set_fold_mode(mode: str) -> None:
    """Override the fold mode (tests and the ``--fold`` CLI flag)."""
    global _MODE
    if mode not in _MODES:
        raise ProfileError(f"fold mode must be one of {_MODES}, got {mode!r}")
    _MODE = mode


def grouped_enabled() -> bool:
    """Whether replay consumers should use the columnar grouped path."""
    return _MODE != FOLD_EVENT


def kernel_name() -> str:
    """Which kernel a grouped fold would run right now."""
    if _MODE == FOLD_PYTHON:
        return FOLD_PYTHON
    if _MODE == FOLD_NUMPY:
        return FOLD_NUMPY
    return FOLD_NUMPY if _np is not None else FOLD_PYTHON


#: ``tracestore.fold_mode`` gauge encoding (docs/observability.md).
FOLD_MODE_GAUGE = {FOLD_EVENT: 0.0, FOLD_PYTHON: 1.0, FOLD_NUMPY: 2.0}


def fold_mode_gauge() -> float:
    """Numeric encoding of the active mode for the metrics gauge."""
    if not grouped_enabled():
        return FOLD_MODE_GAUGE[FOLD_EVENT]
    return FOLD_MODE_GAUGE[kernel_name()]


@dataclass
class SiteFold:
    """One site's value run, reduced to the grouped representation.

    The fold carries everything the profile structures consume, so no
    per-event objects survive past the kernel:

    Attributes:
        n: total number of events in the run.
        first: first value of the run (``None`` iff ``n == 0``).
        last: last value of the run.
        lvp_hits: adjacent-equal pairs *inside* the run (the recorder
            adds the run-boundary hit against its own previous value).
        zeros: events whose value is zero (:func:`is_zero`).
        counts: whole-run ``value -> count`` map in first-appearance
            order (feeds the exact histogram).
        chunks: ``(counts, n)`` per clearing-interval chunk, split
            exactly where per-event recording would clear; each chunk's
            map is first-appearance ordered, which is what makes grouped
            TNV admission bit-identical to per-event recording.
        interval: the clearing interval the chunks were split for.
        since: the table's ``since_clear`` position the split assumed.
    """

    n: int
    first: Value
    last: Value
    lvp_hits: int
    zeros: int
    counts: Dict[Value, int]
    chunks: List[Tuple[Dict[Value, int], int]]
    interval: Optional[int]
    since: int = 0


_EMPTY_INTERVAL_SENTINEL = object()


def _chunk_bounds(n: int, interval: Optional[int], since: int) -> List[Tuple[int, int]]:
    """(start, end) chunk offsets mirroring ``record_many``'s splits."""
    if interval is None:
        return [(0, n)]
    bounds = []
    start = 0
    room = interval - since
    while start < n:
        end = start + room
        if end > n:
            end = n
        bounds.append((start, end))
        start = end
        room = interval
    return bounds


def _merge_chunk_counts(chunks: List[Tuple[Dict[Value, int], int]]) -> Dict[Value, int]:
    """Whole-run counts from chunk counts, first-appearance order kept."""
    if len(chunks) == 1:
        return chunks[0][0]
    merged: Dict[Value, int] = {}
    get = merged.get
    for counts, _ in chunks:
        for value, count in counts.items():
            merged[value] = get(value, 0) + count
    return merged


def _fold_python(values: Sequence[Value], interval: Optional[int], since: int) -> SiteFold:
    """Pure-Python kernel: C-level Counter/eq passes, no numpy."""
    n = len(values)
    # Adjacent-equal pairs in one C pass (map+operator.eq beat both the
    # zip genexpr and itertools.groupby on every tested distribution).
    lvp_hits = sum(map(eq, values, islice(values, 1, None))) if n > 1 else 0
    chunks: List[Tuple[Dict[Value, int], int]] = []
    for start, end in _chunk_bounds(n, interval, since):
        if start == 0 and end == n:
            counts = Counter(values)
        else:
            counts = Counter(values[start:end])
        chunks.append((counts, end - start))
    if len(chunks) == 1:
        counts = chunks[0][0]
    else:
        # One extra C-level counting pass beats merging the chunk dicts
        # in Python, and yields the same global first-appearance order.
        counts = Counter(values)
    try:
        # Everything ``== 0`` shares one dict slot (equal keys collide),
        # so the zero total is a single lookup — exactly the
        # :func:`is_zero` test for values whose ``==`` doesn't raise.
        zeros = counts.get(0, 0)
    except TypeError:
        zeros = sum(count for value, count in counts.items() if is_zero(value))
    return SiteFold(
        n=n,
        first=values[0],
        last=values[n - 1],
        lvp_hits=lvp_hits,
        zeros=zeros,
        counts=counts,
        chunks=chunks,
        interval=interval,
        since=since,
    )


def _grouped_chunk_numpy(chunk) -> Dict[int, int]:
    """First-appearance-ordered ``value -> count`` map of one chunk."""
    uniques, first_index, counts = _np.unique(
        chunk, return_index=True, return_counts=True
    )
    if len(uniques) == 1:
        return {int(uniques[0]): int(counts[0])}
    order = _np.argsort(first_index)
    return dict(zip(uniques[order].tolist(), counts[order].tolist()))


def _fold_numpy(a, interval: Optional[int], since: int) -> SiteFold:
    """numpy kernel over an ``int64`` ndarray (values already columnar).

    Every value leaving this function is a Python ``int`` (``tolist``/
    ``int(...)`` at the boundary), so fold consumers see exactly the
    objects per-event recording would have seen.
    """
    n = int(a.shape[0])
    lvp_hits = int((a[1:] == a[:-1]).sum()) if n > 1 else 0
    chunks: List[Tuple[Dict[Value, int], int]] = []
    for start, end in _chunk_bounds(n, interval, since):
        chunks.append((_grouped_chunk_numpy(a[start:end]), end - start))
    if len(chunks) == 1:
        counts = chunks[0][0]
    else:
        # Whole-array unique pass: same global first-appearance order as
        # merging the chunk maps in sequence, but vectorized.
        counts = _grouped_chunk_numpy(a)
    # Keys are Python ints here, so the zero total is one dict lookup.
    zeros = counts.get(0, 0)
    return SiteFold(
        n=n,
        first=int(a[0]),
        last=int(a[n - 1]),
        lvp_hits=lvp_hits,
        zeros=zeros,
        counts=counts,
        chunks=chunks,
        interval=interval,
        since=since,
    )


def _as_ndarray(values):
    """``values`` as an int64-compatible ndarray, or ``None``.

    Zero-copy for ``array``-module columns (buffer protocol) and for
    integer ndarrays; Python lists return ``None`` — converting a list
    costs more than the pure-Python kernel saves, and lists may hold
    arbitrary hashables the numpy kernel cannot represent.
    """
    if _np is None:
        return None
    if isinstance(values, _np.ndarray):
        return values if values.dtype.kind in "iu" else None
    typecode = getattr(values, "typecode", None)
    if typecode in ("q", "l", "i", "h", "b", "Q", "L", "I", "H", "B"):
        try:
            return _np.frombuffer(values, dtype=_np.dtype(typecode))
        except (ValueError, TypeError):  # pragma: no cover - exotic platforms
            return None
    return None


def fold_values(
    values: Sequence[Value],
    interval: Optional[int],
    since: int = 0,
) -> SiteFold:
    """Reduce one site's value run to its :class:`SiteFold`.

    ``interval``/``since`` must describe the TNV table the fold will be
    fed to (:meth:`~repro.core.profile.SiteProfile.record_fold`
    validates them), so chunk splits land exactly where per-event
    recording would clear.
    """
    n = len(values)
    if n == 0:
        return SiteFold(0, None, None, 0, 0, {}, [], interval, since)
    mode = _MODE
    if mode != FOLD_PYTHON:
        a = _as_ndarray(values)
        if a is not None:
            return _fold_numpy(a, interval, since)
        if mode == FOLD_NUMPY:
            if _np is None:
                raise ProfileError(
                    "REPRO_FOLD=numpy but numpy is not importable"
                )
            raise ProfileError(
                f"REPRO_FOLD=numpy cannot fold {type(values).__name__} values"
            )
    if isinstance(values, (list, tuple)):
        return _fold_python(values, interval, since)
    if _np is not None and isinstance(values, _np.ndarray):
        # Forced-python kernel over an ndarray: drop to Python ints so
        # repr-tiebreaks and serialization stay identical.
        return _fold_python(values.tolist(), interval, since)
    return _fold_python(list(values), interval, since)


# ----------------------------------------------------------------------
# shipping (process-parallel fan-out)
# ----------------------------------------------------------------------


def fold_to_payload(fold: SiteFold) -> dict:
    """Primitives-only form of a fold for cross-process shipping.

    The chunk maps flatten to ``(value, count)`` triples-in-lists, so a
    worker's payload is exactly the folded ``(site, value, count)``
    representation the parallel runner ships instead of raw events.
    """
    return {
        "n": fold.n,
        "first": fold.first,
        "last": fold.last,
        "lvp_hits": fold.lvp_hits,
        "zeros": fold.zeros,
        "chunks": [
            (list(counts.items()), chunk_n) for counts, chunk_n in fold.chunks
        ],
        "interval": fold.interval,
        "since": fold.since,
    }


def fold_from_payload(payload: dict) -> SiteFold:
    """Rebuild a :class:`SiteFold` from :func:`fold_to_payload` output."""
    chunks = [
        (dict(pairs), chunk_n) for pairs, chunk_n in payload["chunks"]
    ]
    return SiteFold(
        n=payload["n"],
        first=payload["first"],
        last=payload["last"],
        lvp_hits=payload["lvp_hits"],
        zeros=payload["zeros"],
        counts=_merge_chunk_counts(chunks) if chunks else {},
        chunks=chunks,
        interval=payload["interval"],
        since=payload["since"],
    )
