"""The Top-N-Value (TNV) table.

This is the paper's central data structure (MICRO'97 §3, thesis §III.B).
One TNV table is kept per profile site.  It approximates the site's full
value histogram in constant space:

* The table holds at most ``capacity`` (value, count) entries.
* Recording a value that is already present increments its count.
* Recording a new value inserts it if a slot is free; otherwise the
  value is *dropped* — a pure least-frequently-used table would lock in
  whatever values arrived first.
* To let newly hot values displace stale ones, every ``clear_interval``
  recordings the table is sorted by count and the bottom
  ``capacity - steady`` entries (the *clear part*) are evicted.  The top
  ``steady`` entries (the *steady part*) survive with their counts.

The paper's configuration is a 10-entry table whose bottom half is
cleared every ~2000 executions; those are the defaults here, and the
``fig-tnv-accuracy`` experiment sweeps both knobs.

TNV tables are value-type agnostic: the ISA front end records 64-bit
integers, the Python front end records any hashable object.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Tuple

from repro.errors import ProfileError
from repro.obs.metrics import METRICS as _METRICS

Value = Hashable

DEFAULT_CAPACITY = 10
DEFAULT_STEADY = 5
DEFAULT_CLEAR_INTERVAL = 2000


@dataclass(frozen=True)
class TNVEntry:
    """One (value, count) pair of a TNV table snapshot."""

    value: Value
    count: int


class TNVTable:
    """Bounded top-value histogram with periodic clearing.

    Args:
        capacity: maximum number of distinct values tracked at once.
        steady: number of top entries that survive a clearing pass.
            Must satisfy ``0 <= steady < capacity``; ``steady == 0``
            degenerates to "clear everything", ``capacity - steady`` is
            the size of the paper's *clear part*.
        clear_interval: number of ``record`` calls between clearing
            passes.  ``None`` disables clearing entirely (pure LFU),
            which is the strawman the paper's design improves on.
    """

    __slots__ = (
        "capacity",
        "steady",
        "clear_interval",
        "_entries",
        "_since_clear",
        "_total",
        "_clears",
        # -- health telemetry, maintained at clear boundaries only --
        "_evictions",
        "_promotions",
        "_turnover",
        "_last_turnover",
        "_saturated_clears",
        "_steady_values",
        "_size_after_clear",
    )

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        steady: int = DEFAULT_STEADY,
        clear_interval: int | None = DEFAULT_CLEAR_INTERVAL,
    ) -> None:
        if capacity < 1:
            raise ProfileError(f"TNV capacity must be >= 1, got {capacity}")
        if not 0 <= steady < capacity:
            raise ProfileError(
                f"TNV steady part must satisfy 0 <= steady < capacity, got steady={steady} capacity={capacity}"
            )
        if clear_interval is not None and clear_interval < 1:
            raise ProfileError(f"TNV clear_interval must be >= 1 or None, got {clear_interval}")
        self.capacity = capacity
        self.steady = steady
        self.clear_interval = clear_interval
        self._entries: Dict[Value, int] = {}
        self._since_clear = 0
        self._total = 0
        self._clears = 0
        # Health telemetry (thesis-style churn introspection).  All of
        # it is derived at clear boundaries from state the record path
        # already maintains, so the per-event hot path is untouched.
        self._evictions = 0
        self._promotions = 0
        self._turnover = 0
        self._last_turnover = 0
        self._saturated_clears = 0
        self._steady_values: frozenset = frozenset()
        self._size_after_clear = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record(self, value: Value) -> None:
        """Record one dynamic execution producing ``value``."""
        self._total += 1
        entries = self._entries
        if value in entries:
            entries[value] += 1
        elif len(entries) < self.capacity:
            entries[value] = 1
        # else: table is full and the value is not resident; it is
        # dropped.  The periodic clear below is what re-opens slots.
        if self.clear_interval is not None:
            self._since_clear += 1
            if self._since_clear >= self.clear_interval:
                self.clear_bottom()

    def record_many(self, values: Iterable[Value]) -> None:
        """Record a sequence of dynamic values in order.

        Semantically identical to calling :meth:`record` once per value
        — including the exact positions of clearing passes — but far
        faster: the stream is split into runs that contain no clearing
        boundary and each run is deduplicated once (one ``Counter``
        pass) and folded through :meth:`record_grouped`.
        """
        if not isinstance(values, (list, tuple)):
            values = list(values)
        n = len(values)
        if n == 0:
            return
        interval = self.clear_interval
        if interval is None:
            self.record_grouped(Counter(values), n)
            return
        start = 0
        while start < n:
            end = start + (interval - self._since_clear)
            if end > n:
                end = n
            chunk = values if end - start == n else values[start:end]
            self.record_grouped(Counter(chunk), end - start)
            start = end

    def record_grouped(
        self,
        pairs: "Dict[Value, int] | Iterable[Tuple[Value, int]]",
        n: int | None = None,
    ) -> None:
        """Fold pre-deduplicated ``(value, count)`` pairs into the table.

        This is the columnar fast path: one clear-free group of ``n``
        events arrives already counted, so the table is updated with one
        dict operation per *distinct* value instead of one call per
        event.  For bit-identity with per-event recording the pairs must
        be in **first-appearance order** of the underlying stream —
        which value claims the last free slot depends only on the order
        distinct values first arrive, never on their counts
        (``Counter`` over a run yields exactly this order).

        The group must not span a clearing boundary; callers split runs
        first (:func:`repro.core.fold.fold_values` emits chunks aligned
        to ``clear_interval``).  A clearing pass fires when the group
        lands exactly on the boundary, matching per-event behavior.

        Args:
            pairs: mapping or iterable of ``(value, count)`` pairs with
                positive counts, first-appearance ordered.
            n: total event count of the group (sum of the counts);
                computed when omitted.
        """
        items = pairs.items() if isinstance(pairs, dict) else list(pairs)
        if n is None:
            n = sum(count for _, count in items)
        if n == 0:
            return
        interval = self.clear_interval
        if interval is not None and self._since_clear + n > interval:
            raise ProfileError(
                f"grouped record of {n} events would cross a clearing "
                f"boundary ({self._since_clear}/{interval} since last "
                "clear); split the group at the boundary first"
            )
        # Batch-boundary instrumentation: one call per group, never per
        # event, which is what keeps the disabled-mode overhead at zero
        # on the per-event path (see docs/observability.md).
        _METRICS.inc("tnv.batch_records", n)
        entries = self._entries
        if isinstance(pairs, dict):
            # Resident bumps and admissions are independent: bumping
            # never changes occupancy and admitting never evicts, so
            # probing the handful of residents against the group first
            # and then admitting the first ``free`` unseen values is
            # state-identical (entry order included) to the per-event
            # interleaving — without walking every distinct value.
            if entries:
                get = pairs.get
                for value in entries:
                    count = get(value)
                    if count is not None:
                        entries[value] += count
            free = self.capacity - len(entries)
            if free:
                for value, count in items:
                    if value not in entries:
                        entries[value] = count
                        free -= 1
                        if not free:
                            break
        else:
            free = self.capacity - len(entries)
            for value, count in items:
                if value in entries:
                    entries[value] += count
                elif free:
                    entries[value] = count
                    free -= 1
                # else: full; the value is dropped — the periodic clear
                # is what re-opens slots.
        self._total += n
        if interval is not None:
            self._since_clear += n
            if self._since_clear >= interval:
                self.clear_bottom()

    def record_run(self, value: Value, count: int) -> None:
        """Record ``count`` consecutive executions producing ``value``.

        State-identical to ``count`` :meth:`record` calls: the run is
        split at clearing boundaries and each piece folds as a
        single-pair group.
        """
        if count <= 0:
            return
        interval = self.clear_interval
        if interval is None:
            self.record_grouped(((value, count),), count)
            return
        while count:
            take = interval - self._since_clear
            if take > count:
                take = count
            self.record_grouped(((value, take),), take)
            count -= take

    def clear_bottom(self) -> None:
        """Evict the clear part: keep only the ``steady`` hottest entries.

        Exposed publicly so samplers can force a clear at the end of a
        profiling burst, mirroring the thesis' sampling implementation.

        This is also where the table's health telemetry is folded:
        value turnover (new values inserted since the previous clear),
        eviction churn, clear→steady promotions and table saturation
        are all derivable from the entry dict right here, so the record
        path pays nothing for them.
        """
        self._since_clear = 0
        self._clears += 1
        _METRICS.inc("tnv.clears")
        entries = self._entries
        resident = len(entries)
        # Between clears the entry dict only grows by insertions, so
        # the size delta *is* the number of new values admitted.
        turnover = resident - self._size_after_clear
        self._last_turnover = turnover
        self._turnover += turnover
        if resident >= self.capacity:
            self._saturated_clears += 1
            _METRICS.inc("tnv.saturated_clears")
        if resident <= self.steady:
            promotions = sum(
                1 for value in entries if value not in self._steady_values
            )
            self._promotions += promotions
            if promotions:
                _METRICS.inc("tnv.promotions", promotions)
            self._steady_values = frozenset(entries)
            self._size_after_clear = resident
            return
        evicted = resident - self.steady
        self._evictions += evicted
        _METRICS.inc("tnv.bottom_evictions", evicted)
        survivors = sorted(entries.items(), key=lambda item: (-item[1], repr(item[0])))
        self._entries = dict(survivors[: self.steady])
        promotions = sum(
            1 for value in self._entries if value not in self._steady_values
        )
        self._promotions += promotions
        if promotions:
            _METRICS.inc("tnv.promotions", promotions)
        self._steady_values = frozenset(self._entries)
        self._size_after_clear = self.steady

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def total(self) -> int:
        """Number of ``record`` calls seen (including dropped values)."""
        return self._total

    @property
    def clears(self) -> int:
        """Number of clearing passes performed so far."""
        return self._clears

    @property
    def evictions(self) -> int:
        """Entries evicted by clearing passes, cumulative."""
        return self._evictions

    @property
    def promotions(self) -> int:
        """Values newly promoted into the steady part across clears."""
        return self._promotions

    @property
    def turnover(self) -> int:
        """New values admitted to the table, counted at clears."""
        return self._turnover

    @property
    def last_turnover(self) -> int:
        """New values admitted between the last two clearing passes."""
        return self._last_turnover

    @property
    def saturated_clears(self) -> int:
        """Clearing passes that found the table completely full."""
        return self._saturated_clears

    def health(self) -> dict:
        """Cheap health summary, all derived from clear-boundary state.

        Keys:
            ``resident``/``capacity``: current occupancy.
            ``steady_occupancy``/``clear_occupancy``: how the resident
            entries split between the surviving and evictable parts.
            ``clears``/``evictions``/``promotions``/``turnover``/
            ``last_turnover``/``saturated_clears``: cumulative clear
            telemetry (see the matching properties).
            ``churn``: mean entries evicted per clear — the fraction of
            the clear part cycling each interval is ``churn / (capacity
            - steady)``.
            ``promotion_rate``: mean clear→steady promotions per clear.
        """
        clears = self._clears
        resident = len(self._entries)
        return {
            "resident": resident,
            "capacity": self.capacity,
            "steady": self.steady,
            "steady_occupancy": min(resident, self.steady),
            "clear_occupancy": max(0, resident - self.steady),
            "clears": clears,
            "evictions": self._evictions,
            "promotions": self._promotions,
            "turnover": self._turnover,
            "last_turnover": self._last_turnover,
            "saturated_clears": self._saturated_clears,
            "churn": self._evictions / clears if clears else 0.0,
            "promotion_rate": self._promotions / clears if clears else 0.0,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, value: Value) -> bool:
        return value in self._entries

    def count_of(self, value: Value) -> int:
        """Resident count for ``value`` (0 if not resident)."""
        return self._entries.get(value, 0)

    def top(self, k: int | None = None) -> List[TNVEntry]:
        """The ``k`` hottest resident entries, hottest first.

        Ties are broken deterministically on the value's ``repr`` so
        results are reproducible across runs.
        """
        if k is None:
            k = self.capacity
        ranked = sorted(self._entries.items(), key=lambda item: (-item[1], repr(item[0])))
        return [TNVEntry(value, count) for value, count in ranked[:k]]

    def top_value(self) -> Value | None:
        """The single hottest value, or ``None`` for an empty table."""
        entries = self.top(1)
        return entries[0].value if entries else None

    def estimated_invariance(self, k: int = 1) -> float:
        """Fraction of all executions covered by the top-``k`` entries.

        This is the table's own estimate of ``Inv-Top(k)``: resident
        counts divided by the *true* execution total.  Because counts in
        the clear part are discarded on clearing, the estimate is a
        lower bound on the exact invariance; the ``fig-tnv-accuracy``
        experiment quantifies the gap.
        """
        if self._total == 0:
            return 0.0
        covered = sum(entry.count for entry in self.top(k))
        return min(1.0, covered / self._total)

    def snapshot(self) -> List[TNVEntry]:
        """All resident entries, hottest first."""
        return self.top(self.capacity)

    # ------------------------------------------------------------------
    # combination / persistence
    # ------------------------------------------------------------------

    def merge(self, other: "TNVTable") -> None:
        """Fold ``other``'s resident entries and totals into this table.

        Used when combining profiles from multiple runs (e.g. train and
        test inputs).  The merged table keeps the hottest ``capacity``
        entries of the union.
        """
        _METRICS.inc("tnv.merges")
        merged: Dict[Value, int] = dict(self._entries)
        for value, count in other._entries.items():
            merged[value] = merged.get(value, 0) + count
        ranked = sorted(merged.items(), key=lambda item: (-item[1], repr(item[0])))
        self._entries = dict(ranked[: self.capacity])
        self._total += other._total
        self._clears += other._clears
        self._evictions += other._evictions
        self._promotions += other._promotions
        self._turnover += other._turnover
        self._saturated_clears += other._saturated_clears
        # The merged table starts a fresh clearing phase: the steady
        # set and size baseline describe neither input exactly, so they
        # are re-anchored to the merged entries.
        self._steady_values = frozenset(self._entries)
        self._size_after_clear = len(self._entries)

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (values must be JSON-friendly)."""
        return {
            "capacity": self.capacity,
            "steady": self.steady,
            "clear_interval": self.clear_interval,
            "total": self._total,
            "clears": self._clears,
            "since_clear": self._since_clear,
            "entries": [[entry.value, entry.count] for entry in self.snapshot()],
            "health": {
                "evictions": self._evictions,
                "promotions": self._promotions,
                "turnover": self._turnover,
                "last_turnover": self._last_turnover,
                "saturated_clears": self._saturated_clears,
                "size_after_clear": self._size_after_clear,
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TNVTable":
        """Rebuild a table from :meth:`to_dict` output."""
        table = cls(
            capacity=payload["capacity"],
            steady=payload["steady"],
            clear_interval=payload["clear_interval"],
        )
        entries: List[Tuple[Value, int]] = [tuple(pair) for pair in payload["entries"]]
        table._entries = {value: count for value, count in entries}
        table._total = payload["total"]
        # Older snapshots predate these fields; default to a fresh
        # clearing phase rather than failing to load them.
        table._clears = payload.get("clears", 0)
        table._since_clear = payload.get("since_clear", 0)
        health = payload.get("health", {})
        table._evictions = health.get("evictions", 0)
        table._promotions = health.get("promotions", 0)
        table._turnover = health.get("turnover", 0)
        table._last_turnover = health.get("last_turnover", 0)
        table._saturated_clears = health.get("saturated_clears", 0)
        table._size_after_clear = health.get("size_after_clear", len(table._entries))
        # The concrete steady set is not serialized (it would leak raw
        # values into snapshots that only promise top entries); restored
        # tables re-anchor promotions at their next clear.
        table._steady_values = frozenset(table._entries)
        return table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = ", ".join(f"{e.value!r}:{e.count}" for e in self.top(3))
        return f"TNVTable(total={self._total}, top=[{head}])"
