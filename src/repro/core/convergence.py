"""Convergence detection for value-profile estimates (thesis Ch. VIII).

The thesis' "intelligent" sampler stops paying full profiling cost for a
site once that site's invariance estimate has stopped moving.  The
criterion used there — and implemented here — is: take the invariance
estimate at the end of every profiling burst; if it has changed by less
than a threshold for several consecutive bursts, the site has
*converged*.  A later re-check that finds the estimate has drifted marks
the site unconverged again (programs have phases).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class ConvergenceConfig:
    """Knobs of the convergence criterion.

    Attributes:
        delta: maximum absolute change in the invariance estimate (a
            ratio in [0, 1]) between consecutive checkpoints for the
            checkpoint to count as "stable".
        patience: number of consecutive stable checkpoints required
            before declaring convergence.
        reset_delta: drift (absolute change versus the estimate frozen
            at convergence) that un-converges a site during re-checks.
    """

    delta: float = 0.02
    patience: int = 3
    reset_delta: float = 0.05


class ConvergenceDetector:
    """Tracks one site's invariance estimate across checkpoints."""

    __slots__ = ("config", "_previous", "_stable_streak", "_converged_at", "history")

    def __init__(self, config: Optional[ConvergenceConfig] = None) -> None:
        self.config = config or ConvergenceConfig()
        self._previous: Optional[float] = None
        self._stable_streak = 0
        self._converged_at: Optional[float] = None
        #: estimates observed at every checkpoint, for convergence plots
        self.history: List[float] = []

    @property
    def converged(self) -> bool:
        return self._converged_at is not None

    @property
    def converged_estimate(self) -> Optional[float]:
        """The estimate frozen when convergence was declared."""
        return self._converged_at

    def observe(self, estimate: float) -> bool:
        """Feed a checkpoint estimate; returns the new converged state.

        While unconverged, consecutive estimates within ``delta`` build
        a streak; ``patience`` stable checkpoints declare convergence.
        While converged, an estimate drifting more than ``reset_delta``
        from the frozen value resets the detector.
        """
        self.history.append(estimate)
        if self._converged_at is not None:
            if abs(estimate - self._converged_at) > self.config.reset_delta:
                self.reset()
                self._previous = estimate
            return self.converged

        if self._previous is not None and abs(estimate - self._previous) <= self.config.delta:
            self._stable_streak += 1
        else:
            self._stable_streak = 0
        self._previous = estimate
        if self._stable_streak >= self.config.patience:
            self._converged_at = estimate
        return self.converged

    def reset(self) -> None:
        """Forget convergence (the site entered a new phase)."""
        self._previous = None
        self._stable_streak = 0
        self._converged_at = None


@dataclass
class ConvergencePoint:
    """One point of a convergence curve: estimate after ``executions``."""

    executions: int
    estimate: float
    exact: float = field(default=0.0)

    @property
    def error(self) -> float:
        return abs(self.estimate - self.exact)


def convergence_curve(values, checkpoint: int = 1000, top_k: int = 1) -> List[ConvergencePoint]:
    """Invariance estimate as a function of executions profiled.

    Replays ``values`` through an exact histogram, snapshotting
    ``Inv-Top(top_k)`` every ``checkpoint`` executions.  The final
    estimate is attached to every point as ``exact`` so callers can plot
    estimation error directly (the thesis' convergence figures).
    """
    from repro.core.metrics import ValueStreamStats

    stats = ValueStreamStats()
    points: List[ConvergencePoint] = []
    for index, value in enumerate(values, start=1):
        stats.record(value)
        if index % checkpoint == 0:
            points.append(ConvergencePoint(executions=index, estimate=stats.invariance(top_k)))
    if not points or points[-1].executions != stats.total:
        points.append(ConvergencePoint(executions=stats.total, estimate=stats.invariance(top_k)))
    final = points[-1].estimate
    return [ConvergencePoint(p.executions, p.estimate, final) for p in points]
