"""Value-profile metrics (thesis §III.C).

The thesis reports four metrics per site, plus an execution-weighted
aggregate across sites.  This module provides both:

* :class:`ValueStreamStats` — an exact, online accumulator over a value
  stream.  It maintains the full value histogram, the last value (for
  the LVP metric), and the zero count.  This is the *reference*
  implementation the bounded TNV table is measured against.
* :class:`SiteMetrics` — the per-site result row: ``LVP``,
  ``Inv-Top(1)``, ``Inv-Top(N)`` ("Inv-All" in Table V.5's caption),
  ``Diff(L/I)`` and ``%Zeros``.
* :func:`weighted_mean` / :func:`aggregate_metrics` — the paper weights
  every per-program number by execution frequency, so a load executed a
  million times influences the average a million times more than a load
  executed once.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import islice
from operator import eq
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

Value = Hashable

#: Number of top values contributing to "Inv-All" — the size of the
#: paper's TNV table.
TOP_N = 10

#: Values considered "zero" for the %Zeros metric.  The ISA front end
#: records machine integers; the Python front end may record ``None``
#: or ``0.0`` which play the same "trivial value" role.
_ZERO_VALUES = frozenset({0})


def is_zero(value: Value) -> bool:
    """Whether ``value`` counts toward the %Zeros metric."""
    try:
        return value in _ZERO_VALUES or value == 0
    except TypeError:  # unhashable comparisons cannot happen; non-numeric can
        return False


class ValueStreamStats:
    """Exact online statistics over one site's dynamic value stream.

    Unlike :class:`repro.core.tnv.TNVTable` this keeps the *full*
    histogram, so its metrics are exact.  It exists (a) as ground truth
    for TNV-accuracy experiments and (b) to compute LVP, which a TNV
    table cannot produce because it stores no ordering information.
    """

    __slots__ = (
        "_histogram",
        "_total",
        "_zeros",
        "_lvp_hits",
        "_last",
        "_has_last",
        "_first",
        "_has_first",
    )

    def __init__(self) -> None:
        self._histogram: Counter = Counter()
        self._total = 0
        self._zeros = 0
        self._lvp_hits = 0
        self._last: Value = None
        self._has_last = False
        self._first: Value = None
        self._has_first = False

    def record(self, value: Value) -> None:
        """Record one dynamic execution producing ``value``."""
        self._total += 1
        self._histogram[value] += 1
        if is_zero(value):
            self._zeros += 1
        if self._has_last and value == self._last:
            self._lvp_hits += 1
        if not self._has_first:
            self._first = value
            self._has_first = True
        self._last = value
        self._has_last = True

    def record_many(self, values: Iterable[Value]) -> None:
        """Record a run of dynamic values in order.

        State-identical to per-value :meth:`record` calls, but counts
        duplicates with one C-level pass and updates the LVP adjacency
        count pairwise instead of paying a Python call per event.
        """
        if not isinstance(values, (list, tuple)):
            values = list(values)
        if not values:
            return
        counts = Counter(values)
        zeros = 0
        for value, count in counts.items():
            if is_zero(value):
                zeros += count
        # map+operator.eq runs the adjacency scan at C speed; the old
        # zip genexpr paid a Python-level comparison per event.
        hits = sum(map(eq, values, islice(values, 1, None))) if len(values) > 1 else 0
        self.record_parts(
            counts=counts,
            n=len(values),
            zeros=zeros,
            lvp_hits=hits,
            first=values[0],
            last=values[-1],
        )

    def record_run(self, value: Value, count: int) -> None:
        """Record ``count`` consecutive executions producing ``value``.

        State-identical to ``count`` :meth:`record` calls: the run
        contributes ``count - 1`` internal last-value hits, plus the
        run-boundary hit when it continues the previous value.
        """
        if count <= 0:
            return
        self.record_parts(
            counts={value: count},
            n=count,
            zeros=count if is_zero(value) else 0,
            lvp_hits=count - 1,
            first=value,
            last=value,
        )

    def record_grouped(self, pairs: Iterable[Tuple[Value, int]]) -> None:
        """Record run-length ``(value, count)`` pairs in stream order.

        Each pair stands for ``count`` consecutive executions of
        ``value``; the expanded stream is recorded exactly, including
        last-value hits across pair boundaries (adjacent pairs may
        carry equal values).
        """
        for value, count in pairs:
            self.record_run(value, count)

    def record_parts(
        self,
        counts: Dict[Value, int],
        n: int,
        zeros: int,
        lvp_hits: int,
        first: Value,
        last: Value,
    ) -> None:
        """Fold an already-reduced run into the statistics.

        The columnar fast path: a run's histogram, zero count and
        *internal* adjacency hits arrive precomputed (one reduction,
        shared with the TNV table — see :mod:`repro.core.fold`); this
        method only splices the run onto the stream recorded so far by
        adding the boundary last-value hit and advancing first/last.
        """
        if n == 0:
            return
        self._histogram.update(counts)
        self._total += n
        self._zeros += zeros
        self._lvp_hits += lvp_hits
        if self._has_last and first == self._last:
            self._lvp_hits += 1
        if not self._has_first:
            self._first = first
            self._has_first = True
        self._last = last
        self._has_last = True

    # ------------------------------------------------------------------

    @property
    def total(self) -> int:
        return self._total

    @property
    def distinct(self) -> int:
        """``Diff(L/I)`` — number of different values seen."""
        return len(self._histogram)

    @property
    def histogram(self) -> Counter:
        """The full value histogram (do not mutate)."""
        return self._histogram

    def top(self, k: int) -> List[Tuple[Value, int]]:
        """Top-``k`` (value, count) pairs, hottest first, deterministic."""
        ranked = sorted(self._histogram.items(), key=lambda item: (-item[1], repr(item[0])))
        return ranked[:k]

    def invariance(self, k: int = 1) -> float:
        """``Inv-Top(k)``: fraction of executions covered by the top-k values."""
        if self._total == 0:
            return 0.0
        return sum(count for _, count in self.top(k)) / self._total

    def lvp(self) -> float:
        """Last-value predictability: P(value == previous value).

        The first execution has no predecessor and is excluded from the
        denominator, matching a last-value predictor that cannot predict
        its first encounter.
        """
        if self._total <= 1:
            return 0.0
        return self._lvp_hits / (self._total - 1)

    def pct_zeros(self) -> float:
        """Fraction of executions whose value was zero."""
        if self._total == 0:
            return 0.0
        return self._zeros / self._total

    def merge(self, other: "ValueStreamStats") -> None:
        """Fold another stream's histogram into this one.

        The merged state matches recording ``other``'s stream directly
        after this one: when ``other``'s first value equals this
        stream's last value, the run boundary itself is an LVP hit and
        is counted.
        """
        self._histogram.update(other._histogram)
        self._total += other._total
        self._zeros += other._zeros
        self._lvp_hits += other._lvp_hits
        if self._has_last and other._has_first and other._first == self._last:
            self._lvp_hits += 1
        if not self._has_first:
            self._first = other._first
            self._has_first = other._has_first
        if other._has_last:
            self._last = other._last
            self._has_last = True

    def metrics(self, top_n: int = TOP_N) -> "SiteMetrics":
        """Freeze the current state into a :class:`SiteMetrics` row."""
        return SiteMetrics(
            executions=self._total,
            lvp=self.lvp(),
            inv_top1=self.invariance(1),
            inv_top_n=self.invariance(top_n),
            distinct=self.distinct,
            pct_zeros=self.pct_zeros(),
        )


@dataclass(frozen=True)
class SiteMetrics:
    """One row of the paper's per-site results.

    Attributes:
        executions: dynamic execution count of the site.
        lvp: last-value predictability in [0, 1].
        inv_top1: ``Inv-Top(1)`` invariance in [0, 1].
        inv_top_n: ``Inv-Top(N)`` / "Inv-All" invariance in [0, 1].
        distinct: ``Diff(L/I)`` — number of different values.
        pct_zeros: fraction of zero values in [0, 1].
    """

    executions: int
    lvp: float
    inv_top1: float
    inv_top_n: float
    distinct: int
    pct_zeros: float

    def as_percentages(self) -> dict:
        """Rendering helper: ratios scaled to percentages."""
        return {
            "executions": self.executions,
            "LVP": 100.0 * self.lvp,
            "Inv-Top1": 100.0 * self.inv_top1,
            "Inv-All": 100.0 * self.inv_top_n,
            "Diff": self.distinct,
            "%Zeros": 100.0 * self.pct_zeros,
        }


def weighted_mean(pairs: Iterable[Tuple[float, float]]) -> float:
    """Mean of ``value`` weighted by ``weight`` over (value, weight) pairs."""
    total_weight = 0.0
    accum = 0.0
    for value, weight in pairs:
        accum += value * weight
        total_weight += weight
    if total_weight == 0:
        return 0.0
    return accum / total_weight


def aggregate_metrics(rows: Sequence[SiteMetrics]) -> SiteMetrics:
    """Execution-weighted aggregate across sites (the paper's averages).

    ``distinct`` is aggregated as the execution-weighted mean number of
    different values, rounded — the thesis reports "average number of
    different values per load".
    """
    executions = sum(row.executions for row in rows)
    if executions == 0:
        return SiteMetrics(0, 0.0, 0.0, 0.0, 0, 0.0)

    def wavg(extract) -> float:
        return weighted_mean((extract(row), row.executions) for row in rows)

    return SiteMetrics(
        executions=executions,
        lvp=wavg(lambda r: r.lvp),
        inv_top1=wavg(lambda r: r.inv_top1),
        inv_top_n=wavg(lambda r: r.inv_top_n),
        distinct=round(wavg(lambda r: float(r.distinct))),
        pct_zeros=wavg(lambda r: r.pct_zeros),
    )


def mean_unweighted(rows: Sequence[SiteMetrics]) -> SiteMetrics:
    """Plain (per-site) mean, for contrast with the weighted aggregate."""
    if not rows:
        return SiteMetrics(0, 0.0, 0.0, 0.0, 0, 0.0)
    n = len(rows)
    return SiteMetrics(
        executions=sum(r.executions for r in rows) // n,
        lvp=sum(r.lvp for r in rows) / n,
        inv_top1=sum(r.inv_top1 for r in rows) / n,
        inv_top_n=sum(r.inv_top_n for r in rows) / n,
        distinct=round(sum(r.distinct for r in rows) / n),
        pct_zeros=sum(r.pct_zeros for r in rows) / n,
    )
