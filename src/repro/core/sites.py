"""Profile-site identity.

A *site* is the unit the paper profiles: a static instruction, a load, a
memory location, or a procedure parameter.  The profiling core is
deliberately agnostic about where values come from — a site is just a
hashable identity plus a little descriptive metadata — so the same TNV
machinery serves the ISA front end (ATOM-style instrumentation of the
VPA simulator), the Python front end, and synthetic traces in tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SiteKind(str, enum.Enum):
    """What program entity a profile site refers to.

    The thesis profiles four families of entities; ``PYTHON`` covers the
    host-language front end and ``CALL`` the per-call-site view used by
    the specializer.  A ``str`` mixin so :class:`Site` tuples order
    naturally and kinds serialize as plain strings.
    """

    INSTRUCTION = "instruction"
    LOAD = "load"
    MEMORY = "memory"
    PARAMETER = "parameter"
    RETURN = "return"
    CALL = "call"
    PYTHON = "python"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class Site:
    """Identity of one profiled entity.

    Attributes:
        kind: the family of entity (instruction, load, memory, ...).
        program: the workload or module the site belongs to.
        procedure: enclosing procedure (empty for memory locations).
        label: entity-specific discriminator — the instruction's program
            counter rendered as text, a memory address, a parameter
            index, or a Python variable name.
        opcode: mnemonic of the defining instruction when applicable;
            used by the per-instruction-class breakdown (Table V.3).
    """

    kind: SiteKind
    program: str
    procedure: str = ""
    label: str = ""
    opcode: str = field(default="", compare=False)

    def qualified_name(self) -> str:
        """Human-readable ``program:procedure+label`` identifier."""
        parts = [self.program]
        if self.procedure:
            parts.append(self.procedure)
        name = ":".join(parts)
        if self.label:
            name = f"{name}+{self.label}"
        return name

    def __str__(self) -> str:
        return f"{self.kind.value}({self.qualified_name()})"


def instruction_site(program: str, procedure: str, pc: int, opcode: str) -> Site:
    """Site for the destination register of a static instruction."""
    return Site(
        kind=SiteKind.INSTRUCTION,
        program=program,
        procedure=procedure,
        label=str(pc),
        opcode=opcode,
    )


def load_site(program: str, procedure: str, pc: int, opcode: str = "ld") -> Site:
    """Site for the value fetched by a static load instruction."""
    return Site(
        kind=SiteKind.LOAD,
        program=program,
        procedure=procedure,
        label=str(pc),
        opcode=opcode,
    )


def memory_site(program: str, address: int) -> Site:
    """Site for one memory word, profiled on every store to it."""
    return Site(kind=SiteKind.MEMORY, program=program, label=hex(address))


def parameter_site(program: str, procedure: str, index: int) -> Site:
    """Site for the ``index``-th argument of ``procedure``."""
    return Site(
        kind=SiteKind.PARAMETER,
        program=program,
        procedure=procedure,
        label=f"arg{index}",
    )


def return_site(program: str, procedure: str) -> Site:
    """Site for the value a procedure returns (``r1`` at ``ret``)."""
    return Site(kind=SiteKind.RETURN, program=program, procedure=procedure, label="ret")


def python_site(module: str, function: str, label: str) -> Site:
    """Site for a Python-level value (argument, return, or assignment)."""
    return Site(kind=SiteKind.PYTHON, program=module, procedure=function, label=label)
