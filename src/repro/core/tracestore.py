"""Simulate-once / replay-many event-trace store.

One instrumented simulation of a (program, input) pair produces a
totally ordered stream of (site, value) events covering *every* profile
family — defining instructions, loads, memory stores, call parameters,
returns.  Everything the analysis layer derives (TNV profiles, per-site
value traces, sampling sweeps, prediction-table simulations) is a pure
function of that stream, so the suite only ever needs to pay the
interpreter cost once per input and can replay the stream for each
downstream consumer.

:class:`EventTrace` is the captured stream in columnar form: an
interned site table, a ``uint32`` site-id column and an ``int64`` value
column (the ISA is 64-bit two's complement, so every event value fits).
Replays filter by :class:`~repro.isa.instrument.ProfileTarget` — each
family's sub-stream is exactly the event sequence a live observer
subscribed to that family would have seen, in the same order.

On disk a trace is one pickle under the source-hash-keyed cache
(:mod:`repro.core.diskcache`): the site table pickled as-is and the two
columns as zlib-compressed raw bytes.  The repetitive site-id column
compresses to a few percent; values are stored at level 1 — cheap, and
still a large win on the mostly-small integers the workloads produce.
"""

from __future__ import annotations

import zlib
from array import array
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.core import fold as foldmod
from repro.core.fold import SiteFold, fold_values
from repro.core.profile import ProfileDatabase, TNVConfig
from repro.core.sites import Site, SiteKind
from repro.errors import ReproError
from repro.isa.instrument import ALL_TARGETS, ProfileTarget, ValueProfiler
from repro.isa.machine import MachineObserver
from repro.obs.flight import FLIGHT as _FLIGHT
from repro.obs.metrics import METRICS as _METRICS
from repro.obs.timeseries import TIMESERIES as _TIMESERIES

#: which site kind each profile target's events carry.  CALL/PYTHON
#: sites never flow through the machine-event capture path.
TARGET_KINDS: Dict[ProfileTarget, SiteKind] = {
    ProfileTarget.INSTRUCTIONS: SiteKind.INSTRUCTION,
    ProfileTarget.LOADS: SiteKind.LOAD,
    ProfileTarget.MEMORY: SiteKind.MEMORY,
    ProfileTarget.PARAMETERS: SiteKind.PARAMETER,
    ProfileTarget.RETURNS: SiteKind.RETURN,
}

#: bumped when the serialized trace layout changes.
TRACE_FORMAT_VERSION = 1


class TraceStoreError(ReproError):
    """A trace store payload was malformed."""


@dataclass
class EventTrace:
    """The full event stream of one instrumented simulation.

    Attributes:
        program: workload name.
        variant: input-set variant (``train``/``test``).
        scale: input-size multiplier the stream was captured at.
        sites: interned site table; ``site_ids`` indexes into it.
        site_ids: per-event site index, in program order.
        values: per-event value, in program order.
        result: the simulation's :class:`~repro.isa.machine.RunResult`.
        dataset: the exact input/expected-output pair simulated.
        meta: capture provenance (engine, elapsed seconds, ...).
    """

    program: str
    variant: str
    scale: float
    sites: List[Site]
    site_ids: array
    values: array
    result: object
    dataset: object
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.site_ids)

    # ------------------------------------------------------------------
    # replay views
    # ------------------------------------------------------------------

    def _wanted(self, targets: Iterable[ProfileTarget]) -> List[bool]:
        kinds = {TARGET_KINDS[t] for t in targets}
        return [site.kind in kinds for site in self.sites]

    def events(
        self, targets: Iterable[ProfileTarget]
    ) -> Iterator[Tuple[Site, int]]:
        """(site, value) events of the selected families, in program order.

        This is the exact stream a live observer subscribed to
        ``targets`` would have seen — cross-site interleaving preserved,
        which global-order consumers (finite prediction tables, sampling
        policies with shared state) depend on.

        With the numpy kernel active the family filter runs vectorized
        over the raw columns and the returned generator only pays the
        zip; the values are plain Python ints either way.
        """
        wanted = self._wanted(targets)
        sites = self.sites
        cols = self._filtered_columns(wanted)
        if cols is not None:
            sids, values = cols
            return ((sites[sid], value) for sid, value in zip(sids, values))
        return (
            (sites[sid], value)
            for sid, value in zip(self.site_ids, self.values)
            if wanted[sid]
        )

    def _filtered_columns(
        self, wanted: List[bool]
    ) -> Optional[Tuple[List[int], List[int]]]:
        """Family-filtered (site_ids, values) as Python-int lists.

        Vectorized mask + ``tolist`` when the numpy kernel is active;
        ``None`` otherwise (callers keep their per-event loop, which
        beats converting the columns by hand).
        """
        np = foldmod.numpy_module() if foldmod.kernel_name() == foldmod.FOLD_NUMPY else None
        if np is None:
            return None
        sids = np.frombuffer(self.site_ids, dtype=np.uint32)
        values = np.frombuffer(self.values, dtype=np.int64)
        mask = np.asarray(wanted, dtype=bool)[sids]
        if mask.all():
            return sids.tolist(), values.tolist()
        return sids[mask].tolist(), values[mask].tolist()

    def site_values(
        self, targets: Iterable[ProfileTarget]
    ) -> List[Tuple[Site, List[int]]]:
        """Per-site value runs, sites in order of first appearance.

        First-appearance ordering matches what any per-event consumer's
        site dict would have ended up with, so replayed dictionaries
        iterate identically to live-collected ones.
        """
        wanted = self._wanted(targets)
        sites = self.sites
        sink: List[Optional[callable]] = [None] * len(sites)
        order: List[int] = []
        runs: List[Optional[List[int]]] = [None] * len(sites)
        drop = _discard
        for sid, value in zip(self.site_ids, self.values):
            append = sink[sid]
            if append is None:
                if wanted[sid]:
                    run: List[int] = []
                    runs[sid] = run
                    order.append(sid)
                    append = sink[sid] = run.append
                else:
                    append = sink[sid] = drop
            append(value)
        return [(sites[sid], runs[sid]) for sid in order]

    def site_folds(
        self, targets: Iterable[ProfileTarget], interval: Optional[int]
    ) -> List[Tuple[Site, SiteFold]]:
        """Per-site folded runs, sites in order of first appearance.

        The columnar replay path: each site's value run is reduced once
        to its :class:`~repro.core.fold.SiteFold` (grouped counts split
        at ``interval`` boundaries, adjacency/zero scalars), so the
        profile fold downstream touches one object per *distinct* value
        instead of one per event.  Every fold assumes a fresh table
        (``since == 0``), which is what replay always builds.

        With the numpy kernel active the per-site gather itself is
        vectorized — stable argsort over the site-id column, group
        split, first-appearance reordering — and each group folds as an
        ndarray without ever becoming a Python list.
        """
        wanted = self._wanted(targets)
        np = foldmod.numpy_module() if foldmod.kernel_name() == foldmod.FOLD_NUMPY else None
        if np is not None:
            return self._site_folds_numpy(np, wanted, interval)
        return [
            (site, fold_values(values, interval))
            for site, values in self.site_values(targets)
        ]

    def _site_folds_numpy(self, np, wanted: List[bool], interval: Optional[int]):
        sids = np.frombuffer(self.site_ids, dtype=np.uint32)
        values = np.frombuffer(self.values, dtype=np.int64)
        mask = np.asarray(wanted, dtype=bool)[sids]
        if not mask.all():
            sids = sids[mask]
            values = values[mask]
        if sids.shape[0] == 0:
            return []
        # Stable sort keeps each site's events in program order; the
        # first element of every group is therefore the site's earliest
        # event, so ordering groups by that element's original position
        # reproduces first-appearance order.
        perm = np.argsort(sids, kind="stable")
        sorted_sids = sids[perm]
        sorted_values = values[perm]
        boundaries = np.flatnonzero(sorted_sids[1:] != sorted_sids[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [sorted_sids.shape[0]]))
        order = np.argsort(perm[starts], kind="stable")
        sites = self.sites
        out = []
        for group in order.tolist():
            start = int(starts[group])
            end = int(ends[group])
            site = sites[int(sorted_sids[start])]
            out.append((site, fold_values(sorted_values[start:end], interval)))
        return out

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """Pickle-friendly dict with compressed event columns."""
        return {
            "format": TRACE_FORMAT_VERSION,
            "program": self.program,
            "variant": self.variant,
            "scale": self.scale,
            "sites": self.sites,
            "site_ids": zlib.compress(self.site_ids.tobytes(), 1),
            "values": zlib.compress(self.values.tobytes(), 1),
            "result": self.result,
            "dataset": self.dataset,
            "meta": self.meta,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "EventTrace":
        if payload.get("format") != TRACE_FORMAT_VERSION:
            raise TraceStoreError(
                f"unsupported trace format {payload.get('format')!r}"
            )
        site_ids = array("I")
        site_ids.frombytes(zlib.decompress(payload["site_ids"]))
        values = array("q")
        values.frombytes(zlib.decompress(payload["values"]))
        if len(site_ids) != len(values):
            raise TraceStoreError(
                f"column length mismatch: {len(site_ids)} ids vs "
                f"{len(values)} values"
            )
        return cls(
            program=payload["program"],
            variant=payload["variant"],
            scale=payload["scale"],
            sites=payload["sites"],
            site_ids=site_ids,
            values=values,
            result=payload["result"],
            dataset=payload["dataset"],
            meta=payload.get("meta", {}),
        )


def _discard(value) -> None:
    """Append-sink for events outside the replayed families."""


class TraceCaptureObserver(MachineObserver):
    """Observer that records every profile event into event columns.

    Site interning and event-family fan-out are delegated to an inner
    :class:`ValueProfiler` subscribed to every target, so the captured
    stream is exactly the union of what per-family observers would see.
    """

    def __init__(self, program) -> None:
        self._profiler = ValueProfiler(program, recorder=self, targets=ALL_TARGETS)
        self.sites: List[Site] = []
        self.site_ids: array = array("I")
        self.values: array = array("q")
        self._index: Dict[Site, int] = {}

    # Recorder protocol (the inner ValueProfiler writes into us).
    def record(self, site: Site, value: Hashable) -> None:
        index = self._index
        sid = index.get(site)
        if sid is None:
            sid = index[site] = len(self.sites)
            self.sites.append(site)
        self.site_ids.append(sid)
        self.values.append(value)

    # MachineObserver interface — delegate to the site-interning profiler.
    def on_define(self, inst, value) -> None:
        self._profiler.on_define(inst, value)

    def on_load(self, inst, address, value) -> None:
        self._profiler.on_load(inst, address, value)

    def on_store(self, inst, address, value) -> None:
        self._profiler.on_store(inst, address, value)

    def on_call(self, procedure, args, call_site=-1) -> None:
        self._profiler.on_call(procedure, args, call_site)

    def on_return(self, procedure, value) -> None:
        self._profiler.on_return(procedure, value)

    # Threaded-engine binding — reuse the inner profiler's site logic.
    def bind_define(self, inst):
        return self._profiler.bind_define(inst)

    def bind_load(self, inst):
        return self._profiler.bind_load(inst)

    def bind_store(self, inst):
        return self._profiler.bind_store(inst)

    def bind_call(self, procedure, call_pc):
        return self._profiler.bind_call(procedure, call_pc)

    def bind_return(self, procedure):
        return self._profiler.bind_return(procedure)


# ----------------------------------------------------------------------
# replay consumers
# ----------------------------------------------------------------------


def replay_profile(
    trace: EventTrace,
    targets: Iterable[ProfileTarget],
    config: Optional[TNVConfig] = None,
    exact: bool = True,
    name: str = "",
) -> ProfileDatabase:
    """Rebuild the :class:`ProfileDatabase` a live profiler would produce.

    Every profiling structure keeps per-site state only, so feeding each
    site's run in one piece yields a database state-identical to
    per-event recording.  In grouped fold mode (the default) the run
    never materializes as per-event Python objects at all: the trace
    folds each site columnarly (:meth:`EventTrace.site_folds`) and the
    database consumes grouped ``(value, count)`` chunks.  The flight
    recorder needs the raw event stream, so an enabled recorder — and
    ``REPRO_FOLD=event`` — falls back to the per-site batch path.
    """
    database = ProfileDatabase(config=config, exact=exact, name=name)
    events = 0
    if foldmod.grouped_enabled() and not _FLIGHT.enabled:
        folds = trace.site_folds(targets, database.config.clear_interval)
        chunks = 0
        for site, fold in folds:
            events += fold.n
            chunks += len(fold.chunks)
            database.record_fold(site, fold)
        if _METRICS.enabled:
            _METRICS.inc("tracestore.fold_events", events)
            _METRICS.inc("tracestore.fold_sites", len(folds))
            _METRICS.inc("tracestore.fold_chunks", chunks)
            _METRICS.gauge("tracestore.fold_mode", foldmod.fold_mode_gauge())
    else:
        flight = _FLIGHT if _FLIGHT.enabled else None
        for site, values in trace.site_values(targets):
            events += len(values)
            if flight is not None:
                flight.record_batch(site, values)
            database.record_batch(site, values)
    if _METRICS.enabled:
        _METRICS.inc("tracestore.replays")
        _METRICS.inc("tracestore.replay_events", events)
    return database


def replay_site_traces(
    trace: EventTrace,
    targets: Iterable[ProfileTarget],
    max_per_site: Optional[int] = None,
) -> Tuple[Dict[Site, List[int]], int]:
    """Rebuild per-site value traces; returns ``(traces, dropped)``.

    Equivalent to running a
    :class:`~repro.isa.instrument.ValueTraceCollector` live: same dict
    iteration order (sites in first-event order), same per-site caps,
    same ``dropped`` count.
    """
    traces: Dict[Site, List[int]] = {}
    dropped = 0
    events = 0
    flight = _FLIGHT if _FLIGHT.enabled else None
    for site, values in trace.site_values(targets):
        events += len(values)
        if flight is not None:
            flight.record_batch(site, values)
        if max_per_site is not None and len(values) > max_per_site:
            dropped += len(values) - max_per_site
            values = values[:max_per_site]
        traces[site] = values
    if _METRICS.enabled:
        _METRICS.inc("tracestore.replays")
        _METRICS.inc("tracestore.replay_events", events)
    _TIMESERIES.advance(events)
    return traces, dropped


def replay_global_events(
    trace: EventTrace,
    targets: Iterable[ProfileTarget],
    max_events: Optional[int] = None,
) -> Tuple[List[Tuple[Site, int]], int]:
    """Rebuild a global-order event list; returns ``(events, dropped)``.

    Equivalent to a live
    :class:`~repro.isa.instrument.GlobalTraceCollector` with the same
    ``max_events`` cap.
    """
    events: List[Tuple[Site, int]] = []
    dropped = 0
    flight = _FLIGHT if _FLIGHT.enabled else None
    for event in trace.events(targets):
        if flight is not None:
            flight.record(*event)
        if max_events is not None and len(events) >= max_events:
            dropped += 1
            continue
        events.append(event)
    if _METRICS.enabled:
        _METRICS.inc("tracestore.replays")
        _METRICS.inc("tracestore.replay_events", len(events) + dropped)
    _TIMESERIES.advance(len(events) + dropped)
    return events, dropped
