"""Persistent source-hash-keyed pickle cache.

One small module owns the on-disk cache layout so every cached artifact
(profiled runs, value traces, event traces) shares the same invalidation
rule: every key embeds a hash of the entire ``repro`` source tree, so
editing any module silently invalidates all derived results — the only
safe default for a cache of computed data.

Layout: ``cache_dir()/{kind}-{sha256(key)[:32]}.pkl``, one pickle per
entry, written atomically (temp file + ``os.replace``).  ``kind`` names
the artifact family (``profile``, ``trace``, ``events``) purely so a
directory listing is self-describing; the hash alone is the identity.

``REPRO_CACHE_DIR`` overrides the cache location and ``REPRO_NO_CACHE``
disables the cache entirely; both are read at import time, and the
toggle can be flipped per-process via :func:`set_cache_enabled`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Optional, Tuple

#: bumped when any cached payload layout changes.
CACHE_VERSION = 1

_CACHE_ENABLED = os.environ.get("REPRO_NO_CACHE", "") == ""
_SOURCE_HASH: Optional[str] = None


def cache_dir() -> Path:
    """Where persistent pickles live.

    ``REPRO_CACHE_DIR`` overrides the default of
    ``~/.cache/repro-value-profiling``.
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-value-profiling"


def cache_enabled() -> bool:
    """Whether the persistent disk cache is consulted and written."""
    return _CACHE_ENABLED


def set_cache_enabled(enabled: bool) -> None:
    """Globally enable/disable the persistent disk cache."""
    global _CACHE_ENABLED
    _CACHE_ENABLED = enabled


@contextmanager
def caching_disabled():
    """Context manager: run with the disk cache off (benchmarks use
    this so every measured run pays its real profiling cost)."""
    previous = _CACHE_ENABLED
    set_cache_enabled(False)
    try:
        yield
    finally:
        set_cache_enabled(previous)


def source_tree_hash() -> str:
    """Hash of every ``repro`` source file, computed once per process.

    Part of every disk-cache key: editing any module under the package
    silently invalidates all cached entries.
    """
    global _SOURCE_HASH
    if _SOURCE_HASH is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _SOURCE_HASH = digest.hexdigest()
    return _SOURCE_HASH


def cache_path(kind: str, key: Tuple) -> Path:
    """Deterministic entry path for ``(kind, key)`` under today's source."""
    raw = repr((CACHE_VERSION, source_tree_hash(), kind, key)).encode()
    return cache_dir() / f"{kind}-{hashlib.sha256(raw).hexdigest()[:32]}.pkl"


def cache_load(path: Path):
    """Best-effort read of one cache entry; corrupt entries read as misses."""
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except (OSError, pickle.PickleError, EOFError, AttributeError):
        return None


def cache_store(path: Path, payload) -> None:
    """Best-effort atomic write; a full disk never fails the producing run."""
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except (OSError, pickle.PickleError):
        pass


def clear_disk_cache() -> int:
    """Delete every persistent cache entry; returns the number removed."""
    removed = 0
    directory = cache_dir()
    if directory.is_dir():
        for path in directory.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed
