"""Deep-dive profiling of one workload across every site kind.

Profiles the ``li`` bytecode interpreter (the suite's Xlisp analogue)
for instruction values, load values, memory locations and procedure
parameters; shows the invariance distribution, per-procedure hot spots,
and profile persistence (save to JSON, reload, verify).

Run with::

    python examples/profile_isa_workload.py
"""

import tempfile
from pathlib import Path

from repro.analysis import bar_chart, invariance_buckets
from repro.core import ProfileDatabase, SiteKind
from repro.isa import ProfileTarget
from repro.workloads import profile_workload


def main() -> None:
    run = profile_workload(
        "li",
        variant="train",
        scale=0.5,
        targets=list(ProfileTarget),  # instructions, loads, memory, parameters
    )
    db = run.database

    print(f"=== {run.name}: {run.result.instructions_executed:,} instructions ===\n")

    # 1. Summary per site family (the thesis' chapters side by side).
    print(f"{'family':12s} {'sites':>7s} {'events':>9s} {'Inv-Top1%':>10s} {'Inv-All%':>9s} {'LVP%':>6s}")
    for kind in (SiteKind.INSTRUCTION, SiteKind.LOAD, SiteKind.MEMORY, SiteKind.PARAMETER):
        summary = db.summary(kind)
        print(
            f"{kind.value:12s} {len(db.sites(kind)):>7d} {summary.executions:>9d} "
            f"{100 * summary.inv_top1:>10.1f} {100 * summary.inv_top_n:>9.1f} {100 * summary.lvp:>6.1f}"
        )

    # 2. Invariance distribution of loads (the paper's quantile graph).
    rows = [metrics for _, metrics in db.metrics_by_site(SiteKind.LOAD)]
    buckets = invariance_buckets(rows)
    print()
    print(
        bar_chart(
            {bucket.label: 100.0 * bucket.share for bucket in buckets},
            title="li: execution share by load-invariance bucket",
            max_value=100.0,
        )
    )

    # 3. Hot procedures (Table V.4's view).
    print("\nper-procedure load profile:")
    by_proc = db.summary_by_procedure(SiteKind.LOAD)
    for name, summary in sorted(by_proc.items(), key=lambda item: -item[1].executions):
        print(
            f"  {name or '(toplevel)':16s} loads={summary.executions:>7d} "
            f"Inv-Top1={100 * summary.inv_top1:.1f}%"
        )

    # 4. The interpreter's hottest memory locations: the bytecode's
    #    variable slots, which are exactly the thesis' "memory
    #    locations worth profiling".
    print("\nhottest memory locations (stores):")
    for site, metrics in db.metrics_by_site(SiteKind.MEMORY)[:5]:
        top = db.profile_for(site).tnv.top_value()
        print(
            f"  address {site.label:>8s}: {metrics.executions:>6d} stores, "
            f"Inv-Top1={100 * metrics.inv_top1:.1f}%, top value {top!r}"
        )

    # 5. Persist the profile the way a deployed profiler would, and
    #    reload it (TNV snapshots only — exact histograms stay in RAM).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "li.profile.json"
        path.write_text(db.to_json())
        restored = ProfileDatabase.from_json(path.read_text())
        print(f"\nprofile persisted to JSON ({path.stat().st_size:,} bytes), ")
        print(f"restored {len(restored)} sites; hottest load top value matches:",
              restored.metrics_by_site(SiteKind.LOAD)[0][0] == db.metrics_by_site(SiteKind.LOAD)[0][0])


if __name__ == "__main__":
    main()
