"""Profiling overhead vs accuracy: the intelligent sampler in action.

Runs one workload once, feeding a full profiler and several sampled
profilers from the same instruction stream (a fan-out observer), then
reports each sampler's overhead and how far its invariance estimates
drift from ground truth — the thesis' Chapter VIII trade-off.

Run with::

    python examples/sampling_tradeoff.py
"""

from repro.core import (
    ConvergenceConfig,
    ConvergentSampling,
    PeriodicSampling,
    ProfileDatabase,
    SamplingProfiler,
    SiteKind,
)
from repro.core.metrics import weighted_mean
from repro.isa import FanoutObserver, Machine, ProfileTarget, ValueProfiler
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("gcc")
    dataset = workload.dataset("train", scale=1.0)
    program = workload.program()

    policies = [
        ("periodic 25%", PeriodicSampling(burst=250, interval=1_000)),
        ("periodic 10%", PeriodicSampling(burst=100, interval=1_000)),
        ("periodic 1%", PeriodicSampling(burst=20, interval=2_000)),
        (
            "convergent",
            ConvergentSampling(
                burst=100,
                base_skip=900,
                max_skip=200_000,
                convergence=ConvergenceConfig(delta=0.02, patience=2),
            ),
        ),
    ]

    # One simulation run feeds every profiler identically.
    full = ProfileDatabase(name="gcc.full")
    observers = [ValueProfiler(program, full, targets=(ProfileTarget.LOADS,))]
    samplers = []
    for label, policy in policies:
        sampler = SamplingProfiler(policy, name=f"gcc.{label}")
        samplers.append((label, sampler))
        observers.append(ValueProfiler(program, sampler, targets=(ProfileTarget.LOADS,)))

    machine = Machine(program, observer=FanoutObserver(observers))
    machine.set_input(dataset.values)
    result = machine.run()
    print(f"gcc train input: {result.instructions_executed:,} instructions, "
          f"{result.dynamic_loads:,} dynamic loads\n")

    print(f"{'policy':14s} {'overhead%':>10s} {'inv error':>10s} {'sites seen':>11s}")
    truth = dict(full.metrics_by_site(SiteKind.LOAD))
    for label, sampler in samplers:
        pairs = []
        for site, metrics in truth.items():
            estimate = (
                sampler.database.profile_for(site).metrics().inv_top1
                if site in sampler.database
                else 0.0
            )
            pairs.append((abs(estimate - metrics.inv_top1), metrics.executions))
        error = weighted_mean(pairs)
        print(
            f"{label:14s} {100 * sampler.overhead():>10.2f} {error:>10.4f} "
            f"{len(sampler.database):>11d}"
        )

    print(
        "\nreading: the convergent sampler approaches the accuracy of the "
        "high-duty-cycle\nperiodic samplers while paying closer to the "
        "low-duty-cycle one — profiling\neffort concentrates on sites whose "
        "estimates have not yet settled."
    )


if __name__ == "__main__":
    main()
