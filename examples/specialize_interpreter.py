"""Code specialization on profiled semi-invariant parameters (Chapter X).

Demonstrates the full pipeline the thesis proposes — with no user
annotations anywhere:

1. value-profile a function's parameters over a realistic call stream,
2. select the semi-invariant parameters and their dominant values,
3. generate a specialized variant (constants folded, branches pruned),
4. install a guarded dispatcher and measure the speedup,
5. show the same loop fully automated by ``AdaptiveSpecializer``.

Run with::

    python examples/specialize_interpreter.py
"""

import time

from repro.core import SiteKind
from repro.pyprof import profile_calls
from repro.specialize import (
    AdaptiveConfig,
    AdaptiveSpecializer,
    SpecializedFunction,
    find_candidates,
)
from repro.specialize.demos import DEMOS, demo_calls


def measure(func, calls, repeats=7):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for args in calls:
            func(*args)
        best = min(best, time.perf_counter() - start)
    return best


def main() -> None:
    demo = DEMOS[0]  # filter_signal(samples, mode, gain)
    print(f"target function: {demo.name}{demo.func.__code__.co_varnames[:3]}")

    # 1. Profile parameter values over a training call stream.
    train_calls = demo_calls(demo, "train", count=400)
    database = profile_calls(demo.func, train_calls)
    print("\nparameter profile (train):")
    for site, metrics in database.metrics_by_site(SiteKind.PYTHON):
        top = database.profile_for(site).tnv.top_value()
        print(
            f"  {site.label:12s} Inv-Top1={100 * metrics.inv_top1:5.1f}%  "
            f"top value {top!r}"
        )

    # 2. Select semi-invariant parameters automatically.
    candidates = find_candidates(database, min_invariance=0.7, min_executions=50)
    bindings = {}
    for candidate in candidates:
        label = candidate.site.label
        if ":" in label:
            param = label.split(":", 1)[1]
            if param != "samples":  # data argument, not a mode
                bindings.setdefault(param, candidate.value)
    print(f"\nselected bindings: {bindings}")

    # 3./4. Generate the guarded specialized function and measure.
    dispatcher = SpecializedFunction(demo.func)
    specialized = dispatcher.add_variant(bindings)
    print(
        f"specialized variant: {specialized.__vp_folds__} constants folded, "
        f"{specialized.__vp_pruned__} branches pruned"
    )

    test_calls = demo_calls(demo, "test", count=400)
    for args in test_calls:  # correctness first
        assert dispatcher(*args) == demo.func(*args)

    general_time = measure(demo.func, test_calls)
    guarded_time = measure(dispatcher, test_calls)
    hit_rate = dispatcher.guard_hits / (dispatcher.guard_hits + dispatcher.guard_misses)
    print(f"\ngeneral: {general_time * 1e3:7.2f} ms")
    print(f"guarded: {guarded_time * 1e3:7.2f} ms  (guard hit rate {100 * hit_rate:.1f}%)")
    print(f"speedup: {general_time / guarded_time:.2f}x")

    # 5. The adaptive wrapper does all of the above at run time.
    @AdaptiveSpecializer(AdaptiveConfig(warmup_calls=150, min_invariance=0.75))
    def render(x, mode):
        if mode == 0:
            return x * 3 + 1
        if mode == 1:
            return (x << 1) ^ mode
        return x - mode

    for i in range(1000):
        render(i, 1)
    variant = render.dispatcher.variants[0]
    print(
        f"\nadaptive: after warmup the wrapper self-specialized on "
        f"{variant.bindings} ({render.guard_hits} guard hits so far)"
    )


if __name__ == "__main__":
    main()
