"""Value profiling of ordinary Python code (the host-language front end).

Exercises all three pyprof granularities on a small JSON-ish rendering
pipeline:

* call-level (arguments and returns),
* statement-level via AST instrumentation,
* memory-location level via profiled containers and attributes.

Run with::

    python examples/python_value_profiling.py
"""

import random

from repro.core import SiteKind
from repro.pyprof import (
    ProfiledDict,
    instrument_function,
    profile_attributes,
    profile_calls,
)


def render_value(value, indent, sort_keys):
    """A miniature pretty-printer whose ``indent``/``sort_keys``
    parameters are semi-invariant in any real application."""
    if isinstance(value, dict):
        items = sorted(value.items()) if sort_keys else list(value.items())
        inner = ", ".join(f"{k!r}: {render_value(v, indent, sort_keys)}" for k, v in items)
        return "{" + inner + "}"
    if isinstance(value, list):
        return "[" + (" " * indent).join(render_value(v, indent, sort_keys) for v in value) + "]"
    return repr(value)


def checksum(text, base):
    total = 0
    for ch in text:
        total = (total * base + ord(ch)) % 1_000_003
    return total


def main() -> None:
    rng = random.Random(7)
    documents = [
        {"id": i, "kind": "row" if rng.random() < 0.9 else "header", "n": rng.randrange(5)}
        for i in range(300)
    ]

    # --- 1. call-level: which arguments are semi-invariant? ------------
    calls = [(doc, 2, True) for doc in documents]
    db = profile_calls(render_value, calls)
    print("call-level profile of render_value:")
    for site, metrics in db.metrics_by_site(SiteKind.PYTHON):
        print(f"  {site.label:18s} Inv-Top1={100 * metrics.inv_top1:5.1f}%  Diff={metrics.distinct}")
    print("  -> indent and sort_keys are invariant: specialization candidates\n")

    # --- 2. statement-level: inside the function ----------------------
    inst = instrument_function(checksum)
    for doc in documents:
        inst(str(doc), 31)
    print("AST-instrumented profile of checksum:")
    for site, metrics in inst.__vp_database__.metrics_by_site(SiteKind.PYTHON)[:4]:
        print(
            f"  {site.label:8s} execs={metrics.executions:>6d} "
            f"Inv-Top1={100 * metrics.inv_top1:5.1f}% LVP={100 * metrics.lvp:5.1f}%"
        )
    print()

    # --- 3. memory-location level --------------------------------------
    cache = ProfiledDict(name="render-cache")
    for doc in documents:
        cache["last_kind"] = doc["kind"]
        cache[doc["kind"]] = doc["id"]

    print("memory-location profile of the render cache:")
    for site, metrics in cache.database.metrics_by_site(SiteKind.MEMORY):
        print(f"  key {site.label:12s} stores={metrics.executions:>4d} Inv-Top1={100 * metrics.inv_top1:5.1f}%")

    @profile_attributes()
    class Canvas:
        def __init__(self, width, dpi):
            self.width = width
            self.dpi = dpi

    for _ in range(50):
        Canvas(800, 96)  # a typical invariant configuration object
    Canvas(1024, 192)

    print("\nattribute-store profile of Canvas:")
    db = Canvas.__vp_database__
    for site, metrics in db.metrics_by_site(SiteKind.MEMORY):
        top = db.profile_for(site).tnv.top_value()
        print(
            f"  .{site.label:6s} stores={metrics.executions:>3d} "
            f"Inv-Top1={100 * metrics.inv_top1:5.1f}%  top value {top!r}"
        )


if __name__ == "__main__":
    main()
