"""Profile-driven binary specialization of VPA machine code.

The thesis' Chapter X end to end, at the instruction level:

1. run ``ijpeg`` with a *calling-context* parameter profile,
2. discover that ``dct1d``'s stride arguments are fully invariant per
   call site (stride 1 from the row pass, stride 8 from the column
   pass) even though the merged profile calls them 50/50 variant,
3. generate one guarded, constant-folded, strength-reduced variant per
   call site,
4. patch the call sites (one word each) and re-run: bit-identical
   output, fewer cycles.

Run with::

    python examples/binary_specialization.py
"""

from repro.core import ProfileDatabase, SiteKind
from repro.isa import Machine, ProfileTarget, ValueProfiler, run_program
from repro.isa.instructions import REG_ARGS
from repro.isa.optimize import patch_call_site, specialize_procedure
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("ijpeg")
    dataset = workload.dataset("train", scale=0.5)
    program = workload.program()

    baseline = run_program(program, input_values=dataset.values)
    print(f"baseline: {baseline.instructions_executed:,} instructions, "
          f"{baseline.cycles:,} cycles\n")

    # --- 1./2. calling-context parameter profile -----------------------
    context_db = ProfileDatabase(name="ijpeg.context")
    observer = ValueProfiler(
        program, context_db, targets=(ProfileTarget.PARAMETERS,), parameter_context=True
    )
    machine = Machine(program, observer=observer)
    machine.set_input(dataset.values)
    machine.run()

    print("dct1d stride arguments, per calling site:")
    bindings_by_site = {}
    for site, metrics in context_db.metrics_by_site(SiteKind.PARAMETER):
        if site.procedure != "dct1d":
            continue
        arg_label, _, call_pc = site.label.partition("@")
        arg_index = int(arg_label.replace("arg", ""))
        if arg_index < 2:  # src/dst pointers vary per block; strides don't
            continue
        top = context_db.profile_for(site).tnv.top_value()
        print(
            f"  call@{call_pc} {arg_label}: Inv-Top1={100 * metrics.inv_top1:5.1f}% "
            f"top value {top}"
        )
        if metrics.inv_top1 == 1.0:
            bindings_by_site.setdefault(int(call_pc), {})[REG_ARGS[arg_index]] = top

    # --- 3./4. specialize per call site and patch -----------------------
    specialized = program
    for call_pc, bindings in sorted(bindings_by_site.items()):
        variant = f"dct1d__site{call_pc}"
        specialized, report = specialize_procedure(specialized, "dct1d", bindings, variant)
        patch_call_site(specialized, call_pc, variant)
        print(
            f"\n{variant}: bound {bindings}, "
            f"{report.folds} folds, {report.strength_reductions} strength reductions "
            f"(static gain {report.cycle_gain} cycles/execution of rewritten code)"
        )

    result = run_program(specialized, input_values=dataset.values)
    assert list(result.output) == list(dataset.expected_output), "output diverged!"
    saved = baseline.cycles - result.cycles
    print(
        f"\nspecialized: {result.cycles:,} cycles "
        f"({saved:,} saved, {100 * saved / baseline.cycles:.2f}%), "
        "output bit-identical"
    )


if __name__ == "__main__":
    main()
