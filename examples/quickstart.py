"""Quickstart: value-profile one benchmark and read the results.

Runs the ``compress`` workload (an LZW compressor on the VPA simulator)
under the value profiler and prints the paper's per-site metrics —
LVP, Inv-Top1, Inv-All, Diff and %Zeros — plus the contents of the
hottest load's TNV table.

Run with::

    python examples/quickstart.py
"""

from repro.core import SiteKind
from repro.workloads import profile_workload


def main() -> None:
    # One call: assemble the workload, generate its deterministic train
    # input, execute it under instrumentation, verify the output against
    # the pure-Python reference, and return the profile database.
    run = profile_workload("compress", variant="train", scale=0.5)

    print(f"program: {run.name}")
    print(f"instructions executed: {run.result.instructions_executed:,}")
    print(f"dynamic loads: {run.result.dynamic_loads:,}")
    print()

    # Per-site metrics for every static load, hottest first.
    print(f"{'load site':28s} {'execs':>8s} {'LVP%':>6s} {'Inv1%':>6s} {'InvAll%':>8s} {'Diff':>6s}")
    for site, metrics in run.database.metrics_by_site(SiteKind.LOAD):
        print(
            f"{site.qualified_name():28s} {metrics.executions:>8d} "
            f"{100 * metrics.lvp:>6.1f} {100 * metrics.inv_top1:>6.1f} "
            f"{100 * metrics.inv_top_n:>8.1f} {metrics.distinct:>6d}"
        )

    summary = run.database.summary(SiteKind.LOAD)
    print(
        f"\nweighted average: LVP {100 * summary.lvp:.1f}%  "
        f"Inv-Top1 {100 * summary.inv_top1:.1f}%  Inv-All {100 * summary.inv_top_n:.1f}%"
    )

    # Inspect the hottest site's TNV table — the paper's core structure.
    hottest, _ = run.database.metrics_by_site(SiteKind.LOAD)[0]
    table = run.database.profile_for(hottest).tnv
    print(f"\nTNV table of {hottest.qualified_name()} (top 5 of {len(table)} resident):")
    for entry in table.top(5):
        share = entry.count / table.total
        print(f"  value {entry.value!r:>8}  count {entry.count:>6d}  ({100 * share:.1f}% of executions)")


if __name__ == "__main__":
    main()
