"""Tests for the finite Value History Table."""

import pytest

from repro.core.sites import load_site
from repro.predictors.vht import ValueHistoryTable

SITE_A = load_site("p", "f", 1)
SITE_B = load_site("p", "f", 2)


class TestBasicOperation:
    def test_single_site_behaves_like_lvp(self):
        table = ValueHistoryTable(entries=16)
        stats = table.replay([(SITE_A, 7)] * 100)
        assert stats.hits == 99
        assert stats.predictions == 99

    def test_first_event_makes_no_prediction(self):
        table = ValueHistoryTable(entries=16)
        table.process(SITE_A, 1)
        assert table.stats.predictions == 0

    def test_occupancy_counted(self):
        table = ValueHistoryTable(entries=16)
        table.process(SITE_A, 1)
        table.process(SITE_B, 2)
        assert table.stats.occupied <= 2
        assert table.stats.occupied + table.stats.conflict_evictions == 2

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            ValueHistoryTable(entries=0)


class TestAliasing:
    def test_single_entry_table_thrashes(self):
        # Two sites forced into one entry: alternating access evicts
        # every time, so no prediction ever sticks.
        table = ValueHistoryTable(entries=1)
        events = []
        for _ in range(50):
            events.append((SITE_A, 1))
            events.append((SITE_B, 2))
        stats = table.replay(events)
        assert stats.hits == 0
        assert stats.conflict_evictions >= 98

    def test_large_table_avoids_thrash(self):
        table = ValueHistoryTable(entries=4096)
        events = []
        for _ in range(50):
            events.append((SITE_A, 1))
            events.append((SITE_B, 2))
        stats = table.replay(events)
        # With (almost certainly) distinct entries, both sites predict.
        assert stats.hit_rate_overall > 0.9 or stats.conflict_evictions > 0

    def test_filter_protects_predictable_site(self):
        # SITE_B is noise (never repeats); excluding it lets SITE_A's
        # entry survive even in a 1-entry table.
        events = []
        for i in range(50):
            events.append((SITE_A, 1))
            events.append((SITE_B, i))
        unfiltered = ValueHistoryTable(entries=1).replay(list(events))
        filtered = ValueHistoryTable(
            entries=1, site_filter=lambda s: s == SITE_A
        ).replay(list(events))
        assert unfiltered.hits == 0
        assert filtered.hits == 49
        assert filtered.filtered == 50  # SITE_B events never touched the table

    def test_conflict_rate_property(self):
        table = ValueHistoryTable(entries=1)
        table.replay([(SITE_A, 1), (SITE_B, 1), (SITE_A, 1)])
        assert table.stats.conflict_rate == pytest.approx(2 / 3)


class TestStatsProperties:
    def test_empty_stats(self):
        stats = ValueHistoryTable(entries=4).stats
        assert stats.hit_rate_overall == 0.0
        assert stats.hit_rate_predicted == 0.0
        assert stats.conflict_rate == 0.0

    def test_hit_rates_differ_when_coverage_partial(self):
        table = ValueHistoryTable(entries=16, site_filter=lambda s: s == SITE_A)
        events = [(SITE_A, 5)] * 10 + [(SITE_B, 9)] * 10
        stats = table.replay(events)
        assert stats.hit_rate_predicted > stats.hit_rate_overall
