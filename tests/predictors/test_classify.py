"""Tests for profile-guided predictability classification."""

import pytest

from repro.core.metrics import SiteMetrics
from repro.core.sites import load_site
from repro.predictors.classify import (
    ClassifierConfig,
    InvarianceClass,
    class_histogram,
    classify,
    classify_all,
    invariance_filter,
    lvp_filter,
    predictable_classes,
)


def metrics(inv=0.5, lvp=0.5, executions=100):
    return SiteMetrics(
        executions=executions,
        lvp=lvp,
        inv_top1=inv,
        inv_top_n=min(1.0, inv + 0.2),
        distinct=3,
        pct_zeros=0.0,
    )


class TestClassify:
    def test_invariant(self):
        assert classify(metrics(inv=0.99)) is InvarianceClass.INVARIANT

    def test_semi_invariant(self):
        assert classify(metrics(inv=0.6)) is InvarianceClass.SEMI_INVARIANT

    def test_variant(self):
        assert classify(metrics(inv=0.1)) is InvarianceClass.VARIANT

    def test_boundaries_inclusive(self):
        config = ClassifierConfig(invariant_threshold=0.9, semi_invariant_threshold=0.5)
        assert classify(metrics(inv=0.9), config) is InvarianceClass.INVARIANT
        assert classify(metrics(inv=0.5), config) is InvarianceClass.SEMI_INVARIANT

    def test_classify_all(self):
        rows = [
            (load_site("p", "m", 1), metrics(inv=0.99)),
            (load_site("p", "m", 2), metrics(inv=0.1)),
        ]
        classes = classify_all(rows)
        assert list(classes.values()) == [
            InvarianceClass.INVARIANT,
            InvarianceClass.VARIANT,
        ]


class TestHistogram:
    def test_weighted_shares(self):
        site_a = load_site("p", "m", 1)
        site_b = load_site("p", "m", 2)
        classes = {site_a: InvarianceClass.INVARIANT, site_b: InvarianceClass.VARIANT}
        weights = {site_a: 90, site_b: 10}
        histogram = class_histogram(classes, weights)
        assert histogram[InvarianceClass.INVARIANT] == pytest.approx(0.9)
        assert histogram[InvarianceClass.SEMI_INVARIANT] == 0.0

    def test_empty(self):
        histogram = class_histogram({}, {})
        assert all(share == 0.0 for share in histogram.values())


class TestFilters:
    def test_lvp_filter(self):
        accept = lvp_filter(0.7)
        site = load_site("p", "m", 1)
        assert accept(site, metrics(lvp=0.8))
        assert not accept(site, metrics(lvp=0.6))

    def test_invariance_filter(self):
        accept = invariance_filter(0.5)
        site = load_site("p", "m", 1)
        assert accept(site, metrics(inv=0.5))
        assert not accept(site, metrics(inv=0.49))

    def test_predictable_classes_filter(self):
        accept = predictable_classes([InvarianceClass.INVARIANT, InvarianceClass.SEMI_INVARIANT])
        site = load_site("p", "m", 1)
        assert accept(site, metrics(inv=0.99))
        assert accept(site, metrics(inv=0.6))
        assert not accept(site, metrics(inv=0.2))
