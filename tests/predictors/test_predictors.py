"""Tests for the individual value predictors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors.base import run_trace
from repro.predictors.context import FiniteContextPredictor, TwoLevelPredictor
from repro.predictors.last_value import LastValuePredictor
from repro.predictors.stride import StridePredictor


class TestLastValue:
    def test_no_prediction_initially(self):
        assert LastValuePredictor().predict() is None

    def test_predicts_previous(self):
        predictor = LastValuePredictor()
        predictor.update(5)
        assert predictor.predict() == 5

    def test_constant_stream_accuracy(self):
        stats = run_trace(LastValuePredictor(), [3] * 100)
        assert stats.hits == 99
        assert stats.no_prediction == 1

    def test_alternating_stream_zero_hits(self):
        stats = run_trace(LastValuePredictor(), [1, 2] * 50)
        assert stats.hits == 0

    def test_confidence_counter_suppresses_early_predictions(self):
        predictor = LastValuePredictor(confidence_bits=2, threshold=2)
        predictor.update(5)
        assert predictor.predict() is None  # confidence 0
        predictor.update(5)
        predictor.update(5)
        assert predictor.predict() == 5

    def test_confidence_decays_on_miss(self):
        predictor = LastValuePredictor(confidence_bits=2, threshold=1)
        for value in (5, 5, 5):
            predictor.update(value)
        assert predictor.predict() == 5
        predictor.update(9)
        predictor.update(8)
        predictor.update(7)
        assert predictor.predict() is None

    def test_accuracy_matches_lvp_metric(self):
        # The LVP metric is by construction this predictor's hit rate.
        from repro.core.metrics import ValueStreamStats

        trace = [1, 1, 2, 2, 2, 3, 1, 1]
        stats = ValueStreamStats()
        stats.record_many(trace)
        predictor_stats = run_trace(LastValuePredictor(), trace)
        assert predictor_stats.hits / (len(trace) - 1) == pytest.approx(stats.lvp())


class TestStride:
    def test_detects_constant_stride(self):
        stats = run_trace(StridePredictor(), list(range(0, 100, 4)))
        # two-delta needs two identical deltas to commit; then perfect
        assert stats.hits >= 22

    def test_zero_stride_equals_lvp(self):
        trace = [7] * 50
        assert run_trace(StridePredictor(), trace).hits == run_trace(LastValuePredictor(), trace).hits

    def test_two_delta_ignores_glitch(self):
        predictor = StridePredictor(two_delta=True)
        for value in (0, 4, 8, 12):
            predictor.update(value)
        predictor.update(100)  # loop-exit glitch
        predictor.update(104)  # delta 4 seen once after glitch delta
        assert predictor.predict() == 108

    def test_plain_stride_follows_glitch(self):
        predictor = StridePredictor(two_delta=False)
        for value in (0, 4, 8):
            predictor.update(value)
        predictor.update(100)
        assert predictor.predict() == 192  # last + (100-8)

    def test_non_integer_values_fall_back_to_last_value(self):
        predictor = StridePredictor()
        predictor.update("a")
        predictor.update("a")
        assert predictor.predict() == "a"


class TestFiniteContext:
    def test_learns_repeating_pattern(self):
        trace = [1, 2, 3] * 40
        stats = run_trace(FiniteContextPredictor(order=2), trace)
        assert stats.accuracy > 0.9

    def test_pattern_lvp_cannot_learn(self):
        trace = [1, 2] * 100
        lvp_stats = run_trace(LastValuePredictor(), trace)
        fcm_stats = run_trace(FiniteContextPredictor(order=1), trace)
        assert lvp_stats.accuracy == 0.0
        assert fcm_stats.accuracy > 0.9

    def test_table_capacity_bound(self):
        predictor = FiniteContextPredictor(order=1, max_contexts=4)
        for value in range(100):
            predictor.update(value)
        assert len(predictor._table) <= 4

    def test_successor_replacement(self):
        predictor = FiniteContextPredictor(order=1, max_successors=2)
        # context (1,): successors cycle through many values
        for successor in (2, 3, 4, 5):
            predictor.update(1)
            predictor.update(successor)
        table_entry = predictor._table[(1,)]
        assert len(table_entry) <= 2

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            FiniteContextPredictor(order=0)


class TestTwoLevel:
    def test_learns_alternation(self):
        trace = [10, 20] * 100
        stats = run_trace(TwoLevelPredictor(history=2), trace)
        assert stats.accuracy > 0.8

    def test_learns_period_four_pattern(self):
        trace = [1, 2, 3, 4] * 80
        stats = run_trace(TwoLevelPredictor(vht_size=4, history=3), trace)
        assert stats.accuracy > 0.6

    def test_slots_are_stable(self):
        predictor = TwoLevelPredictor(vht_size=2)
        for value in (1, 2, 1, 2, 1, 2):
            predictor.update(value)
        assert predictor._values == [1, 2]

    def test_round_robin_replacement(self):
        predictor = TwoLevelPredictor(vht_size=2, history=1)
        for value in (1, 2, 3):
            predictor.update(value)
        assert 3 in predictor._values
        assert len(predictor._values) == 2


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=200))
def test_property_stats_accounting(trace):
    stats = run_trace(LastValuePredictor(), trace)
    assert stats.executions == len(trace)
    assert 0 <= stats.hits <= stats.executions
    assert stats.no_prediction >= 1  # the first execution at least


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=-100, max_value=100), st.integers(min_value=-10, max_value=10))
def test_property_stride_perfect_on_arithmetic_sequences(start, stride):
    trace = [start + i * stride for i in range(50)]
    stats = run_trace(StridePredictor(), trace)
    assert stats.hits >= 46  # warmup of at most a few executions
