"""Tests for hybrid predictors."""

import pytest

from repro.predictors.base import run_trace
from repro.predictors.hybrid import (
    HybridPredictor,
    lvp_stride_hybrid,
    stride_2level_hybrid,
)
from repro.predictors.last_value import LastValuePredictor
from repro.predictors.stride import StridePredictor


class TestHybrid:
    def test_requires_components(self):
        with pytest.raises(ValueError):
            HybridPredictor([])

    def test_name_derived_from_components(self):
        hybrid = HybridPredictor([LastValuePredictor(), StridePredictor()])
        assert hybrid.name == "hybrid(lvp+stride)"

    def test_explicit_name(self):
        hybrid = HybridPredictor([LastValuePredictor()], name="mine")
        assert hybrid.name == "mine"

    def test_tracks_best_component_on_stride_stream(self):
        trace = list(range(0, 400, 4))
        hybrid_stats = run_trace(lvp_stride_hybrid(), trace)
        stride_stats = run_trace(StridePredictor(), trace)
        assert hybrid_stats.hits >= stride_stats.hits - 5

    def test_tracks_best_component_on_constant_stream(self):
        trace = [9] * 200
        stats = run_trace(lvp_stride_hybrid(), trace)
        assert stats.accuracy > 0.95

    def test_hybrid_at_least_matches_weaker_component_on_mixed_stream(self):
        # Phase 1 favors LVP (constant), phase 2 favors stride.
        trace = [5] * 100 + list(range(0, 400, 4))
        hybrid_stats = run_trace(lvp_stride_hybrid(), trace)
        lvp_stats = run_trace(LastValuePredictor(), trace)
        assert hybrid_stats.hits >= lvp_stats.hits - 10

    def test_stride_2level_factory(self):
        stats = run_trace(stride_2level_hybrid(), [1, 2] * 100)
        # 2-level learns the alternation; the hybrid must exploit it.
        assert stats.accuracy > 0.5

    def test_counters_saturate(self):
        hybrid = HybridPredictor([LastValuePredictor()], counter_max=3)
        for _ in range(10):
            hybrid.predict()
            hybrid.update(1)
        assert hybrid._counters[0] <= 3

    def test_update_feeds_all_components(self):
        lvp = LastValuePredictor()
        stride = StridePredictor()
        hybrid = HybridPredictor([lvp, stride])
        hybrid.predict()
        hybrid.update(42)
        assert lvp.predict() == 42
        assert stride.predict() == 42
