"""Tests for the predictor evaluation harness."""

import pytest

from repro.core.metrics import SiteMetrics
from repro.core.sites import load_site
from repro.predictors.harness import (
    STANDARD_BANK,
    evaluate_bank,
    evaluate_filtered,
)
from repro.predictors.last_value import LastValuePredictor

SITE_CONST = load_site("p", "m", 1)  # constant trace: LVP-friendly
SITE_NOISE = load_site("p", "m", 2)  # never-repeating trace

TRACES = {
    SITE_CONST: [7] * 100,
    SITE_NOISE: list(range(100)),
}


def metrics_for(lvp):
    return SiteMetrics(
        executions=100, lvp=lvp, inv_top1=lvp, inv_top_n=lvp, distinct=1, pct_zeros=0.0
    )


class TestEvaluateBank:
    def test_all_standard_predictors_evaluated(self):
        results = evaluate_bank(TRACES)
        assert {r.predictor for r in results} == set(STANDARD_BANK)

    def test_lvp_accuracy_on_known_traces(self):
        results = {r.predictor: r for r in evaluate_bank(TRACES)}
        # constant trace: 99 hits; noise: 0 hits; 200 executions total
        assert results["lvp"].hits == 99
        assert results["lvp"].accuracy == pytest.approx(99 / 200)

    def test_stride_wins_on_noise_trace(self):
        results = {r.predictor: r for r in evaluate_bank(TRACES)}
        assert results["stride"].hits > results["lvp"].hits

    def test_sites_counted(self):
        results = evaluate_bank(TRACES)
        assert all(r.sites == 2 for r in results)

    def test_custom_bank(self):
        results = evaluate_bank(TRACES, bank={"only-lvp": LastValuePredictor})
        assert len(results) == 1
        assert results[0].predictor == "only-lvp"

    def test_empty_traces(self):
        results = evaluate_bank({}, bank={"lvp": LastValuePredictor})
        assert results[0].executions == 0
        assert results[0].accuracy == 0.0


class TestEvaluateFiltered:
    METRICS = {SITE_CONST: metrics_for(0.99), SITE_NOISE: metrics_for(0.0)}

    def test_filter_keeps_predictable_site_only(self):
        result = evaluate_filtered(
            TRACES,
            self.METRICS,
            site_filter=lambda site, m: m.lvp >= 0.5,
        )
        assert result.predicted_sites == 1
        assert result.total_sites == 2
        assert result.accuracy_on_predicted == pytest.approx(0.99)

    def test_coverage_reflects_execution_share(self):
        result = evaluate_filtered(
            TRACES, self.METRICS, site_filter=lambda site, m: m.lvp >= 0.5
        )
        assert result.coverage == pytest.approx(0.5)

    def test_table_pressure(self):
        result = evaluate_filtered(
            TRACES, self.METRICS, site_filter=lambda site, m: m.lvp >= 0.5
        )
        assert result.table_pressure == pytest.approx(0.5)

    def test_accept_all_filter_matches_bank(self):
        result = evaluate_filtered(TRACES, self.METRICS, site_filter=lambda s, m: True)
        assert result.predicted_executions == 200
        assert result.hits == 99

    def test_sites_missing_metrics_never_predicted(self):
        result = evaluate_filtered(
            TRACES, {SITE_CONST: metrics_for(0.9)}, site_filter=lambda s, m: True
        )
        assert result.predicted_sites == 1

    def test_empty_filter(self):
        result = evaluate_filtered(TRACES, self.METRICS, site_filter=lambda s, m: False)
        assert result.predicted_executions == 0
        assert result.accuracy_on_predicted == 0.0
        assert result.coverage == 0.0
